//! Binary encoding for persisted records.
//!
//! A small, hand-rolled, length-explicit codec over [`bytes`]: little-endian
//! fixed-width integers, length-prefixed strings and sequences, and
//! single-byte tags for enums. `serde` is deliberately not used — no
//! serializer backend is on the approved dependency list, and a WAL wants a
//! compact stable format anyway.
//!
//! Every persisted type implements [`Encode`]/[`Decode`]; decoding is
//! total (no panics) and reports structured [`CodecError`]s so torn or
//! corrupt log tails are handled gracefully by recovery.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crew_model::{AgentId, InstanceId, ItemKey, ItemScope, SchemaId, StepId, Value};
use std::fmt;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the structure requires.
    Truncated,
    /// An enum tag byte had no meaning.
    BadTag {
        /// Which decoder rejected the tag.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A declared length exceeds sanity limits.
    LengthOverflow(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::BadTag { context, tag } => write!(f, "bad tag {tag} for {context}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::LengthOverflow(n) => write!(f, "declared length {n} too large"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Sanity cap on declared collection/string lengths (1 MiB of elements).
const MAX_LEN: u64 = 1 << 20;

/// Serialize into a byte buffer.
pub trait Encode {
    /// Wrapped closure.
    fn encode(&self, buf: &mut BytesMut);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Deserialize from a byte buffer.
pub trait Decode: Sized {
    /// Wrapped closure.
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError>;
}

fn need(buf: &Bytes, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

// ---- primitives ----------------------------------------------------------

impl Encode for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
}
impl Decode for u8 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        need(buf, 1)?;
        Ok(buf.get_u8())
    }
}

impl Encode for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(*self);
    }
}
impl Decode for u16 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        need(buf, 2)?;
        Ok(buf.get_u16_le())
    }
}

impl Encode for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
}
impl Decode for u32 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        need(buf, 4)?;
        Ok(buf.get_u32_le())
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
}
impl Decode for u64 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        need(buf, 8)?;
        Ok(buf.get_u64_le())
    }
}

impl Encode for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
}
impl Decode for i64 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        need(buf, 8)?;
        Ok(buf.get_i64_le())
    }
}

impl Encode for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
}
impl Decode for f64 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        need(buf, 8)?;
        Ok(buf.get_f64_le())
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}
impl Decode for bool {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}
impl Decode for String {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let len = u32::decode(buf)? as u64;
        if len > MAX_LEN {
            return Err(CodecError::LengthOverflow(len));
        }
        need(buf, len as usize)?;
        let raw = buf.split_to(len as usize);
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}
impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let len = u32::decode(buf)? as u64;
        if len > MAX_LEN {
            return Err(CodecError::LengthOverflow(len));
        }
        let mut out = Vec::with_capacity(len.min(4096) as usize);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(CodecError::BadTag {
                context: "Option",
                tag,
            }),
        }
    }
}

// ---- model types ----------------------------------------------------------

impl Encode for StepId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
}
impl Decode for StepId {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(StepId(u32::decode(buf)?))
    }
}

impl Encode for AgentId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
}
impl Decode for AgentId {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(AgentId(u32::decode(buf)?))
    }
}

impl Encode for SchemaId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
}
impl Decode for SchemaId {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(SchemaId(u32::decode(buf)?))
    }
}

impl Encode for InstanceId {
    fn encode(&self, buf: &mut BytesMut) {
        self.schema.encode(buf);
        self.serial.encode(buf);
    }
}
impl Decode for InstanceId {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(InstanceId {
            schema: SchemaId::decode(buf)?,
            serial: u32::decode(buf)?,
        })
    }
}

impl Encode for ItemKey {
    fn encode(&self, buf: &mut BytesMut) {
        match self.scope {
            ItemScope::WorkflowInput => buf.put_u8(0),
            ItemScope::StepOutput(s) => {
                buf.put_u8(1);
                s.encode(buf);
            }
        }
        self.slot.encode(buf);
    }
}
impl Decode for ItemKey {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let scope = match u8::decode(buf)? {
            0 => ItemScope::WorkflowInput,
            1 => ItemScope::StepOutput(StepId::decode(buf)?),
            tag => {
                return Err(CodecError::BadTag {
                    context: "ItemScope",
                    tag,
                })
            }
        };
        Ok(ItemKey {
            scope,
            slot: u16::decode(buf)?,
        })
    }
}

impl Encode for Value {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::Int(i) => {
                buf.put_u8(0);
                i.encode(buf);
            }
            Value::Float(x) => {
                buf.put_u8(1);
                x.encode(buf);
            }
            Value::Str(s) => {
                buf.put_u8(2);
                s.encode(buf);
            }
            Value::Bool(b) => {
                buf.put_u8(3);
                b.encode(buf);
            }
        }
    }
}
impl Decode for Value {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(Value::Int(i64::decode(buf)?)),
            1 => Ok(Value::Float(f64::decode(buf)?)),
            2 => Ok(Value::Str(String::decode(buf)?)),
            3 => Ok(Value::Bool(bool::decode(buf)?)),
            tag => Err(CodecError::BadTag {
                context: "Value",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let mut buf = bytes.clone();
        let back = T::decode(&mut buf).expect("decode");
        assert_eq!(back, v);
        assert_eq!(buf.remaining(), 0, "no trailing bytes");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(0xFFFFu16);
        round_trip(123_456u32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(3.5f64);
        round_trip(true);
        round_trip(false);
        round_trip("hello κόσμε".to_owned());
        round_trip(String::new());
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
    }

    #[test]
    fn tuples_round_trip() {
        round_trip((7u32, 9u64));
        round_trip(vec![(ItemKey::input(0), Value::Int(4))]);
        round_trip((StepId(1), (AgentId(2), true)));
    }

    #[test]
    fn model_types_round_trip() {
        round_trip(StepId(5));
        round_trip(SchemaId(2));
        round_trip(AgentId(8));
        round_trip(InstanceId::new(SchemaId(2), 4));
        round_trip(ItemKey::input(1));
        round_trip(ItemKey::output(StepId(3), 2));
        round_trip(Value::Int(90));
        round_trip(Value::Float(-0.5));
        round_trip(Value::Str("Blower".into()));
        round_trip(Value::Bool(true));
        round_trip(vec![
            Some(Value::Int(1)),
            None,
            Some(Value::Str("x".into())),
        ]);
    }

    #[test]
    fn truncation_reported() {
        let bytes = Value::Str("hello".into()).to_bytes();
        let mut cut = bytes.slice(0..bytes.len() - 2);
        assert_eq!(Value::decode(&mut cut), Err(CodecError::Truncated));
        let mut empty = Bytes::new();
        assert_eq!(u32::decode(&mut empty), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_tags_reported() {
        let mut buf = Bytes::from_static(&[9u8, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(
            Value::decode(&mut buf),
            Err(CodecError::BadTag {
                context: "Value",
                tag: 9
            })
        ));
        let mut buf = Bytes::from_static(&[2u8]);
        assert!(matches!(
            bool::decode(&mut buf),
            Err(CodecError::BadTag {
                context: "bool",
                ..
            })
        ));
    }

    #[test]
    fn absurd_lengths_rejected() {
        let mut buf = BytesMut::new();
        (u32::MAX).encode(&mut buf); // declared string length
        let mut bytes = buf.freeze();
        assert!(matches!(
            String::decode(&mut bytes),
            Err(CodecError::LengthOverflow(_))
        ));
    }

    #[test]
    fn bad_utf8_reported() {
        let mut buf = BytesMut::new();
        2u32.encode(&mut buf);
        buf.put_slice(&[0xFF, 0xFE]);
        let mut bytes = buf.freeze();
        assert_eq!(String::decode(&mut bytes), Err(CodecError::BadUtf8));
    }
}
