//! # crew-storage
//!
//! Persistence for CREW nodes: the WFDB of the centralized engine and the
//! per-agent AGDB of distributed control (§2, §4.1). Provides a
//! from-scratch CRC-32, a compact binary [`codec`], a crash-safe
//! append-only [write-ahead log](wal) with torn-tail recovery, and the
//! [workflow tables](tables) (class/instance/step/summary) rebuilt by
//! replaying logged [`DbOp`]s — the forward-recovery path a node takes
//! after a fail-stop crash.

#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod tables;
pub mod wal;

pub use codec::{CodecError, Decode, Encode};
pub use crc::crc32;
pub use tables::{AgentDb, DbOp, InstanceStatus, InstanceTable, StoredStepState};
pub use wal::{recover_for_node, FileStore, LogStore, MemStore, RecoveryReport, Wal, WalError};
