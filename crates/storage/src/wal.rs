//! The write-ahead log.
//!
//! Both the centralized engine's WFDB and each agent's AGDB persist state
//! transitions to an append-only log so a crashed node can forward-recover
//! (§2: the WFDB "provides the persistence necessary to facilitate forward
//! recovery in case of failure of the workflow engine").
//!
//! Record framing: `len: u32 | crc: u32 | payload: len bytes`, where `crc`
//! is the CRC-32 of the payload. Recovery scans from the start and stops at
//! the first torn or corrupt record (the standard ARIES-style torn-tail
//! rule), returning every intact record in order.

use crate::codec::{CodecError, Decode, Encode};
use crate::crc::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Backing medium for a log: an append-only byte sink that can be read back
/// in full.
///
/// Durability is split from appending so callers can group-commit: `append`
/// stages bytes in the store's write path, `flush` makes everything
/// appended so far durable. [`Wal::append`] pairs the two (one flush per
/// record); [`Wal::append_batch`] and the `append_nosync`/`flush` pair
/// amortize a single flush over many records.
pub trait LogStore: Send {
    /// Append raw bytes; durable only after the next [`LogStore::flush`].
    fn append(&mut self, data: &[u8]) -> std::io::Result<()>;
    /// Make all appended bytes durable (e.g. `fdatasync`).
    fn flush(&mut self) -> std::io::Result<()>;
    /// Read the entire log contents.
    fn read_all(&self) -> std::io::Result<Vec<u8>>;
    /// Discard the entire log (used by checkpoint compaction: the caller
    /// rewrites the live suffix immediately after).
    fn truncate(&mut self) -> std::io::Result<()>;
}

/// In-memory store — the default under simulation, where "durability" means
/// surviving a simulated node crash (the store outlives the node's volatile
/// state).
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    data: Vec<u8>,
    fail_reads: bool,
}

impl MemStore {
    /// Fault injection: make every subsequent `read_all` fail, modelling a
    /// log device that is unreadable at recovery time. Tests use this to
    /// exercise the halted-node path of [`recover_for_node`].
    pub fn fail_reads(&mut self) {
        self.fail_reads = true;
    }
}

impl LogStore for MemStore {
    fn append(&mut self, data: &[u8]) -> std::io::Result<()> {
        self.data.extend_from_slice(data);
        Ok(())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
    fn read_all(&self) -> std::io::Result<Vec<u8>> {
        if self.fail_reads {
            return Err(std::io::Error::other("injected log read failure"));
        }
        Ok(self.data.clone())
    }
    fn truncate(&mut self) -> std::io::Result<()> {
        self.data.clear();
        Ok(())
    }
}

/// File-backed store for the live runtime.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    path: std::path::PathBuf,
}

impl FileStore {
    /// Open (creating if needed) the log file at `path`.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileStore { file, path })
    }
}

impl LogStore for FileStore {
    fn append(&mut self, data: &[u8]) -> std::io::Result<()> {
        self.file.write_all(data)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
    fn read_all(&self) -> std::io::Result<Vec<u8>> {
        let mut f = File::open(&self.path)?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }
    fn truncate(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()
    }
}

/// A typed write-ahead log of `R` records over any [`LogStore`].
///
/// ```
/// use crew_storage::{DbOp, InstanceStatus, Wal};
/// use crew_model::{InstanceId, SchemaId};
///
/// let mut wal: Wal<DbOp> = Wal::in_memory();
/// let instance = InstanceId::new(SchemaId(1), 1);
/// wal.append(&DbOp::InstanceCreated { instance }).unwrap();
/// wal.append(&DbOp::StatusChanged { instance, status: InstanceStatus::Committed })
///     .unwrap();
/// let recovered = wal.recover().unwrap();
/// assert_eq!(recovered.len(), 2);
/// ```
pub struct Wal<R, S = MemStore> {
    store: S,
    /// Records appended (monotone; recovery resets it to the scan count).
    appended: u64,
    _marker: std::marker::PhantomData<fn() -> R>,
}

impl<R: Encode + Decode> Wal<R, MemStore> {
    /// A fresh in-memory log.
    pub fn in_memory() -> Self {
        Wal::with_store(MemStore::default())
    }
}

impl<R: Encode + Decode, S: LogStore> Wal<R, S> {
    /// Build over a specific backing store.
    pub fn with_store(store: S) -> Self {
        Wal {
            store,
            appended: 0,
            _marker: std::marker::PhantomData,
        }
    }

    fn encode_frame(record: &R, frame: &mut BytesMut) {
        let payload = record.to_bytes();
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(&payload));
        frame.put_slice(&payload);
    }

    /// Append one record durably (one flush per record).
    pub fn append(&mut self, record: &R) -> std::io::Result<()> {
        self.append_nosync(record)?;
        self.store.flush()
    }

    /// Append one record without flushing. The record is durable only
    /// after the next [`Wal::flush`] (or a durable append); callers must
    /// not act on it externally before then — the engine's group commit
    /// flushes once per delivered message, before its outputs leave the
    /// node.
    pub fn append_nosync(&mut self, record: &R) -> std::io::Result<()> {
        let mut frame = BytesMut::new();
        Self::encode_frame(record, &mut frame);
        self.store.append(&frame)?;
        self.appended += 1;
        Ok(())
    }

    /// Make every appended record durable.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.store.flush()
    }

    /// Group commit: encode all `records` into one contiguous buffer,
    /// append it with a single store write and make it durable with a
    /// single flush — one `sync_data` per batch instead of per record.
    /// Returns the number of records appended.
    pub fn append_batch<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a R>,
    ) -> std::io::Result<usize>
    where
        R: 'a,
    {
        let mut frame = BytesMut::new();
        let mut n = 0usize;
        for record in records {
            Self::encode_frame(record, &mut frame);
            n += 1;
        }
        if n == 0 {
            return Ok(0);
        }
        self.store.append(&frame)?;
        self.store.flush()?;
        self.appended += n as u64;
        Ok(n)
    }

    /// Discard the whole log and reset the append counter. Used by
    /// checkpoint compaction, which rewrites the live suffix right after.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.store.truncate()?;
        self.appended = 0;
        Ok(())
    }

    /// Number of records appended through this handle since creation or the
    /// last [`Wal::recover`].
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Scan the log and return every intact record in append order. A torn
    /// or corrupt tail terminates the scan silently (those writes were not
    /// acknowledged); a corrupt record *followed by* intact data is still
    /// treated as end-of-log, which is safe because appends are sequential.
    pub fn recover(&mut self) -> std::io::Result<Vec<R>> {
        let raw = self.store.read_all()?;
        let mut buf = Bytes::from(raw);
        let mut out = Vec::new();
        loop {
            if buf.remaining() < 8 {
                break;
            }
            let len = buf.get_u32_le() as usize;
            let crc = buf.get_u32_le();
            if buf.remaining() < len {
                break; // torn tail
            }
            let payload = buf.split_to(len);
            if crc32(&payload) != crc {
                break; // corrupt record: stop at last consistent prefix
            }
            let mut p = payload;
            match R::decode(&mut p) {
                Ok(rec) => out.push(rec),
                Err(_) => break,
            }
        }
        self.appended = out.len() as u64;
        Ok(out)
    }

    /// Access the underlying store (tests inject corruption through this).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }
}

/// Recovery helper: the result of a recovery scan plus diagnostics.
#[derive(Debug)]
pub struct RecoveryReport<R> {
    /// Intact records, in order.
    pub records: Vec<R>,
    /// Whether the scan stopped early (torn/corrupt tail detected).
    pub truncated: bool,
}

/// Like [`Wal::recover`], but reporting whether a tail was dropped.
pub fn recover_with_report<R: Encode + Decode, S: LogStore>(
    wal: &mut Wal<R, S>,
) -> std::io::Result<RecoveryReport<R>> {
    let raw = wal.store.read_all()?;
    let total_len = raw.len();
    let mut consumed = 0usize;
    let mut buf = Bytes::from(raw);
    let mut records = Vec::new();
    loop {
        if buf.remaining() < 8 {
            break;
        }
        let len = buf.get_u32_le() as usize;
        let crc = buf.get_u32_le();
        if buf.remaining() < len {
            break;
        }
        let payload = buf.split_to(len);
        if crc32(&payload) != crc {
            break;
        }
        let mut p = payload;
        match R::decode(&mut p) {
            Ok(rec) => {
                records.push(rec);
                consumed += 8 + len;
            }
            Err(_) => break,
        }
    }
    wal.appended = records.len() as u64;
    Ok(RecoveryReport {
        records,
        truncated: consumed != total_len,
    })
}

/// Node-side recovery that degrades instead of panicking: `None` means the
/// log could not be read, in which case the node should go *silent*
/// (fail-stop becomes fail-silent) rather than take down the whole run.
/// Both the distributed agents and the central/parallel engines recover
/// through this path, so a broken log surfaces as a halted-node outcome —
/// dependants stall, the harness's bounded horizon ends the run, and
/// unaffected instances still commit.
pub fn recover_for_node<R: Encode + Decode, S: LogStore>(wal: &mut Wal<R, S>) -> Option<Vec<R>> {
    wal.recover().ok()
}

/// A decoded-or-not error for callers that treat codec failures as I/O.
#[derive(Debug)]
pub enum WalError {
    /// Io.
    Io(std::io::Error),
    /// Codec.
    Codec(CodecError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Codec(e) => write!(f, "wal codec error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{InstanceId, SchemaId, Value};

    #[derive(Debug, Clone, PartialEq)]
    struct Rec {
        instance: InstanceId,
        note: String,
        value: Value,
    }

    impl Encode for Rec {
        fn encode(&self, buf: &mut BytesMut) {
            self.instance.encode(buf);
            self.note.encode(buf);
            self.value.encode(buf);
        }
    }
    impl Decode for Rec {
        fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
            Ok(Rec {
                instance: InstanceId::decode(buf)?,
                note: String::decode(buf)?,
                value: Value::decode(buf)?,
            })
        }
    }

    fn rec(n: u32) -> Rec {
        Rec {
            instance: InstanceId::new(SchemaId(1), n),
            note: format!("step {n}"),
            value: Value::Int(n as i64),
        }
    }

    #[test]
    fn append_and_recover() {
        let mut wal: Wal<Rec> = Wal::in_memory();
        for n in 0..10 {
            wal.append(&rec(n)).unwrap();
        }
        assert_eq!(wal.appended(), 10);
        let back = wal.recover().unwrap();
        assert_eq!(back.len(), 10);
        assert_eq!(back[3], rec(3));
    }

    #[test]
    fn torn_tail_dropped() {
        let mut wal: Wal<Rec> = Wal::in_memory();
        wal.append(&rec(1)).unwrap();
        wal.append(&rec(2)).unwrap();
        // Simulate a torn final write: half a frame.
        wal.store_mut().append(&[5, 0, 0, 0, 1, 2]).unwrap();
        let report = recover_with_report(&mut wal).unwrap();
        assert_eq!(report.records.len(), 2);
        assert!(report.truncated);
    }

    #[test]
    fn corrupt_payload_stops_scan() {
        let mut wal: Wal<Rec> = Wal::in_memory();
        wal.append(&rec(1)).unwrap();
        // Flip a payload byte of a fully-framed record.
        let mut second = BytesMut::new();
        let payload = rec(2).to_bytes();
        second.put_u32_le(payload.len() as u32);
        second.put_u32_le(crc32(&payload) ^ 1); // wrong crc
        second.put_slice(&payload);
        wal.store_mut().append(&second).unwrap();
        wal.append(&rec(3)).unwrap(); // intact but after the corruption
        let back = wal.recover().unwrap();
        assert_eq!(back, vec![rec(1)]);
    }

    #[test]
    fn empty_log_recovers_empty() {
        let mut wal: Wal<Rec> = Wal::in_memory();
        assert!(wal.recover().unwrap().is_empty());
        assert_eq!(wal.appended(), 0);
    }

    #[test]
    fn unreadable_log_recovers_none() {
        let mut wal: Wal<Rec> = Wal::in_memory();
        wal.append(&rec(1)).unwrap();
        wal.store_mut().fail_reads();
        assert!(wal.recover().is_err());
        assert!(recover_for_node(&mut wal).is_none());
    }

    /// A temp directory removed in full on drop — earlier versions of these
    /// tests removed only the log file and leaked the directory.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("crew-wal-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        fn path(&self, name: &str) -> std::path::PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn file_store_round_trips() {
        let dir = TempDir::new("roundtrip");
        let path = dir.path("agent.wal");
        {
            let mut wal: Wal<Rec, FileStore> = Wal::with_store(FileStore::open(&path).unwrap());
            wal.append(&rec(7)).unwrap();
            wal.append(&rec(8)).unwrap();
        }
        let mut wal: Wal<Rec, FileStore> = Wal::with_store(FileStore::open(&path).unwrap());
        let back = wal.recover().unwrap();
        assert_eq!(back, vec![rec(7), rec(8)]);
    }

    #[test]
    fn batch_append_round_trips_and_counts() {
        let mut wal: Wal<Rec> = Wal::in_memory();
        let records: Vec<Rec> = (0..5).map(rec).collect();
        assert_eq!(wal.append_batch(&records).unwrap(), 5);
        assert_eq!(wal.append_batch(std::iter::empty()).unwrap(), 0);
        assert_eq!(wal.appended(), 5);
        assert_eq!(wal.recover().unwrap(), records);
    }

    #[test]
    fn batch_and_per_record_appends_are_byte_identical() {
        let records: Vec<Rec> = (0..4).map(rec).collect();
        let mut one: Wal<Rec> = Wal::in_memory();
        for r in &records {
            one.append(r).unwrap();
        }
        let mut batched: Wal<Rec> = Wal::in_memory();
        batched.append_batch(&records).unwrap();
        assert_eq!(
            one.store_mut().read_all().unwrap(),
            batched.store_mut().read_all().unwrap(),
            "group commit changes flush boundaries, never the log bytes"
        );
    }

    #[test]
    fn file_store_torn_batch_recovers_last_consistent_prefix() {
        // Crash-shaped: a group-committed batch whose tail write was torn
        // (the handle dropped mid-batch, the device kept a byte prefix)
        // must recover to the last consistent record prefix.
        let dir = TempDir::new("torn-batch");
        let path = dir.path("engine.wal");
        {
            let mut wal: Wal<Rec, FileStore> = Wal::with_store(FileStore::open(&path).unwrap());
            wal.append_batch((0..3).map(rec).collect::<Vec<_>>().iter())
                .unwrap();
            // Second batch starts going out and the node dies mid-write:
            // drop the handle after truncating inside the batch's last
            // record frame.
            wal.append_batch((3..6).map(rec).collect::<Vec<_>>().iter())
                .unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full_len - 5)
            .unwrap();
        let mut wal: Wal<Rec, FileStore> = Wal::with_store(FileStore::open(&path).unwrap());
        let report = recover_with_report(&mut wal).unwrap();
        assert_eq!(
            report.records,
            (0..5).map(rec).collect::<Vec<_>>(),
            "intact records survive; the torn final record is dropped"
        );
        assert!(report.truncated);
        // The log stays appendable after the torn tail... but recovery
        // semantics (scan stops at first tear) mean the torn bytes must be
        // discarded before new appends. reset() models the rewrite.
        wal.reset().unwrap();
        assert_eq!(wal.appended(), 0);
        wal.append(&rec(9)).unwrap();
        assert_eq!(wal.recover().unwrap(), vec![rec(9)]);
    }

    #[test]
    fn reset_empties_the_log() {
        let mut wal: Wal<Rec> = Wal::in_memory();
        wal.append(&rec(1)).unwrap();
        wal.append(&rec(2)).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.appended(), 0);
        assert!(wal.recover().unwrap().is_empty());
    }
}
