//! The workflow database tables.
//!
//! §2 and §4.1 describe the same table layout at the central engine (WFDB)
//! and at every distributed agent (AGDB): a *workflow class table* per
//! schema linked to *workflow instance tables* (data + event state per
//! instance), a *step table* (step status/results), and — at coordination
//! agents only — the *coordination instance summary table* that serves
//! front-end status requests.
//!
//! [`AgentDb`] is that store, with every mutation expressed as a loggable
//! [`DbOp`] so the node's WAL can forward-recover the exact projection
//! after a crash: `apply(op)` both mutates and (at the caller's choice)
//! appends to the log; `replay(ops)` rebuilds from scratch.

use crate::codec::{CodecError, Decode, Encode};
use bytes::{Bytes, BytesMut};
use crew_model::{DataEnv, InstanceId, ItemKey, SchemaId, StepId, Value};
use std::collections::BTreeMap;

/// Instance status as tracked in the coordination instance summary table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceStatus {
    /// Still in progress.
    Executing,
    /// Terminated successfully; effects permanent.
    Committed,
    /// Terminated by abort; effects compensated.
    Aborted,
}

impl InstanceStatus {
    fn tag(self) -> u8 {
        match self {
            InstanceStatus::Executing => 0,
            InstanceStatus::Committed => 1,
            InstanceStatus::Aborted => 2,
        }
    }
    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(InstanceStatus::Executing),
            1 => Ok(InstanceStatus::Committed),
            2 => Ok(InstanceStatus::Aborted),
            tag => Err(CodecError::BadTag {
                context: "InstanceStatus",
                tag,
            }),
        }
    }
}

/// Step status as persisted in the step table (mirrors
/// `crew_exec::StepState` without depending on it, keeping storage
/// self-contained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoredStepState {
    /// Still in progress.
    Executing,
    /// Done.
    Done,
    /// Failed.
    Failed,
    /// Compensated.
    Compensated,
}

impl StoredStepState {
    fn tag(self) -> u8 {
        match self {
            StoredStepState::Executing => 0,
            StoredStepState::Done => 1,
            StoredStepState::Failed => 2,
            StoredStepState::Compensated => 3,
        }
    }
    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(StoredStepState::Executing),
            1 => Ok(StoredStepState::Done),
            2 => Ok(StoredStepState::Failed),
            3 => Ok(StoredStepState::Compensated),
            tag => Err(CodecError::BadTag {
                context: "StoredStepState",
                tag,
            }),
        }
    }
}

/// One loggable mutation of the agent database. Variant fields follow
/// the naming of the tables they touch.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum DbOp {
    /// Create (or re-register) an instance of `schema`.
    /// Instancecreated.
    InstanceCreated { instance: InstanceId },
    /// Write one data item of an instance.
    /// Datawritten.
    DataWritten {
        instance: InstanceId,
        key: ItemKey,
        value: Value,
    },
    /// Remove the outputs of a step from an instance's data table
    /// (compensation).
    /// Stepoutputscleared.
    StepOutputsCleared { instance: InstanceId, step: StepId },
    /// Record an event occurrence (by its stable code, e.g. "S2.D").
    /// Eventposted.
    EventPosted { instance: InstanceId, code: String },
    /// Invalidate an event occurrence (rollback).
    /// Eventinvalidated.
    EventInvalidated { instance: InstanceId, code: String },
    /// Update a step's persisted state/result.
    StepRecorded {
        /// Instance.
        instance: InstanceId,
        /// Step.
        step: StepId,
        /// State.
        state: StoredStepState,
        /// Attempt.
        attempt: u32,
        /// Outputs.
        outputs: Vec<Value>,
    },
    /// Update the coordination instance summary table.
    /// Statuschanged.
    StatusChanged {
        instance: InstanceId,
        status: InstanceStatus,
    },
    /// Drop all state of a committed instance (purge broadcast).
    /// Instancepurged.
    InstancePurged { instance: InstanceId },
    /// A logical *command* record: one input message delivered to an
    /// engine, stored verbatim (codec-encoded) before it is handled.
    /// Engines are deterministic state machines over their delivered
    /// message stream, so replaying the commands with outputs discarded
    /// rebuilds every volatile structure the table ops cannot capture
    /// (rule-set firing state, flow weights, OCR bookkeeping, in-flight
    /// coordination). Not a table mutation — [`AgentDb::apply`] ignores it.
    EngineInput {
        /// Sending node id (`u32::MAX` = external).
        from: u32,
        /// Codec-encoded message payload.
        payload: Vec<u8>,
    },
}

impl Encode for DbOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            DbOp::InstanceCreated { instance } => {
                0u8.encode(buf);
                instance.encode(buf);
            }
            DbOp::DataWritten {
                instance,
                key,
                value,
            } => {
                1u8.encode(buf);
                instance.encode(buf);
                key.encode(buf);
                value.encode(buf);
            }
            DbOp::StepOutputsCleared { instance, step } => {
                2u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            DbOp::EventPosted { instance, code } => {
                3u8.encode(buf);
                instance.encode(buf);
                code.encode(buf);
            }
            DbOp::EventInvalidated { instance, code } => {
                4u8.encode(buf);
                instance.encode(buf);
                code.encode(buf);
            }
            DbOp::StepRecorded {
                instance,
                step,
                state,
                attempt,
                outputs,
            } => {
                5u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                state.tag().encode(buf);
                attempt.encode(buf);
                outputs.encode(buf);
            }
            DbOp::StatusChanged { instance, status } => {
                6u8.encode(buf);
                instance.encode(buf);
                status.tag().encode(buf);
            }
            DbOp::InstancePurged { instance } => {
                7u8.encode(buf);
                instance.encode(buf);
            }
            DbOp::EngineInput { from, payload } => {
                8u8.encode(buf);
                from.encode(buf);
                payload.encode(buf);
            }
        }
    }
}

impl Decode for DbOp {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(DbOp::InstanceCreated {
                instance: InstanceId::decode(buf)?,
            }),
            1 => Ok(DbOp::DataWritten {
                instance: InstanceId::decode(buf)?,
                key: ItemKey::decode(buf)?,
                value: Value::decode(buf)?,
            }),
            2 => Ok(DbOp::StepOutputsCleared {
                instance: InstanceId::decode(buf)?,
                step: StepId::decode(buf)?,
            }),
            3 => Ok(DbOp::EventPosted {
                instance: InstanceId::decode(buf)?,
                code: String::decode(buf)?,
            }),
            4 => Ok(DbOp::EventInvalidated {
                instance: InstanceId::decode(buf)?,
                code: String::decode(buf)?,
            }),
            5 => Ok(DbOp::StepRecorded {
                instance: InstanceId::decode(buf)?,
                step: StepId::decode(buf)?,
                state: StoredStepState::from_tag(u8::decode(buf)?)?,
                attempt: u32::decode(buf)?,
                outputs: Vec::<Value>::decode(buf)?,
            }),
            6 => Ok(DbOp::StatusChanged {
                instance: InstanceId::decode(buf)?,
                status: InstanceStatus::from_tag(u8::decode(buf)?)?,
            }),
            7 => Ok(DbOp::InstancePurged {
                instance: InstanceId::decode(buf)?,
            }),
            8 => Ok(DbOp::EngineInput {
                from: u32::decode(buf)?,
                payload: Vec::<u8>::decode(buf)?,
            }),
            tag => Err(CodecError::BadTag {
                context: "DbOp",
                tag,
            }),
        }
    }
}

/// Persisted per-instance state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstanceTable {
    /// The instance data table.
    pub data: DataEnv,
    /// Present (valid) event codes with occurrence counts.
    pub events: BTreeMap<String, u32>,
    /// Step table rows: persisted status per step.
    pub steps: BTreeMap<StepId, (StoredStepState, u32, Vec<Value>)>,
}

/// The agent/engine database: instance tables plus the coordination
/// instance summary.
#[derive(Debug, Clone, Default)]
pub struct AgentDb {
    instances: BTreeMap<InstanceId, InstanceTable>,
    /// Coordination instance summary table (only populated at nodes acting
    /// as coordination agents / the central engine).
    summary: BTreeMap<InstanceId, InstanceStatus>,
}

impl AgentDb {
    /// Create a new, empty value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one mutation to the projection. (Appending to the WAL is the
    /// caller's job — write ahead, then apply.)
    pub fn apply(&mut self, op: &DbOp) {
        match op {
            DbOp::InstanceCreated { instance } => {
                self.instances.entry(*instance).or_default();
            }
            DbOp::DataWritten {
                instance,
                key,
                value,
            } => {
                self.instances
                    .entry(*instance)
                    .or_default()
                    .data
                    .set(*key, value.clone());
            }
            DbOp::StepOutputsCleared { instance, step } => {
                if let Some(t) = self.instances.get_mut(instance) {
                    t.data.clear_step_outputs(*step);
                }
            }
            DbOp::EventPosted { instance, code } => {
                *self
                    .instances
                    .entry(*instance)
                    .or_default()
                    .events
                    .entry(code.clone())
                    .or_default() += 1;
            }
            DbOp::EventInvalidated { instance, code } => {
                if let Some(t) = self.instances.get_mut(instance) {
                    t.events.remove(code);
                }
            }
            DbOp::StepRecorded {
                instance,
                step,
                state,
                attempt,
                outputs,
            } => {
                self.instances
                    .entry(*instance)
                    .or_default()
                    .steps
                    .insert(*step, (*state, *attempt, outputs.clone()));
            }
            DbOp::StatusChanged { instance, status } => {
                self.summary.insert(*instance, *status);
            }
            DbOp::InstancePurged { instance } => {
                self.instances.remove(instance);
            }
            DbOp::EngineInput { .. } => {
                // Command record: consumed by engine replay, not a table op.
            }
        }
    }

    /// Rebuild the projection from a recovered op sequence.
    pub fn replay<'a>(ops: impl IntoIterator<Item = &'a DbOp>) -> Self {
        let mut db = AgentDb::new();
        for op in ops {
            db.apply(op);
        }
        db
    }

    /// The workflow instance concerned.
    pub fn instance(&self, id: InstanceId) -> Option<&InstanceTable> {
        self.instances.get(&id)
    }

    /// Instances.
    pub fn instances(&self) -> impl Iterator<Item = (&InstanceId, &InstanceTable)> {
        self.instances.iter()
    }

    /// Coordination instance summary lookup (front-end `WorkflowStatus`).
    pub fn status(&self, id: InstanceId) -> Option<InstanceStatus> {
        self.summary.get(&id).copied()
    }

    /// Instances of `schema` known to this node.
    pub fn instances_of(&self, schema: SchemaId) -> Vec<InstanceId> {
        self.instances
            .keys()
            .filter(|i| i.schema == schema)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Wal;

    fn inst(n: u32) -> InstanceId {
        InstanceId::new(SchemaId(1), n)
    }

    #[test]
    fn ops_round_trip_through_codec() {
        let ops = vec![
            DbOp::InstanceCreated { instance: inst(1) },
            DbOp::DataWritten {
                instance: inst(1),
                key: ItemKey::output(StepId(2), 1),
                value: Value::Int(45),
            },
            DbOp::StepOutputsCleared {
                instance: inst(1),
                step: StepId(2),
            },
            DbOp::EventPosted {
                instance: inst(1),
                code: "S2.D".into(),
            },
            DbOp::EventInvalidated {
                instance: inst(1),
                code: "S2.D".into(),
            },
            DbOp::StepRecorded {
                instance: inst(1),
                step: StepId(2),
                state: StoredStepState::Done,
                attempt: 2,
                outputs: vec![Value::Str("Gasket".into())],
            },
            DbOp::StatusChanged {
                instance: inst(1),
                status: InstanceStatus::Committed,
            },
            DbOp::InstancePurged { instance: inst(1) },
            DbOp::EngineInput {
                from: u32::MAX,
                payload: vec![0, 1, 2, 255],
            },
        ];
        for op in &ops {
            let mut bytes = op.to_bytes();
            assert_eq!(&DbOp::decode(&mut bytes).unwrap(), op);
        }
    }

    #[test]
    fn apply_builds_projection() {
        let mut db = AgentDb::new();
        db.apply(&DbOp::InstanceCreated { instance: inst(1) });
        db.apply(&DbOp::DataWritten {
            instance: inst(1),
            key: ItemKey::input(1),
            value: Value::Int(90),
        });
        db.apply(&DbOp::EventPosted {
            instance: inst(1),
            code: "WF.S".into(),
        });
        db.apply(&DbOp::StepRecorded {
            instance: inst(1),
            step: StepId(1),
            state: StoredStepState::Done,
            attempt: 1,
            outputs: vec![Value::Int(20)],
        });
        db.apply(&DbOp::StatusChanged {
            instance: inst(1),
            status: InstanceStatus::Executing,
        });

        let t = db.instance(inst(1)).unwrap();
        assert_eq!(t.data.get(&ItemKey::input(1)), Some(&Value::Int(90)));
        assert_eq!(t.events["WF.S"], 1);
        assert_eq!(t.steps[&StepId(1)].0, StoredStepState::Done);
        assert_eq!(db.status(inst(1)), Some(InstanceStatus::Executing));
        assert_eq!(db.instances_of(SchemaId(1)), vec![inst(1)]);
        assert!(db.instances_of(SchemaId(9)).is_empty());
    }

    #[test]
    fn replay_equals_apply() {
        let ops = vec![
            DbOp::InstanceCreated { instance: inst(1) },
            DbOp::DataWritten {
                instance: inst(1),
                key: ItemKey::input(1),
                value: Value::Int(7),
            },
            DbOp::EventPosted {
                instance: inst(1),
                code: "S1.D".into(),
            },
            DbOp::EventPosted {
                instance: inst(1),
                code: "S1.D".into(),
            },
        ];
        let mut direct = AgentDb::new();
        for op in &ops {
            direct.apply(op);
        }
        let replayed = AgentDb::replay(&ops);
        assert_eq!(
            direct.instance(inst(1)).unwrap(),
            replayed.instance(inst(1)).unwrap()
        );
        assert_eq!(replayed.instance(inst(1)).unwrap().events["S1.D"], 2);
    }

    #[test]
    fn wal_backed_recovery() {
        let mut wal: Wal<DbOp> = Wal::in_memory();
        let ops = vec![
            DbOp::InstanceCreated { instance: inst(4) },
            DbOp::DataWritten {
                instance: inst(4),
                key: ItemKey::output(StepId(1), 2),
                value: Value::Str("Gasket".into()),
            },
            DbOp::EventPosted {
                instance: inst(4),
                code: "S1.D".into(),
            },
        ];
        for op in &ops {
            wal.append(op).unwrap();
        }
        let recovered = wal.recover().unwrap();
        let db = AgentDb::replay(&recovered);
        let t = db.instance(inst(4)).unwrap();
        assert_eq!(
            t.data.get(&ItemKey::output(StepId(1), 2)),
            Some(&Value::Str("Gasket".into()))
        );
    }

    #[test]
    fn engine_input_is_not_a_table_op() {
        let mut db = AgentDb::new();
        db.apply(&DbOp::EngineInput {
            from: 3,
            payload: vec![1, 2, 3],
        });
        assert_eq!(db.instances().count(), 0);
    }

    #[test]
    fn purge_drops_instance_state() {
        let mut db = AgentDb::new();
        db.apply(&DbOp::InstanceCreated { instance: inst(1) });
        db.apply(&DbOp::InstancePurged { instance: inst(1) });
        assert!(db.instance(inst(1)).is_none());
    }

    #[test]
    fn invalidation_removes_event() {
        let mut db = AgentDb::new();
        db.apply(&DbOp::EventPosted {
            instance: inst(1),
            code: "S3.D".into(),
        });
        db.apply(&DbOp::EventInvalidated {
            instance: inst(1),
            code: "S3.D".into(),
        });
        assert!(db.instance(inst(1)).unwrap().events.is_empty());
    }
}
