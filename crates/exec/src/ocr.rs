//! Opportunistic compensation and re-execution (OCR) — the decision
//! procedure of Figure 5.
//!
//! When rollback + re-execution revisits a step that already executed, OCR
//! evaluates the step's *compensation and re-execution condition* against
//! the current data table (including the recorded inputs of the previous
//! execution) and picks one of three courses:
//!
//! 1. **Reuse** — the previous execution's results suffice: no compensation,
//!    no re-execution; a `step.done` event is generated immediately.
//! 2. **Partial compensation + incremental re-execution** — undo and redo
//!    only the delta; costs a configurable fraction of a full run.
//! 3. **Complete compensation + complete re-execution** — the previous
//!    execution is useless in the new context.
//!
//! If the step belongs to a compensation dependent set, members of the set
//! that executed *after* it must be compensated first, in reverse execution
//! order — the hosts drive that via the `CompensateSet` protocol and then
//! apply the per-step decision below.

use crate::failure::FailurePlan;
use crate::history::{InstanceHistory, StepState};
use crew_model::{CompensationKind, DataEnv, InstanceId, ReexecPolicy, StepDef};

/// Fraction of a full execution charged for an incremental re-execution
/// (and of a full compensation for a partial one). The paper leaves the
/// magnitude to the application; a quarter is a representative "savings are
/// considerable" setting and is swept by the ablation benches.
pub const INCREMENTAL_FRACTION: f64 = 0.25;

/// The outcome of the OCR decision for one revisited step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OcrDecision {
    /// Previous results are reused; emit `step.done` without running
    /// anything.
    Reuse,
    /// Compensate partially, then re-execute incrementally.
    PartialCompensateIncrementalReexec,
    /// Compensate completely, then re-execute from scratch.
    CompleteCompensateCompleteReexec,
    /// The step never executed (or was already compensated): execute
    /// normally; nothing to compensate.
    ExecuteFresh,
}

impl OcrDecision {
    /// Does this decision involve running the program (fully or
    /// incrementally)?
    pub fn reexecutes(self) -> bool {
        !matches!(self, OcrDecision::Reuse)
    }

    /// Does this decision involve compensating the previous execution?
    pub fn compensates(self) -> bool {
        matches!(
            self,
            OcrDecision::PartialCompensateIncrementalReexec
                | OcrDecision::CompleteCompensateCompleteReexec
        )
    }

    /// Abstract instruction cost of the decision given the step definition.
    pub fn cost(self, def: &StepDef) -> u64 {
        match self {
            OcrDecision::Reuse => 0,
            OcrDecision::PartialCompensateIncrementalReexec => {
                let comp = (def.compensation_cost() as f64 * INCREMENTAL_FRACTION) as u64;
                let run = (def.cost as f64 * INCREMENTAL_FRACTION) as u64;
                comp + run
            }
            OcrDecision::CompleteCompensateCompleteReexec => def.compensation_cost() + def.cost,
            OcrDecision::ExecuteFresh => def.cost,
        }
    }
}

/// Evaluate the OCR decision for a revisited `step`.
///
/// ```
/// use crew_exec::{ocr_decide, FailurePlan, InstanceHistory, OcrDecision};
/// use crew_model::{DataEnv, InstanceId, SchemaId, StepDef, StepId};
///
/// let def = StepDef::new(StepId(1), "S1", "p");
/// let inst = InstanceId::new(SchemaId(1), 1);
/// let mut history = InstanceHistory::new();
/// // Never executed: plain execution.
/// assert_eq!(
///     ocr_decide(&def, inst, &history, &DataEnv::new(), &FailurePlan::none()),
///     OcrDecision::ExecuteFresh
/// );
/// // Executed with unchanged (empty) inputs: reuse the previous result.
/// let a = history.begin_attempt(def.id);
/// history.record_done(def.id, a, vec![], vec![]);
/// assert_eq!(
///     ocr_decide(&def, inst, &history, &DataEnv::new(), &FailurePlan::none()),
///     OcrDecision::Reuse
/// );
/// ```
///
/// * `def` — the step definition (policy, compensation kind).
/// * `history` — the instance's execution history at the deciding node.
/// * `env` — the instance's current data table (new inputs already merged).
/// * `plan` — failure plan supplying the `pr` drift draw for workloads
///   whose input changes are not visible in the data table.
pub fn decide(
    def: &StepDef,
    instance: InstanceId,
    history: &InstanceHistory,
    env: &DataEnv,
    plan: &FailurePlan,
) -> OcrDecision {
    let record = match history.record(def.id) {
        Some(r) if r.state == StepState::Done => r,
        // Never completed (or compensated already): plain execution.
        _ => return OcrDecision::ExecuteFresh,
    };

    let needs_reexec = match &def.reexec {
        ReexecPolicy::Never => false,
        ReexecPolicy::Always => true,
        ReexecPolicy::IfInputsChanged => {
            let current = env.project(&def.input_keys());
            current != record.inputs || plan.revisit_requires_reexec(instance, def.id)
        }
        ReexecPolicy::When(cond) => cond.eval_bool(env).unwrap_or(true),
    };

    if !needs_reexec {
        return OcrDecision::Reuse;
    }
    match def.compensation_kind {
        CompensationKind::Partial => OcrDecision::PartialCompensateIncrementalReexec,
        CompensationKind::Complete => OcrDecision::CompleteCompensateCompleteReexec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{Expr, ItemKey, SchemaId, StepId, Value};

    fn setup(policy: ReexecPolicy, comp: CompensationKind) -> (StepDef, InstanceId) {
        let mut def = StepDef::new(StepId(2), "S2", "p");
        def.reexec = policy;
        def.compensation_kind = comp;
        def.inputs = vec![crew_model::InputBinding {
            source: ItemKey::input(1),
        }];
        def.cost = 100;
        def.compensation_cost = Some(80);
        (def, InstanceId::new(SchemaId(1), 1))
    }

    fn history_done(def: &StepDef, input: i64) -> InstanceHistory {
        let mut h = InstanceHistory::new();
        let a = h.begin_attempt(def.id);
        h.record_done(
            def.id,
            a,
            vec![Some(Value::Int(input))],
            vec![Value::Int(0)],
        );
        h
    }

    fn env_with(input: i64) -> DataEnv {
        let mut e = DataEnv::new();
        e.set(ItemKey::input(1), Value::Int(input));
        e
    }

    #[test]
    fn fresh_when_no_record() {
        let (def, inst) = setup(ReexecPolicy::IfInputsChanged, CompensationKind::Complete);
        let h = InstanceHistory::new();
        assert_eq!(
            decide(&def, inst, &h, &env_with(1), &FailurePlan::none()),
            OcrDecision::ExecuteFresh
        );
    }

    #[test]
    fn fresh_when_already_compensated() {
        let (def, inst) = setup(ReexecPolicy::IfInputsChanged, CompensationKind::Complete);
        let mut h = history_done(&def, 1);
        h.record_compensated(def.id);
        assert_eq!(
            decide(&def, inst, &h, &env_with(1), &FailurePlan::none()),
            OcrDecision::ExecuteFresh
        );
    }

    #[test]
    fn reuse_when_inputs_unchanged() {
        let (def, inst) = setup(ReexecPolicy::IfInputsChanged, CompensationKind::Complete);
        let h = history_done(&def, 5);
        assert_eq!(
            decide(&def, inst, &h, &env_with(5), &FailurePlan::none()),
            OcrDecision::Reuse
        );
    }

    #[test]
    fn reexec_when_inputs_changed() {
        let (def, inst) = setup(ReexecPolicy::IfInputsChanged, CompensationKind::Complete);
        let h = history_done(&def, 5);
        assert_eq!(
            decide(&def, inst, &h, &env_with(6), &FailurePlan::none()),
            OcrDecision::CompleteCompensateCompleteReexec
        );
    }

    #[test]
    fn partial_when_step_declares_partial_compensation() {
        let (def, inst) = setup(ReexecPolicy::Always, CompensationKind::Partial);
        let h = history_done(&def, 5);
        assert_eq!(
            decide(&def, inst, &h, &env_with(5), &FailurePlan::none()),
            OcrDecision::PartialCompensateIncrementalReexec
        );
    }

    #[test]
    fn never_policy_always_reuses() {
        let (def, inst) = setup(ReexecPolicy::Never, CompensationKind::Complete);
        let h = history_done(&def, 5);
        assert_eq!(
            decide(&def, inst, &h, &env_with(999), &FailurePlan::none()),
            OcrDecision::Reuse
        );
    }

    #[test]
    fn custom_condition_policy() {
        let cond = Expr::gt(Expr::item(ItemKey::input(1)), Expr::lit(10));
        let (def, inst) = setup(ReexecPolicy::When(cond), CompensationKind::Complete);
        let h = history_done(&def, 5);
        assert_eq!(
            decide(&def, inst, &h, &env_with(11), &FailurePlan::none()),
            OcrDecision::CompleteCompensateCompleteReexec
        );
        assert_eq!(
            decide(&def, inst, &h, &env_with(9), &FailurePlan::none()),
            OcrDecision::Reuse
        );
    }

    #[test]
    fn custom_condition_error_falls_back_to_reexec() {
        // A condition over a missing item cannot prove reuse is safe:
        // default to re-execution (the conservative choice).
        let cond = Expr::gt(Expr::item(ItemKey::input(9)), Expr::lit(10));
        let (def, inst) = setup(ReexecPolicy::When(cond), CompensationKind::Complete);
        let h = history_done(&def, 5);
        assert_eq!(
            decide(&def, inst, &h, &env_with(5), &FailurePlan::none()),
            OcrDecision::CompleteCompensateCompleteReexec
        );
    }

    #[test]
    fn pr_drift_forces_reexec_despite_equal_inputs() {
        let (def, inst) = setup(ReexecPolicy::IfInputsChanged, CompensationKind::Complete);
        let h = history_done(&def, 5);
        let plan = FailurePlan::probabilistic(3, 0.0, 0.0, 0.0, 1.0);
        assert_eq!(
            decide(&def, inst, &h, &env_with(5), &plan),
            OcrDecision::CompleteCompensateCompleteReexec
        );
    }

    #[test]
    fn decision_costs() {
        let (def, _) = setup(ReexecPolicy::Always, CompensationKind::Complete);
        assert_eq!(OcrDecision::Reuse.cost(&def), 0);
        assert_eq!(OcrDecision::ExecuteFresh.cost(&def), 100);
        assert_eq!(
            OcrDecision::CompleteCompensateCompleteReexec.cost(&def),
            180
        );
        assert_eq!(
            OcrDecision::PartialCompensateIncrementalReexec.cost(&def),
            (80.0 * INCREMENTAL_FRACTION) as u64 + (100.0 * INCREMENTAL_FRACTION) as u64
        );
    }

    #[test]
    fn decision_predicates() {
        assert!(!OcrDecision::Reuse.reexecutes());
        assert!(!OcrDecision::Reuse.compensates());
        assert!(OcrDecision::ExecuteFresh.reexecutes());
        assert!(!OcrDecision::ExecuteFresh.compensates());
        assert!(OcrDecision::CompleteCompensateCompleteReexec.compensates());
        assert!(OcrDecision::PartialCompensateIncrementalReexec.compensates());
    }
}
