//! Per-instance execution history.
//!
//! OCR needs "additional data that correspond to the previous execution of
//! the steps" (§6): the inputs and outputs of each completed execution, the
//! order steps executed in (compensation dependent sets compensate in
//! *reverse execution order*), and each step's current state. Both the
//! central engine and distributed agents keep this in their step status
//! tables; in distributed control each agent holds the records of the steps
//! it executed.

use crew_model::{StepId, Value};
use std::collections::BTreeMap;

/// Current state of one step within an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepState {
    /// Never executed (or fully rolled back and forgotten).
    NotExecuted,
    /// Currently executing.
    Executing,
    /// Completed successfully; `record` holds the execution data.
    Done,
    /// Last attempt failed.
    Failed,
    /// Effects undone by compensation.
    Compensated,
}

/// The recorded facts of a step's most recent completed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// The step this entry concerns.
    pub step: StepId,
    /// 1-based attempt number of the recorded execution.
    pub attempt: u32,
    /// Global execution sequence number within the instance (assigned in
    /// completion order) — the basis for reverse-execution-order
    /// compensation.
    pub seq: u64,
    /// The input values the execution consumed (in declaration order).
    pub inputs: Vec<Option<Value>>,
    /// The outputs it produced.
    pub outputs: Vec<Value>,
    /// Current state.
    pub state: StepState,
}

/// Execution history of one workflow instance (or the locally-known slice
/// of it at a distributed agent).
#[derive(Debug, Clone, Default)]
pub struct InstanceHistory {
    records: BTreeMap<StepId, StepRecord>,
    next_seq: u64,
    /// Attempts per step, including failed ones (drives `pf` first-attempt
    /// semantics and rollback retry budgets).
    attempts: BTreeMap<StepId, u32>,
}

impl InstanceHistory {
    /// Create a new, empty value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next attempt number for `step`.
    pub fn begin_attempt(&mut self, step: StepId) -> u32 {
        let a = self.attempts.entry(step).or_insert(0);
        *a += 1;
        if let Some(rec) = self.records.get_mut(&step) {
            rec.state = StepState::Executing;
        }
        *a
    }

    /// Record a successful completion.
    pub fn record_done(
        &mut self,
        step: StepId,
        attempt: u32,
        inputs: Vec<Option<Value>>,
        outputs: Vec<Value>,
    ) -> &StepRecord {
        self.next_seq += 1;
        let rec = StepRecord {
            step,
            attempt,
            seq: self.next_seq,
            inputs,
            outputs,
            state: StepState::Done,
        };
        self.records.insert(step, rec);
        self.records.get(&step).expect("just inserted")
    }

    /// Record a failed attempt.
    pub fn record_failed(&mut self, step: StepId) {
        self.next_seq += 1;
        let seq = self.next_seq;
        let attempt = self.attempts.get(&step).copied().unwrap_or(1);
        self.records
            .entry(step)
            .and_modify(|r| r.state = StepState::Failed)
            .or_insert(StepRecord {
                step,
                attempt,
                seq,
                inputs: Vec::new(),
                outputs: Vec::new(),
                state: StepState::Failed,
            });
    }

    /// Mark a step compensated (its record is kept — OCR may still compare
    /// against the old inputs on re-execution).
    pub fn record_compensated(&mut self, step: StepId) {
        if let Some(rec) = self.records.get_mut(&step) {
            rec.state = StepState::Compensated;
        }
    }

    /// Current state of `step`.
    pub fn state(&self, step: StepId) -> StepState {
        self.records
            .get(&step)
            .map(|r| r.state)
            .unwrap_or(StepState::NotExecuted)
    }

    /// The recorded execution of `step`, if any.
    pub fn record(&self, step: StepId) -> Option<&StepRecord> {
        self.records.get(&step)
    }

    /// Attempts made for `step` so far.
    pub fn attempts(&self, step: StepId) -> u32 {
        self.attempts.get(&step).copied().unwrap_or(0)
    }

    /// Steps currently in `Done` state, most recent first — the order
    /// compensation walks.
    pub fn done_steps_reverse_order(&self) -> Vec<StepId> {
        let mut done: Vec<(&StepId, &StepRecord)> = self
            .records
            .iter()
            .filter(|(_, r)| r.state == StepState::Done)
            .collect();
        done.sort_by_key(|(_, r)| std::cmp::Reverse(r.seq));
        done.into_iter().map(|(s, _)| *s).collect()
    }

    /// Of the given set, the members that are `Done`, in reverse execution
    /// order — the `CompensateSet` walk order.
    pub fn members_reverse_order(&self, members: &[StepId]) -> Vec<StepId> {
        let mut done: Vec<&StepRecord> = members
            .iter()
            .filter_map(|s| self.records.get(s))
            .filter(|r| r.state == StepState::Done)
            .collect();
        done.sort_by_key(|r| std::cmp::Reverse(r.seq));
        done.into_iter().map(|r| r.step).collect()
    }

    /// Iterate over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &StepRecord> {
        self.records.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_counter_increments() {
        let mut h = InstanceHistory::new();
        assert_eq!(h.begin_attempt(StepId(1)), 1);
        assert_eq!(h.begin_attempt(StepId(1)), 2);
        assert_eq!(h.begin_attempt(StepId(2)), 1);
        assert_eq!(h.attempts(StepId(1)), 2);
    }

    #[test]
    fn state_transitions() {
        let mut h = InstanceHistory::new();
        assert_eq!(h.state(StepId(1)), StepState::NotExecuted);
        let a = h.begin_attempt(StepId(1));
        h.record_done(StepId(1), a, vec![], vec![Value::Int(1)]);
        assert_eq!(h.state(StepId(1)), StepState::Done);
        h.record_compensated(StepId(1));
        assert_eq!(h.state(StepId(1)), StepState::Compensated);
        h.begin_attempt(StepId(2));
        h.record_failed(StepId(2));
        assert_eq!(h.state(StepId(2)), StepState::Failed);
    }

    #[test]
    fn reverse_order_follows_completion_sequence() {
        let mut h = InstanceHistory::new();
        for s in [3, 1, 2] {
            let a = h.begin_attempt(StepId(s));
            h.record_done(StepId(s), a, vec![], vec![]);
        }
        assert_eq!(
            h.done_steps_reverse_order(),
            vec![StepId(2), StepId(1), StepId(3)]
        );
        assert_eq!(
            h.members_reverse_order(&[StepId(1), StepId(3)]),
            vec![StepId(1), StepId(3)]
        );
    }

    #[test]
    fn compensated_steps_leave_reverse_order() {
        let mut h = InstanceHistory::new();
        for s in [1, 2] {
            let a = h.begin_attempt(StepId(s));
            h.record_done(StepId(s), a, vec![], vec![]);
        }
        h.record_compensated(StepId(2));
        assert_eq!(h.done_steps_reverse_order(), vec![StepId(1)]);
    }

    #[test]
    fn reexecution_replaces_record_and_seq() {
        let mut h = InstanceHistory::new();
        let a = h.begin_attempt(StepId(1));
        h.record_done(StepId(1), a, vec![Some(Value::Int(1))], vec![]);
        let first_seq = h.record(StepId(1)).unwrap().seq;
        let a2 = h.begin_attempt(StepId(2));
        h.record_done(StepId(2), a2, vec![], vec![]);
        let a3 = h.begin_attempt(StepId(1));
        h.record_done(StepId(1), a3, vec![Some(Value::Int(9))], vec![]);
        let rec = h.record(StepId(1)).unwrap();
        assert!(rec.seq > first_seq);
        assert_eq!(rec.attempt, 2);
        assert_eq!(h.done_steps_reverse_order(), vec![StepId(1), StepId(2)]);
    }
}
