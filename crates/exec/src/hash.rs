//! Deterministic mixing for reproducible probability draws.
//!
//! The simulator must be fully deterministic: whether a step fails, whether
//! a re-executed step's inputs drift, which agent a load-balancing decision
//! picks — all of it derives from a run seed plus stable entity identifiers,
//! never from global RNG state. We use the SplitMix64 finalizer, which is
//! tiny, fast and well distributed.

/// SplitMix64 finalization step.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Combine a seed with a sequence of parts into one well-mixed word.
pub fn combine(seed: u64, parts: &[u64]) -> u64 {
    let mut acc = mix64(seed);
    for &p in parts {
        acc = mix64(acc ^ mix64(p));
    }
    acc
}

/// A deterministic draw in `[0, 1)` keyed by `seed` and `parts`.
pub fn unit_draw(seed: u64, parts: &[u64]) -> f64 {
    // 53 high bits → uniform double in [0,1).
    (combine(seed, parts) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic boolean with probability `p`, keyed by `seed`/`parts`.
pub fn draw(seed: u64, parts: &[u64], p: f64) -> bool {
    p > 0.0 && unit_draw(seed, parts) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(combine(1, &[2, 3]), combine(1, &[2, 3]));
        assert_ne!(combine(1, &[2, 3]), combine(1, &[3, 2]));
        assert_ne!(combine(1, &[2, 3]), combine(2, &[2, 3]));
    }

    #[test]
    fn unit_draw_in_range_and_spread() {
        let mut below_half = 0;
        for i in 0..1000 {
            let u = unit_draw(42, &[i]);
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        // Very loose uniformity check.
        assert!((300..700).contains(&below_half), "{below_half}");
    }

    #[test]
    fn probability_edges() {
        assert!(!draw(7, &[1], 0.0));
        assert!(draw(7, &[1], 1.0));
        let hits = (0..1000).filter(|&i| draw(9, &[i], 0.2)).count();
        assert!((120..280).contains(&hits), "{hits}");
    }
}
