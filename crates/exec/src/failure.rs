//! Failure and perturbation injection.
//!
//! The paper's analysis (§6, Table 3) is parameterized by the probability of
//! logical step failure (`pf`), workflow input change (`pi`), workflow abort
//! (`pa`) and step re-execution on revisit (`pr`). A [`FailurePlan`] turns
//! those probabilities — or explicit scripted events — into deterministic
//! per-(instance, step, attempt) decisions, so identical runs reproduce
//! identical failure patterns.

use crate::hash;
use crew_model::{InstanceId, StepId};
use std::collections::BTreeSet;

/// Deterministic source of injected logical failures and user actions.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// Seed that keys every probabilistic draw.
    pub seed: u64,
    /// Probability that a step execution fails (`pf`). Applied per
    /// (instance, step); a failing step fails only on its *first* attempt,
    /// so a rollback + re-execution makes progress (matching the paper's
    /// model where one failure triggers one rollback of `r` steps).
    pub pf: f64,
    /// Probability that a user changes the inputs of a workflow while it is
    /// in progress (`pi`). Applied per instance.
    pub pi: f64,
    /// Probability that a user aborts a workflow while it is in progress
    /// (`pa`). Applied per instance.
    pub pa: f64,
    /// Probability that a rolled-back step's inputs have effectively changed
    /// so OCR must re-execute it (`pr`). Applied per (instance, step).
    pub pr: f64,
    /// Scripted failures: (instance, step, attempt) triples that fail
    /// regardless of `pf`.
    pub scripted_failures: BTreeSet<(InstanceId, StepId, u32)>,
    /// Deterministic failures: (instance, step) pairs that fail on *every*
    /// attempt — the adversary for retry policies, which probabilistic and
    /// per-attempt scripted failures cannot model.
    pub always_fail: BTreeSet<(InstanceId, StepId)>,
    /// Scripted input changes: instances whose inputs a user changes.
    pub scripted_input_changes: BTreeSet<InstanceId>,
    /// Scripted aborts: instances a user aborts mid-flight.
    pub scripted_aborts: BTreeSet<InstanceId>,
    /// Scripted revisit re-executions: (instance, step) pairs whose OCR
    /// revisit must re-execute regardless of `pr`.
    pub scripted_reexec: BTreeSet<(InstanceId, StepId)>,
}

impl FailurePlan {
    /// A plan that never injects anything.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// A plan with the given probabilities and seed, no scripted events.
    pub fn probabilistic(seed: u64, pf: f64, pi: f64, pa: f64, pr: f64) -> Self {
        FailurePlan {
            seed,
            pf,
            pi,
            pa,
            pr,
            ..FailurePlan::default()
        }
    }

    /// Script a failure of `step` in `instance` on `attempt`.
    pub fn fail_step(mut self, instance: InstanceId, step: StepId, attempt: u32) -> Self {
        self.scripted_failures.insert((instance, step, attempt));
        self
    }

    /// Script a deterministic failure: `step` in `instance` fails on every
    /// attempt, however often it is retried.
    pub fn fail_step_always(mut self, instance: InstanceId, step: StepId) -> Self {
        self.always_fail.insert((instance, step));
        self
    }

    /// Script a user input change for `instance`.
    pub fn change_inputs(mut self, instance: InstanceId) -> Self {
        self.scripted_input_changes.insert(instance);
        self
    }

    /// Script a user abort for `instance`.
    pub fn abort(mut self, instance: InstanceId) -> Self {
        self.scripted_aborts.insert(instance);
        self
    }

    /// Script that an OCR revisit of `step` in `instance` must re-execute
    /// it (deterministic counterpart of `pr`, for exact OCR tests).
    pub fn force_reexec(mut self, instance: InstanceId, step: StepId) -> Self {
        self.scripted_reexec.insert((instance, step));
        self
    }

    fn parts(instance: InstanceId, step: StepId, salt: u64) -> [u64; 4] {
        [
            instance.schema.0 as u64,
            instance.serial as u64,
            step.0 as u64,
            salt,
        ]
    }

    /// Should this execution of `step` fail?
    pub fn step_fails(&self, instance: InstanceId, step: StepId, attempt: u32) -> bool {
        if self.always_fail.contains(&(instance, step))
            || self.scripted_failures.contains(&(instance, step, attempt))
        {
            return true;
        }
        // Probabilistic failures strike only the first attempt.
        attempt == 1 && hash::draw(self.seed, &Self::parts(instance, step, 0xFA11), self.pf)
    }

    /// Does a user change this instance's inputs mid-flight?
    pub fn inputs_change(&self, instance: InstanceId) -> bool {
        self.scripted_input_changes.contains(&instance)
            || hash::draw(
                self.seed,
                &Self::parts(instance, StepId(0), 0x1C4A),
                self.pi,
            )
    }

    /// Does a user abort this instance mid-flight?
    pub fn user_aborts(&self, instance: InstanceId) -> bool {
        self.scripted_aborts.contains(&instance)
            || hash::draw(
                self.seed,
                &Self::parts(instance, StepId(0), 0xAB02),
                self.pa,
            )
    }

    /// When OCR revisits `step`, do its effective inputs differ (forcing a
    /// re-execution) even if the recorded values look equal? This models
    /// the paper's `pr` for workloads whose data drift is not captured in
    /// the data table.
    pub fn revisit_requires_reexec(&self, instance: InstanceId, step: StepId) -> bool {
        self.scripted_reexec.contains(&(instance, step))
            || hash::draw(self.seed, &Self::parts(instance, step, 0x9EEC), self.pr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaId;

    fn inst(n: u32) -> InstanceId {
        InstanceId::new(SchemaId(1), n)
    }

    #[test]
    fn none_plan_is_quiet() {
        let p = FailurePlan::none();
        for i in 0..50 {
            assert!(!p.step_fails(inst(i), StepId(1), 1));
            assert!(!p.inputs_change(inst(i)));
            assert!(!p.user_aborts(inst(i)));
            assert!(!p.revisit_requires_reexec(inst(i), StepId(1)));
        }
    }

    #[test]
    fn scripted_events_fire_exactly() {
        let p = FailurePlan::none()
            .fail_step(inst(1), StepId(4), 1)
            .change_inputs(inst(2))
            .abort(inst(3));
        assert!(p.step_fails(inst(1), StepId(4), 1));
        assert!(!p.step_fails(inst(1), StepId(4), 2));
        assert!(!p.step_fails(inst(1), StepId(3), 1));
        assert!(p.inputs_change(inst(2)));
        assert!(!p.inputs_change(inst(1)));
        assert!(p.user_aborts(inst(3)));
        assert!(!p.user_aborts(inst(2)));
    }

    #[test]
    fn probabilistic_rates_roughly_match() {
        let p = FailurePlan::probabilistic(11, 0.2, 0.05, 0.05, 0.5);
        let n = 2000u32;
        let fails = (0..n)
            .filter(|&i| p.step_fails(inst(i), StepId(1), 1))
            .count();
        let changes = (0..n).filter(|&i| p.inputs_change(inst(i))).count();
        let aborts = (0..n).filter(|&i| p.user_aborts(inst(i))).count();
        let reexec = (0..n)
            .filter(|&i| p.revisit_requires_reexec(inst(i), StepId(1)))
            .count();
        assert!((300..500).contains(&fails), "pf {fails}");
        assert!((50..160).contains(&changes), "pi {changes}");
        assert!((50..160).contains(&aborts), "pa {aborts}");
        assert!((850..1150).contains(&reexec), "pr {reexec}");
    }

    #[test]
    fn scripted_reexec_fires_exactly() {
        let p = FailurePlan::none().force_reexec(inst(1), StepId(4));
        assert!(p.revisit_requires_reexec(inst(1), StepId(4)));
        assert!(
            !p.revisit_requires_reexec(inst(1), StepId(3)),
            "other steps unaffected"
        );
        assert!(
            !p.revisit_requires_reexec(inst(2), StepId(4)),
            "other instances unaffected"
        );
        // Composes with the probabilistic draw rather than replacing it.
        let p = FailurePlan::probabilistic(11, 0.0, 0.0, 0.0, 1.0).force_reexec(inst(1), StepId(4));
        assert!(p.revisit_requires_reexec(inst(9), StepId(9)));
        assert!(p.revisit_requires_reexec(inst(1), StepId(4)));
    }

    #[test]
    fn always_fail_strikes_every_attempt() {
        let p = FailurePlan::none().fail_step_always(inst(1), StepId(4));
        for attempt in 1..20 {
            assert!(p.step_fails(inst(1), StepId(4), attempt));
        }
        assert!(!p.step_fails(inst(1), StepId(3), 1), "other steps clean");
        assert!(
            !p.step_fails(inst(2), StepId(4), 1),
            "other instances clean"
        );
    }

    #[test]
    fn retries_always_succeed_probabilistically() {
        let p = FailurePlan::probabilistic(11, 1.0, 0.0, 0.0, 0.0);
        assert!(p.step_fails(inst(1), StepId(1), 1));
        assert!(!p.step_fails(inst(1), StepId(1), 2));
    }

    #[test]
    fn deterministic_across_calls() {
        let p = FailurePlan::probabilistic(13, 0.5, 0.5, 0.5, 0.5);
        for i in 0..100 {
            assert_eq!(
                p.step_fails(inst(i), StepId(2), 1),
                p.step_fails(inst(i), StepId(2), 1)
            );
        }
    }
}
