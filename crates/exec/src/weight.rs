//! Thread-accounting weights for distributed commit.
//!
//! "The coordination agent knows from which of the agents it has to receive
//! step completion messages before it determines that the workflow is
//! committed" (§4.2). With if-then-else branches the set of terminal steps
//! that will actually complete is not static, so we realize the guarantee
//! with *weighted thread accounting*: every workflow packet carries a
//! rational weight; an AND-split divides the weight among its branches, an
//! AND-join sums the weights flowing in, an XOR-split passes the full
//! weight down the single taken branch. Termination agents report their
//! packet's weight in `StepCompleted`; the coordination agent commits when
//! the received weights sum to exactly 1. No extra messages, any nesting
//! depth.

use std::fmt;

/// A non-negative rational, always kept in lowest terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Weight {
    num: u64,
    den: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Weight {
    /// The full thread: 1.
    pub const ONE: Weight = Weight { num: 1, den: 1 };
    /// No thread: 0.
    pub const ZERO: Weight = Weight { num: 0, den: 1 };

    /// Construct `num/den` (reduced). Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "weight denominator must be nonzero");
        if num == 0 {
            return Weight::ZERO;
        }
        let g = gcd(num, den);
        Weight {
            num: num / g,
            den: den / g,
        }
    }

    /// Split this weight evenly among `k` parallel branches.
    pub fn split(self, k: u64) -> Weight {
        assert!(k > 0, "cannot split among zero branches");
        Weight::new(self.num, self.den * k)
    }

    /// Sum of two weights (joins).
    pub fn plus(self, other: Weight) -> Weight {
        Weight::new(
            self.num * other.den + other.num * self.den,
            self.den * other.den,
        )
    }

    /// Is this the full thread?
    pub fn is_one(self) -> bool {
        self.num == self.den
    }

    /// Is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Numerator/denominator accessors (for packet serialization).
    pub fn parts(self) -> (u64, u64) {
        (self.num, self.den)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_rejoin_is_identity() {
        let w = Weight::ONE;
        let half = w.split(2);
        assert_eq!(half, Weight::new(1, 2));
        assert!(half.plus(half).is_one());
        let third = w.split(3);
        assert!(third.plus(third).plus(third).is_one());
    }

    #[test]
    fn nested_splits() {
        // 1 -> and-split(2) -> one branch and-splits again (3).
        let outer = Weight::ONE.split(2);
        let inner = outer.split(3);
        let rejoined = inner.plus(inner).plus(inner); // inner join
        assert_eq!(rejoined, outer);
        assert!(rejoined.plus(outer).is_one());
    }

    #[test]
    fn reduction_keeps_terms_low() {
        let w = Weight::new(4, 8);
        assert_eq!(w.parts(), (1, 2));
        assert_eq!(Weight::new(0, 5), Weight::ZERO);
        assert_eq!(w.to_string(), "1/2");
        assert_eq!(Weight::ONE.to_string(), "1");
    }

    #[test]
    fn zero_identity() {
        assert!(Weight::ZERO.is_zero());
        assert_eq!(Weight::ZERO.plus(Weight::ONE), Weight::ONE);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Weight::new(1, 0);
    }
}
