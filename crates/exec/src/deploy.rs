//! Deployment description shared by all three control architectures.
//!
//! A [`Deployment`] bundles everything static about a run: the workflow
//! schemas, the coordinated-execution requirements, the program registry,
//! the failure plan, the navigation-load constant (the paper's `l`) and the
//! run seed. Engine builders consume it to lay out nodes; the analysis
//! crate derives the paper's parameters from it.

use crate::failure::FailurePlan;
use crate::program::ProgramRegistry;
use crew_model::{CoordinationSpec, InstanceId, SchemaId, WorkflowSchema};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Links between concurrent instances that relative-ordering requirements
/// apply to (the WF1/WF2 pairing of Figure 2). The run harness declares
/// which instance pairs are "concurrent over the same resources".
#[derive(Debug, Clone, Default)]
pub struct RelOrderLinks {
    pairs: Vec<(InstanceId, InstanceId)>,
}

impl RelOrderLinks {
    /// Create a new, empty value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare `a` and `b` as a coordinated pair.
    pub fn link(&mut self, a: InstanceId, b: InstanceId) {
        self.pairs.push((a, b));
    }

    /// All partners linked with `i` (in either position).
    pub fn partners_of(&self, i: InstanceId) -> Vec<InstanceId> {
        self.pairs
            .iter()
            .filter_map(|&(a, b)| {
                if a == i {
                    Some(b)
                } else if b == i {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Iterate over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &(InstanceId, InstanceId)> {
        self.pairs.iter()
    }

    /// `true` when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Everything static about a run.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// All workflow schemas, by id.
    pub schemas: BTreeMap<SchemaId, Arc<WorkflowSchema>>,
    /// Coordinated-execution requirements across the schemas.
    pub coordination: CoordinationSpec,
    /// Instance pairs the relative-order requirements bind.
    pub ro_links: RelOrderLinks,
    /// Program implementations.
    pub registry: ProgramRegistry,
    /// Failure/perturbation injection.
    pub plan: FailurePlan,
    /// The paper's `l`: abstract navigation instructions charged at the
    /// node that schedules/navigates one step.
    pub nav_load: u64,
    /// Run seed (latency draws, load-balancing hashes, program draws).
    pub seed: u64,
}

impl Deployment {
    /// A deployment over `schemas` with built-in programs, no failures and
    /// defaults everywhere else.
    pub fn new(schemas: impl IntoIterator<Item = WorkflowSchema>) -> Self {
        Deployment {
            schemas: schemas.into_iter().map(|s| (s.id, Arc::new(s))).collect(),
            coordination: CoordinationSpec::default(),
            ro_links: RelOrderLinks::new(),
            registry: ProgramRegistry::with_builtins(),
            plan: FailurePlan::none(),
            nav_load: 100,
            seed: 0,
        }
    }

    /// Schema.
    pub fn schema(&self, id: SchemaId) -> Option<&Arc<WorkflowSchema>> {
        self.schemas.get(&id)
    }

    /// Schema lookup that panics on unknown ids — deployment wiring bugs.
    pub fn expect_schema(&self, id: SchemaId) -> &Arc<WorkflowSchema> {
        self.schemas
            .get(&id)
            .unwrap_or_else(|| panic!("deployment has no schema {id}"))
    }

    /// Highest agent id referenced by any step's eligibility list, plus
    /// one — the size of the agent pool the deployment needs.
    pub fn agent_pool_size(&self) -> u32 {
        self.schemas
            .values()
            .flat_map(|s| s.steps())
            .flat_map(|d| &d.eligible_agents)
            .map(|a| a.0 + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{AgentId, SchemaBuilder};

    fn schema(id: u32, agents: &[u32]) -> WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(id), format!("wf{id}"));
        let s1 = b.add_step("A", "passthrough");
        let s2 = b.add_step("B", "passthrough");
        b.seq(s1, s2);
        b.configure(s1, |d| {
            d.eligible_agents = agents.iter().map(|&a| AgentId(a)).collect()
        });
        b.configure(s2, |d| {
            d.eligible_agents = agents.iter().map(|&a| AgentId(a)).collect()
        });
        b.build().unwrap()
    }

    #[test]
    fn pool_size_covers_all_agents() {
        let d = Deployment::new([schema(1, &[0, 3]), schema(2, &[1])]);
        assert_eq!(d.agent_pool_size(), 4);
        assert!(d.schema(SchemaId(1)).is_some());
        assert!(d.schema(SchemaId(9)).is_none());
    }

    #[test]
    fn ro_links_partner_lookup() {
        let mut links = RelOrderLinks::new();
        let a = InstanceId::new(SchemaId(1), 1);
        let b = InstanceId::new(SchemaId(2), 2);
        let c = InstanceId::new(SchemaId(2), 3);
        links.link(a, b);
        links.link(c, a);
        assert_eq!(links.partners_of(a), vec![b, c]);
        assert_eq!(links.partners_of(b), vec![a]);
        assert!(links
            .partners_of(InstanceId::new(SchemaId(9), 9))
            .is_empty());
        assert_eq!(links.iter().count(), 2);
        assert!(!links.is_empty());
    }
}
