//! The step executor: the piece of an agent that actually performs a step.
//!
//! Both the centralized engine's application agents and the distributed
//! agents funnel step execution through [`StepExecutor::execute`]: gather
//! the declared inputs from the instance data table, consult the failure
//! plan, run the program, and report a [`StepOutcome`]. Compensation runs
//! the step's compensation program and strips its outputs from the data
//! table.

use crate::failure::FailurePlan;
use crate::history::InstanceHistory;
use crate::program::{ProgramCtx, ProgramRegistry, StepFailure};
use crew_model::{DataEnv, InstanceId, StepDef, Value};

/// The result of one step execution attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// Completed; outputs have been written to the caller's data table.
    Done {
        /// Attempt number that completed.
        attempt: u32,
        /// Output values written (slot order).
        outputs: Vec<Value>,
        /// Abstract instruction cost charged.
        cost: u64,
    },
    /// Logical failure (exception) — the failure-handling machinery takes
    /// over.
    Failed {
        /// Attempt.
        attempt: u32,
        /// Reason.
        reason: String,
    },
}

impl StepOutcome {
    /// Is done.
    pub fn is_done(&self) -> bool {
        matches!(self, StepOutcome::Done { .. })
    }
}

/// Errors that are bugs in the deployment rather than workflow exceptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The step names a program the registry does not know.
    UnknownProgram(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownProgram(p) => write!(f, "unknown program {p:?}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Stateless executor bundling the program registry and failure plan.
#[derive(Debug, Clone)]
pub struct StepExecutor {
    /// Registry.
    pub registry: ProgramRegistry,
    /// Plan.
    pub plan: FailurePlan,
    /// Run seed forwarded to programs.
    pub seed: u64,
}

impl StepExecutor {
    /// Create a new, empty value.
    pub fn new(registry: ProgramRegistry, plan: FailurePlan, seed: u64) -> Self {
        StepExecutor {
            registry,
            plan,
            seed,
        }
    }

    /// Execute `def` for `instance`: allocates the attempt in `history`,
    /// reads inputs from `env`, runs the program (unless the failure plan
    /// injects a failure), and on success writes outputs into `env` and the
    /// completion record into `history`.
    pub fn execute(
        &self,
        def: &StepDef,
        instance: InstanceId,
        env: &mut DataEnv,
        history: &mut InstanceHistory,
    ) -> Result<StepOutcome, ExecError> {
        let program = self
            .registry
            .get(&def.program)
            .ok_or_else(|| ExecError::UnknownProgram(def.program.clone()))?
            .clone();
        let attempt = history.begin_attempt(def.id);
        let inputs = env.project(&def.input_keys());

        if self.plan.step_fails(instance, def.id, attempt) {
            history.record_failed(def.id);
            return Ok(StepOutcome::Failed {
                attempt,
                reason: "injected logical failure".to_owned(),
            });
        }

        let ctx = ProgramCtx {
            instance,
            step: def.id,
            attempt,
            seed: self.seed,
            inputs: inputs.clone(),
        };
        match program.run(&ctx) {
            Ok(outputs) => {
                for (i, v) in outputs.iter().enumerate() {
                    // Slot numbering is 1-based; extra outputs beyond the
                    // declared count are dropped.
                    let slot = (i + 1) as u16;
                    if slot <= def.output_slots {
                        env.set(crew_model::ItemKey::output(def.id, slot), v.clone());
                    }
                }
                history.record_done(def.id, attempt, inputs, outputs.clone());
                Ok(StepOutcome::Done {
                    attempt,
                    outputs,
                    cost: def.cost,
                })
            }
            Err(StepFailure { reason }) => {
                history.record_failed(def.id);
                Ok(StepOutcome::Failed { attempt, reason })
            }
        }
    }

    /// Compensate `def`: runs the compensation program (if any), removes the
    /// step's outputs from `env`, and marks the record compensated. Returns
    /// the abstract cost charged.
    pub fn compensate(
        &self,
        def: &StepDef,
        instance: InstanceId,
        env: &mut DataEnv,
        history: &mut InstanceHistory,
        partial: bool,
    ) -> u64 {
        if let Some(name) = &def.compensation_program {
            if let Some(program) = self.registry.get(name) {
                let ctx = ProgramCtx {
                    instance,
                    step: def.id,
                    attempt: history.attempts(def.id),
                    seed: self.seed,
                    inputs: env.project(&def.input_keys()),
                };
                program.compensate(&ctx);
                // Compensation programs may also *run* side-effect logic.
                let _ = program.run(&ctx);
            }
        }
        env.clear_step_outputs(def.id);
        history.record_compensated(def.id);
        if partial {
            (def.compensation_cost() as f64 * crate::ocr::INCREMENTAL_FRACTION) as u64
        } else {
            def.compensation_cost()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::StepState;
    use crew_model::{InputBinding, ItemKey, SchemaId, StepId};

    fn executor(plan: FailurePlan) -> StepExecutor {
        StepExecutor::new(ProgramRegistry::with_builtins(), plan, 42)
    }

    fn sum_step() -> StepDef {
        let mut def = StepDef::new(StepId(1), "Sum", "sum");
        def.inputs = vec![
            InputBinding {
                source: ItemKey::input(1),
            },
            InputBinding {
                source: ItemKey::input(2),
            },
        ];
        def.output_slots = 1;
        def
    }

    fn inst() -> InstanceId {
        InstanceId::new(SchemaId(1), 1)
    }

    #[test]
    fn execute_writes_outputs_and_history() {
        let ex = executor(FailurePlan::none());
        let def = sum_step();
        let mut env = DataEnv::new();
        env.set(ItemKey::input(1), Value::Int(2));
        env.set(ItemKey::input(2), Value::Int(40));
        let mut h = InstanceHistory::new();
        let out = ex.execute(&def, inst(), &mut env, &mut h).unwrap();
        assert!(out.is_done());
        assert_eq!(
            env.get(&ItemKey::output(StepId(1), 1)),
            Some(&Value::Int(42))
        );
        assert_eq!(h.state(StepId(1)), StepState::Done);
        assert_eq!(h.record(StepId(1)).unwrap().inputs.len(), 2);
    }

    #[test]
    fn injected_failure_reported() {
        let plan = FailurePlan::none().fail_step(inst(), StepId(1), 1);
        let ex = executor(plan);
        let def = sum_step();
        let mut env = DataEnv::new();
        let mut h = InstanceHistory::new();
        let out = ex.execute(&def, inst(), &mut env, &mut h).unwrap();
        assert!(matches!(out, StepOutcome::Failed { attempt: 1, .. }));
        assert_eq!(h.state(StepId(1)), StepState::Failed);
        // Second attempt succeeds.
        let out = ex.execute(&def, inst(), &mut env, &mut h).unwrap();
        assert!(matches!(out, StepOutcome::Done { attempt: 2, .. }));
    }

    #[test]
    fn unknown_program_is_a_deployment_error() {
        let ex = executor(FailurePlan::none());
        let def = StepDef::new(StepId(1), "X", "no-such-program");
        let mut env = DataEnv::new();
        let mut h = InstanceHistory::new();
        assert_eq!(
            ex.execute(&def, inst(), &mut env, &mut h),
            Err(ExecError::UnknownProgram("no-such-program".into()))
        );
    }

    #[test]
    fn program_failure_reported_as_logical() {
        let ex = executor(FailurePlan::none());
        let def = StepDef::new(StepId(1), "X", "always-fail");
        let mut env = DataEnv::new();
        let mut h = InstanceHistory::new();
        let out = ex.execute(&def, inst(), &mut env, &mut h).unwrap();
        assert!(matches!(out, StepOutcome::Failed { .. }));
    }

    #[test]
    fn compensate_strips_outputs() {
        let ex = executor(FailurePlan::none());
        let mut def = sum_step();
        def.compensation_program = Some("passthrough".into());
        def.compensation_cost = Some(50);
        let mut env = DataEnv::new();
        env.set(ItemKey::input(1), Value::Int(1));
        env.set(ItemKey::input(2), Value::Int(2));
        let mut h = InstanceHistory::new();
        ex.execute(&def, inst(), &mut env, &mut h).unwrap();
        assert!(env.get(&ItemKey::output(StepId(1), 1)).is_some());
        let cost = ex.compensate(&def, inst(), &mut env, &mut h, false);
        assert_eq!(cost, 50);
        assert!(env.get(&ItemKey::output(StepId(1), 1)).is_none());
        assert_eq!(h.state(StepId(1)), StepState::Compensated);
        // Partial compensation charges the fraction.
        ex.execute(&def, inst(), &mut env, &mut h).unwrap();
        let cost = ex.compensate(&def, inst(), &mut env, &mut h, true);
        assert_eq!(cost, (50.0 * crate::ocr::INCREMENTAL_FRACTION) as u64);
    }

    #[test]
    fn extra_outputs_beyond_declared_slots_dropped() {
        let ex = executor(FailurePlan::none());
        let mut def = StepDef::new(StepId(1), "Stamp", "stamp");
        def.output_slots = 1; // stamp produces 2 values
        let mut env = DataEnv::new();
        let mut h = InstanceHistory::new();
        ex.execute(&def, inst(), &mut env, &mut h).unwrap();
        assert!(env.get(&ItemKey::output(StepId(1), 1)).is_some());
        assert!(env.get(&ItemKey::output(StepId(1), 2)).is_none());
    }
}
