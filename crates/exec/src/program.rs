//! Step programs: the "black boxes" a step executes.
//!
//! "The program associated with a step and the data that is accessed by the
//! step are not known to the WFMS" (§2). The run-times therefore interact
//! with programs only through this trait: hand over the declared inputs,
//! receive outputs (or a logical failure), and optionally invoke the
//! compensation program later. Programs must be deterministic functions of
//! `(inputs, instance, step, attempt, seed)` so that simulation runs are
//! reproducible.

use crate::hash;
use crew_model::{InstanceId, StepId, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Context passed to a program invocation.
#[derive(Debug, Clone)]
pub struct ProgramCtx {
    /// The workflow instance concerned.
    pub instance: InstanceId,
    /// The step this entry concerns.
    pub step: StepId,
    /// 1-based execution attempt of this step within the instance (bumped
    /// by OCR re-executions).
    pub attempt: u32,
    /// Run seed for deterministic internal draws.
    pub seed: u64,
    /// Values of the step's declared inputs, in declaration order; `None`
    /// where an input item had no value.
    pub inputs: Vec<Option<Value>>,
}

impl ProgramCtx {
    /// Input `i` as an integer, defaulting when absent/mistyped.
    pub fn int_input(&self, i: usize, default: i64) -> i64 {
        self.inputs
            .get(i)
            .and_then(|v| v.as_ref())
            .and_then(|v| v.as_int())
            .unwrap_or(default)
    }

    /// Deterministic per-invocation unit draw.
    pub fn unit_draw(&self, salt: u64) -> f64 {
        hash::unit_draw(
            self.seed,
            &[
                self.instance.schema.0 as u64,
                self.instance.serial as u64,
                self.step.0 as u64,
                self.attempt as u64,
                salt,
            ],
        )
    }
}

/// A logical step failure (an exception the workflow must handle — not an
/// agent crash).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepFailure {
    /// Human-readable cause.
    pub reason: String,
}

impl StepFailure {
    /// Create a new, empty value.
    pub fn new(reason: impl Into<String>) -> Self {
        StepFailure {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step failed: {}", self.reason)
    }
}

impl std::error::Error for StepFailure {}

/// A step program. `run` produces the step's output slot values in order.
pub trait Program: Send + Sync {
    /// Execute the program.
    fn run(&self, ctx: &ProgramCtx) -> Result<Vec<Value>, StepFailure>;

    /// Undo the effects of a previous run. Most simulated programs carry
    /// their state in the data table, so the default is a no-op; programs
    /// with external effects (the inventory simulators) override this.
    fn compensate(&self, _ctx: &ProgramCtx) {}
}

/// Wrap a closure as a [`Program`].
pub struct FnProgram<F>(pub F);

impl<F> Program for FnProgram<F>
where
    F: Fn(&ProgramCtx) -> Result<Vec<Value>, StepFailure> + Send + Sync,
{
    fn run(&self, ctx: &ProgramCtx) -> Result<Vec<Value>, StepFailure> {
        (self.0)(ctx)
    }
}

/// Registry resolving program names (from [`crew_model::StepDef`]) to
/// implementations. Cheap to clone; registered programs are shared.
#[derive(Clone, Default)]
pub struct ProgramRegistry {
    programs: BTreeMap<String, Arc<dyn Program>>,
}

impl ProgramRegistry {
    /// Registry preloaded with the generic built-ins (see
    /// [`ProgramRegistry::with_builtins`] for the list).
    pub fn with_builtins() -> Self {
        let mut r = ProgramRegistry::default();
        // Copies its inputs to its outputs (padding with Int(0)).
        r.register(
            "passthrough",
            FnProgram(|ctx: &ProgramCtx| {
                Ok(ctx
                    .inputs
                    .iter()
                    .map(|v| v.clone().unwrap_or(Value::Int(0)))
                    .collect())
            }),
        );
        // Sums integer inputs into one output.
        r.register(
            "sum",
            FnProgram(|ctx: &ProgramCtx| {
                let total: i64 = (0..ctx.inputs.len()).map(|i| ctx.int_input(i, 0)).sum();
                Ok(vec![Value::Int(total)])
            }),
        );
        // Increments its first input — loop counters.
        r.register(
            "increment",
            FnProgram(|ctx: &ProgramCtx| Ok(vec![Value::Int(ctx.int_input(0, 0) + 1)])),
        );
        // Emits a constant marker plus the attempt number — lets tests see
        // whether a step was re-executed.
        r.register(
            "stamp",
            FnProgram(|ctx: &ProgramCtx| {
                Ok(vec![
                    Value::Str(format!("{}@{}", ctx.step, ctx.attempt)),
                    Value::Int(ctx.attempt as i64),
                ])
            }),
        );
        // Always fails — for failure-path tests.
        r.register(
            "always-fail",
            FnProgram(|_: &ProgramCtx| Err(StepFailure::new("unconditional"))),
        );
        r
    }

    /// Register (or replace) a program under `name`.
    pub fn register(&mut self, name: impl Into<String>, program: impl Program + 'static) {
        self.programs.insert(name.into(), Arc::new(program));
    }

    /// Register a pre-shared program.
    pub fn register_arc(&mut self, name: impl Into<String>, program: Arc<dyn Program>) {
        self.programs.insert(name.into(), program);
    }

    /// Value of `key`, if present.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Program>> {
        self.programs.get(name)
    }

    /// Names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.programs.keys().map(|s| s.as_str())
    }
}

impl fmt::Debug for ProgramRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgramRegistry")
            .field("programs", &self.programs.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaId;

    fn ctx(inputs: Vec<Option<Value>>) -> ProgramCtx {
        ProgramCtx {
            instance: InstanceId::new(SchemaId(1), 1),
            step: StepId(2),
            attempt: 1,
            seed: 7,
            inputs,
        }
    }

    #[test]
    fn builtins_work() {
        let r = ProgramRegistry::with_builtins();
        let sum = r.get("sum").unwrap();
        let out = sum
            .run(&ctx(vec![Some(Value::Int(2)), Some(Value::Int(40))]))
            .unwrap();
        assert_eq!(out, vec![Value::Int(42)]);

        let inc = r.get("increment").unwrap();
        assert_eq!(
            inc.run(&ctx(vec![Some(Value::Int(4))])).unwrap(),
            vec![Value::Int(5)]
        );

        let stamp = r.get("stamp").unwrap();
        let out = stamp.run(&ctx(vec![])).unwrap();
        assert_eq!(out[0], Value::Str("S2@1".into()));

        assert!(r.get("always-fail").unwrap().run(&ctx(vec![])).is_err());
        assert!(r.get("nope").is_none());
    }

    #[test]
    fn passthrough_pads_missing() {
        let r = ProgramRegistry::with_builtins();
        let p = r.get("passthrough").unwrap();
        let out = p.run(&ctx(vec![Some(Value::Int(1)), None])).unwrap();
        assert_eq!(out, vec![Value::Int(1), Value::Int(0)]);
    }

    #[test]
    fn ctx_draw_depends_on_attempt() {
        let a = ctx(vec![]);
        let mut b = ctx(vec![]);
        b.attempt = 2;
        assert_ne!(a.unit_draw(0), b.unit_draw(0));
        assert_eq!(a.unit_draw(0), ctx(vec![]).unit_draw(0));
    }

    #[test]
    fn custom_registration_overrides() {
        let mut r = ProgramRegistry::with_builtins();
        r.register("sum", FnProgram(|_: &ProgramCtx| Ok(vec![Value::Int(-1)])));
        assert_eq!(
            r.get("sum").unwrap().run(&ctx(vec![])).unwrap(),
            vec![Value::Int(-1)]
        );
        assert!(r.names().any(|n| n == "stamp"));
    }
}
