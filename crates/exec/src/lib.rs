//! # crew-exec
//!
//! Shared execution semantics for every CREW control architecture: step
//! programs and their registry, deterministic failure/perturbation
//! injection, per-instance execution history, the step executor, and the
//! opportunistic compensation and re-execution (OCR) decision procedure of
//! the paper's Figure 5.
//!
//! The centralized engine, the parallel engines and the distributed agents
//! all build on this crate, so OCR behaves identically across
//! architectures and the performance comparison of §6 measures the
//! architectures, not divergent recovery semantics.

#![warn(missing_docs)]

pub mod deploy;
pub mod executor;
pub mod failure;
pub mod hash;
pub mod history;
pub mod ocr;
pub mod program;
pub mod weight;

pub use deploy::{Deployment, RelOrderLinks};
pub use executor::{ExecError, StepExecutor, StepOutcome};
pub use failure::FailurePlan;
pub use history::{InstanceHistory, StepRecord, StepState};
pub use ocr::{decide as ocr_decide, OcrDecision, INCREMENTAL_FRACTION};
pub use program::{FnProgram, Program, ProgramCtx, ProgramRegistry, StepFailure};
pub use weight::Weight;
