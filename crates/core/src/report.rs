//! Run reports: the normalized result of executing a scenario under any
//! architecture — outcomes per instance plus the §6 metrics (per-mechanism
//! message counts per instance, busiest-node and per-pool loads).

use crew_model::InstanceId;
use crew_shard::EngineLoad;
use crew_simnet::{Mechanism, Metrics, NodeId, TransportStats};
use std::collections::BTreeMap;

/// Terminal outcome of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceOutcome {
    /// Terminated successfully; effects permanent.
    Committed,
    /// Terminated by abort; effects compensated.
    Aborted,
    /// Not terminal when the run went quiescent — a stall (deliberate in
    /// crash-without-recovery scenarios, a bug otherwise).
    Stalled,
}

/// The normalized result of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Outcome per started instance.
    pub outcomes: BTreeMap<InstanceId, InstanceOutcome>,
    /// Raw simulator metrics.
    pub metrics: Metrics,
    /// Number of instances started.
    pub instances: u64,
    /// Node ids of the scheduling nodes (engines under central/parallel,
    /// agents under distributed) for load aggregation.
    pub scheduler_nodes: Vec<NodeId>,
    /// Simulated events delivered.
    pub events: u64,
    /// Virtual time at quiescence.
    pub virtual_time: u64,
    /// Virtual tick at which each instance's start was injected.
    pub arrival_ticks: BTreeMap<InstanceId, u64>,
    /// Virtual tick at which each instance was first observed terminal
    /// (engine summary table under central/parallel control, front-end
    /// notification under distributed control). Stalled instances are
    /// absent.
    pub completion_ticks: BTreeMap<InstanceId, u64>,
    /// Final per-engine load sample (central/parallel control only;
    /// empty under distributed control): live instances, delivered
    /// messages, WAL appends, forwarding and migration counters.
    pub engine_loads: Vec<EngineLoad>,
}

/// Completion-latency summary over the terminal instances of one run, in
/// virtual ticks (arrival → first terminal status).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Instances with both an arrival and a completion tick.
    pub count: u64,
    /// Median latency.
    pub p50: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// Mean latency.
    pub mean: f64,
    /// Maximum latency.
    pub max: u64,
}

impl LatencyStats {
    /// Summarize a set of latency samples (nearest-rank percentiles).
    /// Returns `None` when `samples` is empty.
    pub fn from_samples(mut samples: Vec<u64>) -> Option<LatencyStats> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| samples[((n as f64 * q).ceil() as usize).clamp(1, n) - 1];
        Some(LatencyStats {
            count: n as u64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            mean: samples.iter().sum::<u64>() as f64 / n as f64,
            max: samples[n - 1],
        })
    }
}

impl RunReport {
    /// Per-instance completion latencies in virtual ticks (instances that
    /// stalled or whose arrival was not recorded are skipped).
    pub fn latencies(&self) -> Vec<u64> {
        self.completion_ticks
            .iter()
            .filter_map(|(i, &done)| {
                self.arrival_ticks
                    .get(i)
                    .map(|&start| done.saturating_sub(start))
            })
            .collect()
    }

    /// Completion-latency summary; `None` when nothing completed.
    pub fn latency_stats(&self) -> Option<LatencyStats> {
        LatencyStats::from_samples(self.latencies())
    }

    /// Per-instance messages for a mechanism (the Tables 4–6 unit).
    pub fn messages_per_instance(&self, mechanism: Mechanism) -> f64 {
        self.metrics
            .messages_per_instance(mechanism, self.instances)
    }

    /// Mean navigation load over the scheduling nodes, per instance, in
    /// raw instruction units.
    pub fn scheduler_load_per_instance(&self) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        let total: u64 = self
            .scheduler_nodes
            .iter()
            .map(|n| self.metrics.load_by_node.get(n).copied().unwrap_or(0))
            .sum();
        total as f64 / self.scheduler_nodes.len().max(1) as f64 / self.instances as f64
    }

    /// Load at the busiest scheduling node, per instance.
    pub fn max_scheduler_load_per_instance(&self) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        let max: u64 = self
            .scheduler_nodes
            .iter()
            .map(|n| self.metrics.load_by_node.get(n).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        max as f64 / self.instances as f64
    }

    /// Count of committed instances.
    pub fn committed(&self) -> usize {
        self.outcomes
            .values()
            .filter(|o| **o == InstanceOutcome::Committed)
            .count()
    }

    /// Count of aborted instances.
    pub fn aborted(&self) -> usize {
        self.outcomes
            .values()
            .filter(|o| **o == InstanceOutcome::Aborted)
            .count()
    }

    /// Wire-level transport counters (frames, retransmissions, injected
    /// faults). All-zero unless the run had net faults enabled; the §6
    /// logical message counts above never include this overhead.
    pub fn transport(&self) -> &TransportStats {
        &self.metrics.transport
    }

    /// Physical frames per logical message: the reliable-channel overhead
    /// factor. `1.0` on a quiet network (every logical message costs one
    /// data frame; acks are reported separately), higher under faults.
    pub fn frame_overhead(&self) -> f64 {
        let t = &self.metrics.transport;
        if t.data_frames == 0 {
            return 1.0;
        }
        (t.data_frames + t.retransmissions) as f64 / t.data_frames as f64
    }

    /// True if every instance reached a terminal state.
    pub fn all_terminal(&self) -> bool {
        !self
            .outcomes
            .values()
            .any(|o| *o == InstanceOutcome::Stalled)
    }

    /// Total live migrations completed during the run (sum of the
    /// engines' `migrations_in` counters).
    pub fn migrations(&self) -> u64 {
        self.engine_loads.iter().map(|l| l.migrations_in).sum()
    }

    /// Measured end-of-run load skew across the engines (max/mean
    /// pressure); 1.0 when there are no engine samples.
    pub fn engine_skew(&self) -> f64 {
        crew_shard::measured_skew(&self.engine_loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaId;

    #[test]
    fn aggregations() {
        let mut metrics = Metrics::default();
        let i1 = InstanceId::new(SchemaId(1), 1);
        metrics.record_message("X", Mechanism::Normal, Some(i1), 10, NodeId(0));
        metrics.record_message("X", Mechanism::Normal, Some(i1), 10, NodeId(0));
        metrics.record_load(NodeId(0), 100);
        metrics.record_load(NodeId(1), 300);
        let report = RunReport {
            outcomes: BTreeMap::from([(i1, InstanceOutcome::Committed)]),
            metrics,
            instances: 2,
            scheduler_nodes: vec![NodeId(0), NodeId(1)],
            events: 10,
            virtual_time: 50,
            arrival_ticks: BTreeMap::from([(i1, 5)]),
            completion_ticks: BTreeMap::from([(i1, 45)]),
            engine_loads: Vec::new(),
        };
        assert_eq!(report.messages_per_instance(Mechanism::Normal), 1.0);
        assert_eq!(report.scheduler_load_per_instance(), 100.0);
        assert_eq!(report.max_scheduler_load_per_instance(), 150.0);
        assert_eq!(report.committed(), 1);
        assert_eq!(report.aborted(), 0);
        assert!(report.all_terminal());
        let lat = report.latency_stats().unwrap();
        assert_eq!(lat.count, 1);
        assert_eq!(lat.p50, 40);
        assert_eq!(lat.max, 40);
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let stats = LatencyStats::from_samples((1..=100).collect()).unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50, 50);
        assert_eq!(stats.p95, 95);
        assert_eq!(stats.p99, 99);
        assert_eq!(stats.max, 100);
        assert_eq!(stats.mean, 50.5);
        assert_eq!(LatencyStats::from_samples(vec![]), None);
        let one = LatencyStats::from_samples(vec![7]).unwrap();
        assert_eq!((one.p50, one.p95, one.p99, one.max), (7, 7, 7, 7));
    }
}
