//! Run reports: the normalized result of executing a scenario under any
//! architecture — outcomes per instance plus the §6 metrics (per-mechanism
//! message counts per instance, busiest-node and per-pool loads).

use crew_model::InstanceId;
use crew_simnet::{Mechanism, Metrics, NodeId, TransportStats};
use std::collections::BTreeMap;

/// Terminal outcome of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceOutcome {
    /// Terminated successfully; effects permanent.
    Committed,
    /// Terminated by abort; effects compensated.
    Aborted,
    /// Not terminal when the run went quiescent — a stall (deliberate in
    /// crash-without-recovery scenarios, a bug otherwise).
    Stalled,
}

/// The normalized result of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Outcome per started instance.
    pub outcomes: BTreeMap<InstanceId, InstanceOutcome>,
    /// Raw simulator metrics.
    pub metrics: Metrics,
    /// Number of instances started.
    pub instances: u64,
    /// Node ids of the scheduling nodes (engines under central/parallel,
    /// agents under distributed) for load aggregation.
    pub scheduler_nodes: Vec<NodeId>,
    /// Simulated events delivered.
    pub events: u64,
    /// Virtual time at quiescence.
    pub virtual_time: u64,
}

impl RunReport {
    /// Per-instance messages for a mechanism (the Tables 4–6 unit).
    pub fn messages_per_instance(&self, mechanism: Mechanism) -> f64 {
        self.metrics
            .messages_per_instance(mechanism, self.instances)
    }

    /// Mean navigation load over the scheduling nodes, per instance, in
    /// raw instruction units.
    pub fn scheduler_load_per_instance(&self) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        let total: u64 = self
            .scheduler_nodes
            .iter()
            .map(|n| self.metrics.load_by_node.get(n).copied().unwrap_or(0))
            .sum();
        total as f64 / self.scheduler_nodes.len().max(1) as f64 / self.instances as f64
    }

    /// Load at the busiest scheduling node, per instance.
    pub fn max_scheduler_load_per_instance(&self) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        let max: u64 = self
            .scheduler_nodes
            .iter()
            .map(|n| self.metrics.load_by_node.get(n).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        max as f64 / self.instances as f64
    }

    /// Count of committed instances.
    pub fn committed(&self) -> usize {
        self.outcomes
            .values()
            .filter(|o| **o == InstanceOutcome::Committed)
            .count()
    }

    /// Count of aborted instances.
    pub fn aborted(&self) -> usize {
        self.outcomes
            .values()
            .filter(|o| **o == InstanceOutcome::Aborted)
            .count()
    }

    /// Wire-level transport counters (frames, retransmissions, injected
    /// faults). All-zero unless the run had net faults enabled; the §6
    /// logical message counts above never include this overhead.
    pub fn transport(&self) -> &TransportStats {
        &self.metrics.transport
    }

    /// Physical frames per logical message: the reliable-channel overhead
    /// factor. `1.0` on a quiet network (every logical message costs one
    /// data frame; acks are reported separately), higher under faults.
    pub fn frame_overhead(&self) -> f64 {
        let t = &self.metrics.transport;
        if t.data_frames == 0 {
            return 1.0;
        }
        (t.data_frames + t.retransmissions) as f64 / t.data_frames as f64
    }

    /// True if every instance reached a terminal state.
    pub fn all_terminal(&self) -> bool {
        !self
            .outcomes
            .values()
            .any(|o| *o == InstanceOutcome::Stalled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaId;

    #[test]
    fn aggregations() {
        let mut metrics = Metrics::default();
        let i1 = InstanceId::new(SchemaId(1), 1);
        metrics.record_message("X", Mechanism::Normal, Some(i1), 10, NodeId(0));
        metrics.record_message("X", Mechanism::Normal, Some(i1), 10, NodeId(0));
        metrics.record_load(NodeId(0), 100);
        metrics.record_load(NodeId(1), 300);
        let report = RunReport {
            outcomes: BTreeMap::from([(i1, InstanceOutcome::Committed)]),
            metrics,
            instances: 2,
            scheduler_nodes: vec![NodeId(0), NodeId(1)],
            events: 10,
            virtual_time: 50,
        };
        assert_eq!(report.messages_per_instance(Mechanism::Normal), 1.0);
        assert_eq!(report.scheduler_load_per_instance(), 100.0);
        assert_eq!(report.max_scheduler_load_per_instance(), 150.0);
        assert_eq!(report.committed(), 1);
        assert_eq!(report.aborted(), 0);
        assert!(report.all_terminal());
    }
}
