//! # crew-core
//!
//! The public facade of **CREW** — a from-scratch Rust reproduction of
//! Kamath & Ramamritham, *Failure Handling and Coordinated Execution of
//! Concurrent Workflows* (ICDE 1998) and its distributed-control companion
//! (CMPSCI TR 98-28).
//!
//! Build workflow schemas with [`crew_model::SchemaBuilder`] (or compile
//! them from the LAWS DSL in `crew-laws`), pick a control
//! [`Architecture`] — centralized, parallel, or distributed — describe a
//! [`Scenario`] (instances, coordination links, user aborts/input
//! changes, agent crashes), and [`WorkflowSystem::run`] it on the
//! deterministic simulator. The returned [`RunReport`] carries terminal
//! outcomes plus the paper's §6 metrics: per-mechanism message counts per
//! instance and scheduler-node loads.
//!
//! Re-exports the subsystem crates under stable paths: `model` (schemas),
//! `rules` (the ECA engine), `exec` (programs, OCR), `simnet` (the
//! simulator), `storage` (WAL-backed agent databases), `central` /
//! `parallel` / `distributed` (the three architectures), and `analysis`
//! (the closed-form §6 model).

#![warn(missing_docs)]

pub mod report;
pub mod system;

pub use report::{InstanceOutcome, LatencyStats, RunReport};
pub use system::{Architecture, CrashTarget, CrashWindow, Scenario, WorkflowSystem};

pub use crew_central::PlacementStrategy;
pub use crew_shard::{BalancerConfig, EngineLoad};
pub use crew_simnet::{LinkCut, NetFaultPlan, RetransmitConfig, TransportStats};

pub use crew_analysis as analysis;
pub use crew_central as central;
pub use crew_distributed as distributed;
pub use crew_exec as exec;
pub use crew_model as model;
pub use crew_rules as rules;
pub use crew_shard as shard;
pub use crew_simnet as simnet;
pub use crew_storage as storage;
