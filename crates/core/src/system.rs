//! The top-level CREW API: pick an architecture, describe a scenario, run
//! it, get a [`RunReport`].
//!
//! ```
//! use crew_core::{Architecture, Scenario, WorkflowSystem};
//! use crew_model::{SchemaBuilder, SchemaId, AgentId, Value};
//!
//! let mut b = SchemaBuilder::new(SchemaId(1), "hello").inputs(1);
//! let s1 = b.add_step("First", "passthrough");
//! let s2 = b.add_step("Second", "passthrough");
//! b.seq(s1, s2);
//! b.configure(s1, |d| d.eligible_agents = vec![AgentId(0)]);
//! b.configure(s2, |d| d.eligible_agents = vec![AgentId(1)]);
//! let schema = b.build().unwrap();
//!
//! let system = WorkflowSystem::new([schema], Architecture::Distributed { agents: 2 });
//! let mut scenario = Scenario::new();
//! scenario.start(SchemaId(1), vec![(1, Value::Int(7))]);
//! let report = system.run(scenario);
//! assert_eq!(report.committed(), 1);
//! ```

use crate::report::{InstanceOutcome, RunReport};
use crew_central::{CentralRun, PlacementStrategy};
use crew_distributed::{DistConfig, DistRun, Outcome};
use crew_exec::Deployment;
use crew_model::{InstanceId, SchemaId, Value, WorkflowSchema, RUN_HORIZON_TICKS};
use crew_shard::BalancerConfig;
use crew_simnet::NetFaultPlan;
use crew_storage::InstanceStatus;
use std::collections::BTreeMap;

/// The control architecture to run under (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// One engine, `agents` application agents.
    Central {
        /// Application agent pool size.
        agents: u32,
    },
    /// Several engines sharing the instances.
    Parallel {
        /// Application agent pool size.
        agents: u32,
        /// Engine count (the paper's `e`).
        engines: u32,
    },
    /// Distributed agents (plus the front-end database).
    Distributed {
        /// Agent pool size (the paper's `z`).
        agents: u32,
    },
}

/// A user action injected mid-run.
#[derive(Debug, Clone)]
enum UserAction {
    Abort {
        index: usize,
        at: u64,
    },
    ChangeInputs {
        index: usize,
        at: u64,
        new_inputs: Vec<(u16, Value)>,
    },
}

/// Which node a [`CrashWindow`] takes down.
///
/// Node layout: application agents occupy node ids `0..z` under every
/// architecture. Under `Central`/`Parallel` control the engines are
/// separate nodes at `z..z+e` (so `Engine(n)` maps to node `z + n`);
/// under `Distributed` control every agent embeds its own engine slice,
/// so `Engine(n)` and `Agent(n)` are the same physical node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTarget {
    /// Application agent `n`.
    Agent(u32),
    /// Workflow engine `n`.
    Engine(u32),
}

/// A fail-stop crash window for one node of the deployment.
///
/// The crashed node loses all volatile state; whatever it wrote to its
/// WAL-backed WFDB survives. On recovery (`down_for` ticks later) the node
/// replays its log — engines rebuild their control state and re-arm
/// pending dispatches, agents replay their journal — and the reliable
/// channel layer retransmits everything unacked across the outage.
/// `down_for: None` means the node never comes back: runs that depend on
/// it end [`Stalled`](InstanceOutcome::Stalled) at the bounded horizon
/// rather than hanging.
#[derive(Debug, Clone, Copy)]
pub struct CrashWindow {
    /// The node to crash.
    pub target: CrashTarget,
    /// Virtual time of the crash.
    pub at: u64,
    /// Recovery delay; `None` = never recovers.
    pub down_for: Option<u64>,
}

impl CrashWindow {
    /// Crash application agent `n` at `at`, recovering after `down_for`.
    pub fn agent(n: u32, at: u64, down_for: Option<u64>) -> Self {
        CrashWindow {
            target: CrashTarget::Agent(n),
            at,
            down_for,
        }
    }

    /// Crash engine `n` at `at`, recovering after `down_for`.
    pub fn engine(n: u32, at: u64, down_for: Option<u64>) -> Self {
        CrashWindow {
            target: CrashTarget::Engine(n),
            at,
            down_for,
        }
    }
}

/// One scheduled instance start: schema, initial inputs, and an optional
/// arrival tick (`None` = start at time zero).
type ScheduledStart = (SchemaId, Vec<(u16, Value)>, Option<u64>);

/// A declarative run scenario: which instances start (in order — instance
/// serials are assigned 1, 2, … accordingly), which get linked for
/// relative ordering, and which user actions / crashes are injected.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    starts: Vec<ScheduledStart>,
    links: Vec<(usize, usize)>,
    actions: Vec<UserAction>,
    crashes: Vec<CrashWindow>,
}

impl Scenario {
    /// Create a new, empty value.
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Start an instance of `schema`; returns its index within the
    /// scenario (serials are `index + 1`).
    pub fn start(&mut self, schema: SchemaId, inputs: Vec<(u16, Value)>) -> usize {
        self.starts.push((schema, inputs, None));
        self.starts.len() - 1
    }

    /// Start an instance of `schema` at virtual time `at` — open-loop
    /// arrival processes (the throughput harness) schedule their whole
    /// arrival train up front with this.
    pub fn start_at(&mut self, schema: SchemaId, inputs: Vec<(u16, Value)>, at: u64) -> usize {
        self.starts.push((schema, inputs, Some(at)));
        self.starts.len() - 1
    }

    /// Link two started instances for relative-order requirements.
    pub fn link(&mut self, a: usize, b: usize) {
        self.links.push((a, b));
    }

    /// Abort instance `index` at virtual time `at`.
    pub fn abort_at(&mut self, index: usize, at: u64) {
        self.actions.push(UserAction::Abort { index, at });
    }

    /// Change instance `index`'s inputs at virtual time `at`.
    pub fn change_inputs_at(&mut self, index: usize, at: u64, new_inputs: Vec<(u16, Value)>) {
        self.actions.push(UserAction::ChangeInputs {
            index,
            at,
            new_inputs,
        });
    }

    /// Schedule a fail-stop crash (any architecture; see [`CrashWindow`]).
    pub fn crash(&mut self, window: CrashWindow) {
        self.crashes.push(window);
    }

    /// The instance id the scenario will assign to `index`.
    pub fn instance_id(&self, index: usize) -> InstanceId {
        InstanceId::new(self.starts[index].0, index as u32 + 1)
    }

    fn instance_count(&self) -> usize {
        self.starts.len()
    }
}

/// A configured CREW system: deployment + architecture.
#[derive(Debug, Clone)]
pub struct WorkflowSystem {
    /// The deployment (schemas, programs, plan, coordination). Public so
    /// callers can customize programs/failure plans before running.
    pub deployment: Deployment,
    /// The chosen architecture.
    pub architecture: Architecture,
    /// Distributed-control tunables (ignored by other architectures).
    pub dist_config: DistConfig,
    /// Network fault plan; `Some` routes all traffic through the
    /// WAL-backed reliable channels with these faults injected.
    pub net_faults: Option<NetFaultPlan>,
    /// Instance-placement strategy for central/parallel control (ignored
    /// by distributed control).
    pub placement: PlacementStrategy,
    /// Auto-balancer: `Some((interval, config))` samples per-engine load
    /// every `interval` virtual ticks and migrates instances off hot
    /// engines when the measured skew diverges from the §7 uniform
    /// prediction. Parallel control only.
    pub balancer: Option<(u64, BalancerConfig)>,
    /// Per-engine message service cost in virtual ticks, `(engine,
    /// ticks)` — models heterogeneous or degraded engine hardware.
    /// Engines absent from the list handle messages instantly.
    /// Central/parallel control only.
    pub engine_service_costs: Vec<(u32, u64)>,
}

impl WorkflowSystem {
    /// Build a system over `schemas` with default programs and no
    /// failures.
    pub fn new(
        schemas: impl IntoIterator<Item = WorkflowSchema>,
        architecture: Architecture,
    ) -> Self {
        WorkflowSystem {
            deployment: Deployment::new(schemas),
            architecture,
            dist_config: DistConfig::default(),
            net_faults: None,
            placement: PlacementStrategy::Modulo,
            balancer: None,
            engine_service_costs: Vec::new(),
        }
    }

    /// Build from an existing deployment.
    pub fn with_deployment(deployment: Deployment, architecture: Architecture) -> Self {
        WorkflowSystem {
            deployment,
            architecture,
            dist_config: DistConfig::default(),
            net_faults: None,
            placement: PlacementStrategy::Modulo,
            balancer: None,
            engine_service_costs: Vec::new(),
        }
    }

    /// Inject network faults: all traffic rides the WAL-backed reliable
    /// channels (exactly-once delivery) while `plan` drops, duplicates,
    /// reorders, and partitions the wire underneath them.
    pub fn with_net_faults(mut self, plan: NetFaultPlan) -> Self {
        self.net_faults = Some(plan);
        self
    }

    /// Choose the instance-placement strategy (central/parallel control).
    pub fn with_placement(mut self, placement: PlacementStrategy) -> Self {
        self.placement = placement;
        self
    }

    /// Enable the auto-balancer with a sampling `interval` (virtual
    /// ticks) and tuning `config` (parallel control only).
    pub fn with_balancer(mut self, interval: u64, config: BalancerConfig) -> Self {
        self.balancer = Some((interval, config));
        self
    }

    /// Give engine `n` a per-message service cost of `ticks` (see
    /// [`WorkflowSystem::engine_service_costs`]).
    pub fn with_engine_service_cost(mut self, engine: u32, ticks: u64) -> Self {
        self.engine_service_costs.push((engine, ticks));
        self
    }

    /// Run a scenario to quiescence and report.
    pub fn run(&self, scenario: Scenario) -> RunReport {
        match self.architecture {
            Architecture::Distributed { agents } => self.run_distributed(scenario, agents),
            Architecture::Central { agents } => self.run_central(scenario, agents, 1),
            Architecture::Parallel { agents, engines } => {
                self.run_central(scenario, agents, engines)
            }
        }
    }

    fn linked_deployment(&self, scenario: &Scenario) -> Deployment {
        let mut deployment = self.deployment.clone();
        for &(a, b) in &scenario.links {
            deployment
                .ro_links
                .link(scenario.instance_id(a), scenario.instance_id(b));
        }
        deployment
    }

    fn run_distributed(&self, scenario: Scenario, agents: u32) -> RunReport {
        let deployment = self.linked_deployment(&scenario);
        let mut run = DistRun::new(deployment, agents, self.dist_config.clone());
        for w in &scenario.crashes {
            // Distributed agents embed their engine slice: either target
            // names the same node.
            let node = match w.target {
                CrashTarget::Agent(n) | CrashTarget::Engine(n) => {
                    assert!(
                        n < agents,
                        "CrashWindow targets node {n} but Distributed has {agents} agents"
                    );
                    crew_simnet::NodeId(n)
                }
            };
            run.sim.schedule_crash(node, w.at, w.down_for);
        }
        if let Some(plan) = &self.net_faults {
            run.sim.enable_net_faults(plan.clone());
        }
        let mut ids = Vec::new();
        let mut arrival_ticks = BTreeMap::new();
        for (schema, inputs, at) in &scenario.starts {
            let id = match at {
                None => run.start_instance(*schema, inputs.clone()),
                Some(t) => run.start_instance_at(*schema, inputs.clone(), *t),
            };
            arrival_ticks.insert(id, at.unwrap_or(0));
            ids.push(id);
        }
        for action in &scenario.actions {
            match action {
                UserAction::Abort { index, at } => run.abort_instance_at(ids[*index], *at),
                UserAction::ChangeInputs {
                    index,
                    at,
                    new_inputs,
                } => run.change_inputs_at(ids[*index], new_inputs.clone(), *at),
            }
        }
        // Bounded horizon: deliberately-unrecoverable crash scenarios keep
        // the poll timer alive forever; a generous virtual-time cap turns
        // "waits for the failed agent" into a terminating run.
        run.sim.max_events = 50_000_000;
        let events = run.sim.run_until(RUN_HORIZON_TICKS);
        let completion_ticks = run.completion_times();
        let outcomes_raw = run.outcomes();
        let outcomes: BTreeMap<InstanceId, InstanceOutcome> = ids
            .iter()
            .map(|&i| {
                let o = match outcomes_raw.get(&i) {
                    Some(Outcome::Committed) => InstanceOutcome::Committed,
                    Some(Outcome::Aborted) => InstanceOutcome::Aborted,
                    None => InstanceOutcome::Stalled,
                };
                (i, o)
            })
            .collect();
        RunReport {
            outcomes,
            instances: scenario.instance_count() as u64,
            scheduler_nodes: run.agent_nodes(),
            events,
            virtual_time: run.sim.now(),
            arrival_ticks,
            completion_ticks,
            metrics: run.sim.metrics.clone(),
            engine_loads: Vec::new(),
        }
    }

    fn run_central(&self, scenario: Scenario, agents: u32, engines: u32) -> RunReport {
        let deployment = self.linked_deployment(&scenario);
        let mut run = CentralRun::new_with_placement(deployment, agents, engines, self.placement);
        for w in &scenario.crashes {
            let node = match w.target {
                CrashTarget::Agent(n) => {
                    assert!(
                        n < agents,
                        "CrashWindow targets agent {n} but this architecture has {agents} agents"
                    );
                    crew_simnet::NodeId(n)
                }
                CrashTarget::Engine(n) => {
                    assert!(
                        n < engines,
                        "CrashWindow targets engine {n} but this architecture has {engines} engine(s)"
                    );
                    run.topo.engine_node(n)
                }
            };
            run.sim.schedule_crash(node, w.at, w.down_for);
        }
        if let Some(plan) = &self.net_faults {
            run.sim.enable_net_faults(plan.clone());
        }
        for &(e, ticks) in &self.engine_service_costs {
            if e < engines {
                run.sim.set_service_cost(run.topo.engine_node(e), ticks);
            }
        }
        let mut ids = Vec::new();
        let mut arrival_ticks = BTreeMap::new();
        for (schema, inputs, at) in &scenario.starts {
            let id = match at {
                None => run.start_instance(*schema, inputs.clone()),
                Some(t) => run.start_instance_at(*schema, inputs.clone(), *t),
            };
            arrival_ticks.insert(id, at.unwrap_or(0));
            ids.push(id);
        }
        for action in &scenario.actions {
            match action {
                UserAction::Abort { index, at } => run.abort_instance_at(ids[*index], *at),
                UserAction::ChangeInputs {
                    index,
                    at,
                    new_inputs,
                } => run.change_inputs_at(ids[*index], new_inputs.clone(), *at),
            }
        }
        // Bounded horizon, mirroring `run_distributed`: an engine or agent
        // that never recovers leaves retransmission timers alive forever;
        // the cap turns "waits for the failed node" into a terminating run
        // reported as Stalled instead of an unbounded loop.
        run.sim.max_events = 50_000_000;
        let events = match self.balancer {
            Some((interval, cfg)) if engines > 1 => {
                let p = crew_analysis::Params::paper_mean();
                run.run_balanced_until(RUN_HORIZON_TICKS, interval, &cfg, &p);
                run.sim.delivered()
            }
            _ => run.sim.run_until(RUN_HORIZON_TICKS),
        };
        let completion_ticks = run.completion_times();
        let statuses = run.statuses();
        let outcomes: BTreeMap<InstanceId, InstanceOutcome> = ids
            .iter()
            .map(|&i| {
                let o = match statuses.get(&i) {
                    Some(InstanceStatus::Committed) => InstanceOutcome::Committed,
                    Some(InstanceStatus::Aborted) => InstanceOutcome::Aborted,
                    Some(InstanceStatus::Executing) | None => InstanceOutcome::Stalled,
                };
                (i, o)
            })
            .collect();
        RunReport {
            outcomes,
            instances: scenario.instance_count() as u64,
            scheduler_nodes: run.engine_nodes(),
            events,
            virtual_time: run.sim.now(),
            arrival_ticks,
            completion_ticks,
            metrics: run.sim.metrics.clone(),
            engine_loads: run.engine_loads(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{AgentId, SchemaBuilder};

    fn two_step_schema() -> WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(1), "t").inputs(1);
        let s1 = b.add_step("A", "passthrough");
        let s2 = b.add_step("B", "passthrough");
        b.seq(s1, s2);
        b.configure(s1, |d| d.eligible_agents = vec![AgentId(0)]);
        b.configure(s2, |d| d.eligible_agents = vec![AgentId(1)]);
        b.build().unwrap()
    }

    #[test]
    fn same_scenario_commits_under_all_architectures() {
        for arch in [
            Architecture::Central { agents: 2 },
            Architecture::Parallel {
                agents: 2,
                engines: 2,
            },
            Architecture::Distributed { agents: 2 },
        ] {
            let system = WorkflowSystem::new([two_step_schema()], arch);
            let mut scenario = Scenario::new();
            scenario.start(SchemaId(1), vec![(1, Value::Int(7))]);
            scenario.start(SchemaId(1), vec![(1, Value::Int(8))]);
            let report = system.run(scenario);
            assert_eq!(report.committed(), 2, "{arch:?}");
            assert!(report.all_terminal(), "{arch:?}");
            assert!(report.metrics.total_messages > 0, "{arch:?}");
        }
    }

    #[test]
    fn net_faults_preserve_outcomes_under_all_architectures() {
        for arch in [
            Architecture::Central { agents: 2 },
            Architecture::Parallel {
                agents: 2,
                engines: 2,
            },
            Architecture::Distributed { agents: 2 },
        ] {
            let system = WorkflowSystem::new([two_step_schema()], arch)
                .with_net_faults(NetFaultPlan::probabilistic(11, 0.05, 0.05, 0.10));
            let mut scenario = Scenario::new();
            scenario.start(SchemaId(1), vec![(1, Value::Int(7))]);
            scenario.start(SchemaId(1), vec![(1, Value::Int(8))]);
            let report = system.run(scenario);
            assert_eq!(report.committed(), 2, "{arch:?}");
            assert!(report.all_terminal(), "{arch:?}");
            assert!(report.transport().data_frames > 0, "{arch:?}");
            assert!(report.frame_overhead() >= 1.0, "{arch:?}");
        }
    }

    #[test]
    fn staggered_starts_record_latency_under_all_architectures() {
        for arch in [
            Architecture::Central { agents: 2 },
            Architecture::Parallel {
                agents: 2,
                engines: 2,
            },
            Architecture::Distributed { agents: 2 },
        ] {
            let system = WorkflowSystem::new([two_step_schema()], arch);
            let mut scenario = Scenario::new();
            scenario.start_at(SchemaId(1), vec![(1, Value::Int(7))], 10);
            scenario.start_at(SchemaId(1), vec![(1, Value::Int(8))], 40);
            let report = system.run(scenario);
            assert_eq!(report.committed(), 2, "{arch:?}");
            assert_eq!(report.arrival_ticks.len(), 2, "{arch:?}");
            assert_eq!(report.completion_ticks.len(), 2, "{arch:?}");
            let lat = report.latency_stats().expect("two completions");
            assert_eq!(lat.count, 2, "{arch:?}");
            assert!(lat.p50 > 0, "{arch:?}: completion after arrival");
            assert!(
                lat.max < 1_000,
                "{arch:?}: latency is per-instance, not absolute time"
            );
        }
    }

    #[test]
    fn consistent_hash_placement_commits_and_reports_engine_loads() {
        let system = WorkflowSystem::new(
            [two_step_schema()],
            Architecture::Parallel {
                agents: 2,
                engines: 4,
            },
        )
        .with_placement(PlacementStrategy::ConsistentHash { vnodes: 16 })
        .with_balancer(8, BalancerConfig::default());
        let mut scenario = Scenario::new();
        for i in 0..12 {
            scenario.start_at(SchemaId(1), vec![(1, Value::Int(i))], (i as u64) * 3);
        }
        let report = system.run(scenario);
        assert_eq!(report.committed(), 12);
        assert!(report.all_terminal());
        assert_eq!(report.engine_loads.len(), 4);
        assert!(report.engine_loads.iter().any(|l| l.delivered_msgs > 0));
        assert!(report.engine_skew() >= 1.0 || report.engine_loads.is_empty());
    }

    #[test]
    fn scenario_instance_ids_are_serial() {
        let mut scenario = Scenario::new();
        let a = scenario.start(SchemaId(1), vec![]);
        let b = scenario.start(SchemaId(1), vec![]);
        assert_eq!(scenario.instance_id(a), InstanceId::new(SchemaId(1), 1));
        assert_eq!(scenario.instance_id(b), InstanceId::new(SchemaId(1), 2));
    }

    #[test]
    fn abort_mid_flight_aborts() {
        let system =
            WorkflowSystem::new([two_step_schema()], Architecture::Distributed { agents: 2 });
        let mut scenario = Scenario::new();
        let i = scenario.start(SchemaId(1), vec![(1, Value::Int(7))]);
        scenario.abort_at(i, 2);
        let report = system.run(scenario);
        // Either the abort landed before commit (aborted) or after
        // (rejected → committed); with latency ≥ 1 per hop and 2 steps the
        // abort at t=2 beats the 2-hop commit path.
        assert!(report.aborted() == 1 || report.committed() == 1);
    }
}
