//! The rule set of one workflow instance: the run-time realization of the
//! paper's general-rule table, pending-rule table and event table (§4.2),
//! together with the three implementation-level primitives `AddRule()`,
//! `AddEvent()` and `AddPrecondition()` (§3, Figure 4).
//!
//! In distributed control every agent keeps one `RuleSet` per instance it
//! participates in, holding only the rules for the steps it is responsible
//! for plus any coordination rules installed by peers. In centralized
//! control the engine keeps the complete rule set of each instance.

use crate::event::{EventKind, EventState};
use crate::rule::{Action, Rule, RuleId};
use crew_model::DataEnv;
use std::collections::BTreeMap;

/// Outcome of a [`RuleSet::fire_ready`] sweep: the rules that fired, in
/// order, with their actions.
#[derive(Debug, Clone, PartialEq)]
pub struct Firing {
    /// The rule that fired.
    pub rule: RuleId,
    /// Action taken when the rule fires.
    pub action: Action,
}

/// Per-instance rule set + event table.
///
/// ```
/// use crew_rules::{Action, EventKind, Rule, RuleId, RuleSet};
/// use crew_model::{DataEnv, StepId};
///
/// let mut rs = RuleSet::new();
/// rs.add_rule(Rule::new(
///     RuleId(0),
///     vec![EventKind::WorkflowStart],
///     Action::StartStep(StepId(1)),
/// ));
/// rs.add_event(EventKind::WorkflowStart);
/// let fired = rs.fire_ready(&DataEnv::new());
/// assert_eq!(fired.len(), 1);
/// assert_eq!(fired[0].action, Action::StartStep(StepId(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: BTreeMap<RuleId, Rule>,
    events: BTreeMap<EventKind, EventState>,
    next_rule: u32,
    /// Total rule firings — a component of the node's navigation load.
    firings: u64,
}

impl RuleSet {
    /// Create a new, empty value.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- AddRule() -------------------------------------------------------

    /// Install a rule (the `AddRule()` primitive). The rule's id is
    /// reassigned to be unique in this set; the assigned id is returned.
    pub fn add_rule(&mut self, mut rule: Rule) -> RuleId {
        let id = RuleId(self.next_rule);
        self.next_rule += 1;
        rule.id = id;
        self.rules.insert(id, rule);
        id
    }

    /// Install every rule of a compiled template (cloning), e.g. when a
    /// workflow packet first reaches an agent and the instance's rules are
    /// instantiated from the workflow class table.
    pub fn add_rules<'a>(&mut self, rules: impl IntoIterator<Item = &'a Rule>) -> Vec<RuleId> {
        rules
            .into_iter()
            .map(|r| self.add_rule(r.clone()))
            .collect()
    }

    /// Remove a rule outright.
    pub fn remove_rule(&mut self, id: RuleId) -> Option<Rule> {
        self.rules.remove(&id)
    }

    /// Clear a rule's firing marks so it can fire again on the events it
    /// already consumed — used when a rollback re-executes the rule's step
    /// without re-delivering its (still valid) trigger events.
    pub fn reset_rule(&mut self, id: RuleId) -> bool {
        match self.rules.get_mut(&id) {
            Some(r) => {
                r.fired_marks.clear();
                true
            }
            None => false,
        }
    }

    // ---- AddEvent() ------------------------------------------------------

    /// Post an occurrence of `kind` (the `AddEvent()` primitive): bumps the
    /// generation and (re)validates the event.
    pub fn add_event(&mut self, kind: EventKind) {
        let st = self.events.entry(kind).or_default();
        st.generation += 1;
        st.valid = true;
    }

    /// Post `kind` only if it is not already present — used when folding the
    /// cumulative event list of an arriving workflow packet into the local
    /// event table (re-deliveries of the same packet must not double-count).
    pub fn add_event_if_absent(&mut self, kind: EventKind) -> bool {
        let st = self.events.entry(kind).or_default();
        if st.is_present() {
            false
        } else {
            st.generation += 1;
            st.valid = true;
            true
        }
    }

    /// Merge an event occurrence carried by a workflow packet: occurrences
    /// are numbered (generations), so the merge is idempotent across the
    /// eligible-agent broadcast yet still delivers *fresh* occurrences —
    /// which is what re-fires downstream rules after a rollback
    /// re-executes (or reuses) upstream steps, and what drives loop
    /// iterations across agents. Returns `true` if the local table
    /// advanced.
    pub fn merge_event(&mut self, kind: EventKind, generation: u32) -> bool {
        let st = self.events.entry(kind).or_default();
        if generation > st.generation {
            st.generation = generation;
            st.valid = true;
            true
        } else if generation == st.generation && st.generation > 0 && !st.valid {
            // Re-delivery of an occurrence we invalidated during rollback:
            // the fact is re-established without minting a new occurrence
            // (rules affected by the invalidation had their marks cleared,
            // so they fire exactly once on the revalidated generation).
            st.valid = true;
            true
        } else {
            false
        }
    }

    /// Re-validate an event occurrence without minting a new one — the
    /// OCR *reuse* outcome: the step's previous completion stands. Returns
    /// `true` if the event was invalid and is now valid again.
    pub fn revalidate_event(&mut self, kind: EventKind) -> bool {
        match self.events.get_mut(&kind) {
            Some(st) if st.generation > 0 && !st.valid => {
                st.valid = true;
                true
            }
            _ => false,
        }
    }

    /// Present events with their generations — the cumulative event list a
    /// workflow packet carries onward.
    pub fn present_events_with_gens(&self) -> Vec<(EventKind, u32)> {
        self.events
            .iter()
            .filter(|(_, st)| st.is_present())
            .map(|(&k, st)| (k, st.generation))
            .collect()
    }

    // ---- AddPrecondition() -----------------------------------------------

    /// Require an additional event before `rule` may fire (the
    /// `AddPrecondition()` primitive). Returns `false` if the rule does not
    /// exist (e.g. already fired and removed).
    pub fn add_precondition(&mut self, rule: RuleId, kind: EventKind) -> bool {
        match self.rules.get_mut(&rule) {
            Some(r) => {
                if !r.trigger.contains(&kind) {
                    r.trigger.push(kind);
                }
                true
            }
            None => false,
        }
    }

    // ---- event table -----------------------------------------------------

    /// State of an event kind (default state if never seen).
    pub fn event_state(&self, kind: EventKind) -> EventState {
        self.events.get(&kind).copied().unwrap_or_default()
    }

    /// True if the event is present and valid.
    pub fn has_event(&self, kind: EventKind) -> bool {
        self.event_state(kind).is_present()
    }

    /// Invalidate an event (rollback: `step.done` of steps downstream of
    /// the rollback origin). Pending rules waiting on it effectively reset;
    /// rules that already consumed it will re-fire only after a fresh
    /// occurrence.
    pub fn invalidate_event(&mut self, kind: EventKind) {
        if let Some(st) = self.events.get_mut(&kind) {
            st.valid = false;
        }
        // A rule whose firing consumed the invalidated fact is void: clear
        // *all* its marks so it re-fires from whatever occurrences are
        // present once the invalidated event is re-established. (Clearing
        // only the invalidated event's mark would leave the rule blocked
        // on its other, still-present triggers — e.g. coordination guard
        // events — whose generations were already consumed.)
        for rule in self.rules.values_mut() {
            if rule.trigger.contains(&kind) {
                rule.fired_marks.clear();
            }
        }
    }

    /// Discard rules whose trigger references `kind` — the paper's "rules in
    /// the pending rule table from which the invalidated step.done events
    /// have been deleted are discarded to ensure that incorrect rules will
    /// not be fired". Returns the removed rule ids.
    pub fn discard_rules_waiting_on(&mut self, kind: EventKind) -> Vec<RuleId> {
        let doomed: Vec<RuleId> = self
            .rules
            .iter()
            .filter(|(_, r)| r.trigger.contains(&kind) && !self.rule_is_ready_ignoring_guard(r))
            .map(|(&id, _)| id)
            .collect();
        for id in &doomed {
            self.rules.remove(id);
        }
        doomed
    }

    /// All present (valid, occurred) events — what a workflow packet carries
    /// onward as its cumulative event list.
    pub fn present_events(&self) -> Vec<EventKind> {
        self.events
            .iter()
            .filter(|(_, st)| st.is_present())
            .map(|(&k, _)| k)
            .collect()
    }

    // ---- firing ----------------------------------------------------------

    fn rule_is_ready_ignoring_guard(&self, rule: &Rule) -> bool {
        rule.trigger.iter().all(|kind| {
            let st = self.event_state(*kind);
            let mark = rule.fired_marks.get(kind).copied().unwrap_or(0);
            st.is_present() && st.generation > mark
        })
    }

    /// Fire every rule whose trigger events are all present with fresh
    /// generations and whose guard holds over `env`. Fired rules mark the
    /// consumed generations (so one occurrence fires a rule at most once)
    /// and their actions are returned in rule-id order.
    ///
    /// Guard evaluation errors count as `false`: a branch condition over
    /// data that is absent simply does not select that branch.
    pub fn fire_ready(&mut self, env: &DataEnv) -> Vec<Firing> {
        let mut fired = Vec::new();
        // Deterministic order: ascending rule id. Collect first to appease
        // the borrow checker, then mark.
        let candidates: Vec<RuleId> = self
            .rules
            .values()
            .filter(|r| self.rule_is_ready_ignoring_guard(r))
            .filter(|r| match &r.guard {
                None => true,
                Some(g) => g.eval_bool(env).unwrap_or(false),
            })
            .map(|r| r.id)
            .collect();
        for id in candidates {
            // Re-check readiness: an earlier firing in this sweep cannot
            // invalidate events, but keep the invariant locally obvious.
            let Some(rule) = self.rules.get(&id) else {
                continue;
            };
            if !self.rule_is_ready_ignoring_guard(rule) {
                continue;
            }
            let marks: Vec<(EventKind, u32)> = rule
                .trigger
                .iter()
                .map(|k| (*k, self.event_state(*k).generation))
                .collect();
            let action = rule.action.clone();
            let rule = self.rules.get_mut(&id).expect("present");
            for (k, gen) in marks {
                rule.fired_marks.insert(k, gen);
            }
            self.firings += 1;
            fired.push(Firing { rule: id, action });
        }
        fired
    }

    // ---- introspection ---------------------------------------------------

    /// Look up a rule by id.
    pub fn rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(&id)
    }

    /// Rules.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.values()
    }

    /// Rule count.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Total firings so far (a load indicator).
    pub fn total_firings(&self) -> u64 {
        self.firings
    }

    /// The *pending-rule table*: rules that are not currently ready, with
    /// the events still missing for each. The distributed agent's
    /// predecessor-failure timeout scans this for rules blocked on exactly
    /// one `step.done`.
    pub fn pending_rules(&self) -> Vec<(RuleId, Vec<EventKind>)> {
        self.rules
            .values()
            .filter(|r| !self.rule_is_ready_ignoring_guard(r))
            .map(|r| {
                let missing: Vec<EventKind> = r
                    .trigger
                    .iter()
                    .filter(|k| {
                        let st = self.event_state(**k);
                        let mark = r.fired_marks.get(k).copied().unwrap_or(0);
                        !(st.is_present() && st.generation > mark)
                    })
                    .copied()
                    .collect();
                (r.id, missing)
            })
            .collect()
    }

    /// Has `rule` already consumed the current occurrence of `kind`?
    /// (`None` if the rule does not exist or does not trigger on `kind`.)
    pub fn trigger_consumed(&self, id: RuleId, kind: EventKind) -> Option<bool> {
        let rule = self.rules.get(&id)?;
        if !rule.trigger.contains(&kind) {
            return None;
        }
        let st = self.event_state(kind);
        let mark = rule.fired_marks.get(&kind).copied().unwrap_or(0);
        Some(mark >= st.generation)
    }

    /// Rules currently blocked on exactly one missing event of the given
    /// predicate — helper for the `StepStatus` polling protocol.
    pub fn blocked_on_single(&self, pred: impl Fn(EventKind) -> bool) -> Vec<(RuleId, EventKind)> {
        self.pending_rules()
            .into_iter()
            .filter_map(|(id, missing)| match missing.as_slice() {
                [only] if pred(*only) => Some((id, *only)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{Expr, ItemKey, StepId, Value};

    fn env_with(slot: u16, v: i64) -> DataEnv {
        let mut e = DataEnv::new();
        e.set(ItemKey::input(slot), Value::Int(v));
        e
    }

    #[test]
    fn simple_fire_once_per_occurrence() {
        let mut rs = RuleSet::new();
        let id = rs.add_rule(Rule::new(
            RuleId(0),
            vec![EventKind::WorkflowStart],
            Action::StartStep(StepId(1)),
        ));
        assert!(rs.fire_ready(&DataEnv::new()).is_empty());
        rs.add_event(EventKind::WorkflowStart);
        let fired = rs.fire_ready(&DataEnv::new());
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, id);
        // Same occurrence does not fire twice.
        assert!(rs.fire_ready(&DataEnv::new()).is_empty());
        // A fresh occurrence (loop) re-fires.
        rs.add_event(EventKind::WorkflowStart);
        assert_eq!(rs.fire_ready(&DataEnv::new()).len(), 1);
        assert_eq!(rs.total_firings(), 2);
    }

    #[test]
    fn conjunction_waits_for_all_events() {
        let mut rs = RuleSet::new();
        rs.add_rule(Rule::new(
            RuleId(0),
            vec![
                EventKind::StepDone(StepId(1)),
                EventKind::StepDone(StepId(2)),
            ],
            Action::StartStep(StepId(3)),
        ));
        rs.add_event(EventKind::StepDone(StepId(1)));
        assert!(rs.fire_ready(&DataEnv::new()).is_empty());
        let pending = rs.pending_rules();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].1, vec![EventKind::StepDone(StepId(2))]);
        rs.add_event(EventKind::StepDone(StepId(2)));
        assert_eq!(rs.fire_ready(&DataEnv::new()).len(), 1);
    }

    #[test]
    fn guard_selects_branch() {
        let mut rs = RuleSet::new();
        let key = ItemKey::input(1);
        rs.add_rule(
            Rule::new(
                RuleId(0),
                vec![EventKind::StepDone(StepId(2))],
                Action::StartStep(StepId(3)),
            )
            .with_guard(Expr::gt(Expr::item(key), Expr::lit(10))),
        );
        rs.add_rule(
            Rule::new(
                RuleId(0),
                vec![EventKind::StepDone(StepId(2))],
                Action::StartStep(StepId(4)),
            )
            .with_guard(Expr::le(Expr::item(key), Expr::lit(10))),
        );
        rs.add_event(EventKind::StepDone(StepId(2)));
        let fired = rs.fire_ready(&env_with(1, 42));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].action, Action::StartStep(StepId(3)));
    }

    #[test]
    fn guard_error_is_false_not_panic() {
        let mut rs = RuleSet::new();
        rs.add_rule(
            Rule::new(
                RuleId(0),
                vec![EventKind::WorkflowStart],
                Action::StartStep(StepId(1)),
            )
            .with_guard(Expr::gt(Expr::item(ItemKey::input(9)), Expr::lit(0))),
        );
        rs.add_event(EventKind::WorkflowStart);
        assert!(rs.fire_ready(&DataEnv::new()).is_empty());
        // Data arrives later; the still-pending occurrence now fires.
        assert_eq!(rs.fire_ready(&env_with(9, 1)).len(), 1);
    }

    #[test]
    fn add_precondition_blocks_until_external_event() {
        let mut rs = RuleSet::new();
        let id = rs.add_rule(Rule::new(
            RuleId(0),
            vec![EventKind::StepDone(StepId(1))],
            Action::StartStep(StepId(2)),
        ));
        // Coordinated execution: S2 must additionally wait for an external
        // event from the leading workflow (Figure 4).
        assert!(rs.add_precondition(id, EventKind::External(7)));
        rs.add_event(EventKind::StepDone(StepId(1)));
        assert!(rs.fire_ready(&DataEnv::new()).is_empty());
        rs.add_event(EventKind::External(7));
        assert_eq!(rs.fire_ready(&DataEnv::new()).len(), 1);
        // Unknown rule id reports failure.
        assert!(!rs.add_precondition(RuleId(99), EventKind::External(1)));
    }

    #[test]
    fn invalidate_resets_rules_for_reexecution() {
        let mut rs = RuleSet::new();
        rs.add_rule(Rule::new(
            RuleId(0),
            vec![EventKind::StepDone(StepId(1))],
            Action::StartStep(StepId(2)),
        ));
        rs.add_event(EventKind::StepDone(StepId(1)));
        assert_eq!(rs.fire_ready(&DataEnv::new()).len(), 1);
        // Rollback: S1's completion is no longer a fact.
        rs.invalidate_event(EventKind::StepDone(StepId(1)));
        assert!(!rs.has_event(EventKind::StepDone(StepId(1))));
        assert!(rs.fire_ready(&DataEnv::new()).is_empty());
        // Re-execution of S1 revalidates and re-triggers S2's rule.
        rs.add_event(EventKind::StepDone(StepId(1)));
        assert_eq!(rs.fire_ready(&DataEnv::new()).len(), 1);
    }

    #[test]
    fn add_event_if_absent_dedupes_packet_merges() {
        let mut rs = RuleSet::new();
        assert!(rs.add_event_if_absent(EventKind::StepDone(StepId(1))));
        assert!(!rs.add_event_if_absent(EventKind::StepDone(StepId(1))));
        assert_eq!(rs.event_state(EventKind::StepDone(StepId(1))).generation, 1);
        // After invalidation the merge counts again.
        rs.invalidate_event(EventKind::StepDone(StepId(1)));
        assert!(rs.add_event_if_absent(EventKind::StepDone(StepId(1))));
        assert_eq!(rs.event_state(EventKind::StepDone(StepId(1))).generation, 2);
    }

    #[test]
    fn discard_rules_waiting_on_invalidated_events() {
        let mut rs = RuleSet::new();
        let pending = rs.add_rule(Rule::new(
            RuleId(0),
            vec![
                EventKind::StepDone(StepId(1)),
                EventKind::StepDone(StepId(9)),
            ],
            Action::StartStep(StepId(3)),
        ));
        let satisfied = rs.add_rule(Rule::new(
            RuleId(0),
            vec![EventKind::StepDone(StepId(1))],
            Action::StartStep(StepId(2)),
        ));
        rs.add_event(EventKind::StepDone(StepId(1)));
        let removed = rs.discard_rules_waiting_on(EventKind::StepDone(StepId(9)));
        assert_eq!(removed, vec![pending]);
        assert!(rs.rule(satisfied).is_some());
    }

    #[test]
    fn blocked_on_single_finds_poll_candidates() {
        let mut rs = RuleSet::new();
        rs.add_rule(Rule::new(
            RuleId(0),
            vec![EventKind::StepDone(StepId(1))],
            Action::StartStep(StepId(2)),
        ));
        rs.add_rule(Rule::new(
            RuleId(0),
            vec![
                EventKind::StepDone(StepId(3)),
                EventKind::StepDone(StepId(4)),
            ],
            Action::StartStep(StepId(5)),
        ));
        let hits = rs.blocked_on_single(|k| matches!(k, EventKind::StepDone(_)));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, EventKind::StepDone(StepId(1)));
    }

    #[test]
    fn present_events_round_trip() {
        let mut rs = RuleSet::new();
        rs.add_event(EventKind::WorkflowStart);
        rs.add_event(EventKind::StepDone(StepId(1)));
        rs.invalidate_event(EventKind::StepDone(StepId(1)));
        assert_eq!(rs.present_events(), vec![EventKind::WorkflowStart]);
    }
}
