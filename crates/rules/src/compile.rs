//! Compiling a workflow schema into its rule template.
//!
//! The paper's run-times navigate by firing rules: "When a workflow is
//! instantiated ... a workflow.start event is generated which triggers
//! several rules", and each subsequent step's rule fires on the `step.done`
//! events of its control-flow predecessors plus the producers of its input
//! data (§3, §4.2). This module derives that rule template from a validated
//! [`WorkflowSchema`]; run-times instantiate the template per instance (and
//! per agent, in distributed control, keeping only the rules for locally
//! handled steps).

use crate::event::EventKind;
use crate::rule::{Action, Rule, RuleId};
use crew_model::{Expr, JoinKind, StepId, WorkflowSchema};

/// A rule template entry: the rule plus the step whose execution it starts.
/// Distributed agents filter the template by step responsibility.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateRule {
    /// The step the rule fires (every compiled navigation rule starts a
    /// step; coordination rules are added at run time instead).
    pub step: StepId,
    /// The rule that fired.
    pub rule: Rule,
}

/// Compile the navigation rule template for `schema`.
///
/// Per step, the trigger is:
/// - the start step: `workflow.start`;
/// - an AND-join (or single-predecessor step): `step.done` of **all**
///   forward predecessors;
/// - an XOR-join: one rule per incoming arc, each on that predecessor's
///   `step.done`;
///
/// plus, in every case, `step.done` of any cross-branch data producers
/// ("the rule may require other step.done events depending on which of the
/// steps it gets its input data from", §4.2).
///
/// Arc conditions become rule guards. On an XOR split the unconditioned
/// `otherwise` arc gets the negated conjunction of its sibling conditions,
/// so that exactly one branch rule can fire. Loop back-edges compile to an
/// additional rule at the loop head guarded by the continue condition; the
/// forward exit arc out of the loop tail is guarded by the negated continue
/// condition when it does not carry its own.
pub fn compile_schema(schema: &WorkflowSchema) -> Vec<TemplateRule> {
    let mut out = Vec::new();
    let mut next = 0u32;
    let mut push = |step: StepId, rule: Rule| {
        out.push(TemplateRule { step, rule });
    };

    for def in schema.steps() {
        let step = def.id;
        let extra: Vec<EventKind> = schema
            .cross_branch_producers(step)
            .into_iter()
            .map(EventKind::StepDone)
            .collect();

        if step == schema.start_step() {
            let mut trigger = vec![EventKind::WorkflowStart];
            trigger.extend(extra.iter().copied());
            let rule = Rule::new(RuleId(next), trigger, Action::StartStep(step))
                .with_label(format!("start {step} on workflow.start"));
            next += 1;
            push(step, rule);
        } else {
            let incoming: Vec<&crew_model::ControlArc> = schema.forward_incoming(step).collect();
            let is_xor_join = incoming.len() > 1 && schema.join_kind(step) == Some(JoinKind::Xor);
            if is_xor_join {
                // One rule per incoming arc: any single branch completing
                // fires the confluence step.
                for arc in &incoming {
                    let mut trigger = vec![EventKind::StepDone(arc.from)];
                    trigger.extend(extra.iter().copied());
                    let mut rule = Rule::new(RuleId(next), trigger, Action::StartStep(step))
                        .with_label(format!("start {step} on {}.done (xor-join)", arc.from));
                    next += 1;
                    if let Some(guard) = arc_guard(schema, arc) {
                        rule = rule.with_guard(guard);
                    }
                    push(step, rule);
                }
            } else {
                // AND-join / sequence: all predecessors must complete.
                let mut trigger: Vec<EventKind> = incoming
                    .iter()
                    .map(|a| EventKind::StepDone(a.from))
                    .collect();
                trigger.extend(extra.iter().copied());
                // Conjoin the guards of all incoming arcs (only meaningful
                // for a single conditioned arc out of an XOR split).
                let mut guard: Option<Expr> = None;
                for arc in &incoming {
                    if let Some(g) = arc_guard(schema, arc) {
                        guard = Some(match guard {
                            None => g,
                            Some(prev) => Expr::and(prev, g),
                        });
                    }
                }
                let mut rule = Rule::new(RuleId(next), trigger, Action::StartStep(step))
                    .with_label(format!("start {step}"));
                next += 1;
                if let Some(g) = guard {
                    rule = rule.with_guard(g);
                }
                push(step, rule);
            }
        }

        // Loop back-edges targeting this step: re-fire it while the
        // continue condition holds.
        for arc in schema.incoming(step).filter(|a| a.loop_back) {
            let trigger = vec![EventKind::StepDone(arc.from)];
            let mut rule = Rule::new(RuleId(next), trigger, Action::StartStep(step))
                .with_label(format!("loop back {} -> {step}", arc.from));
            next += 1;
            if let Some(c) = &arc.condition {
                rule = rule.with_guard(c.clone());
            }
            push(step, rule);
        }
    }

    out
}

/// The effective guard of a forward arc: its own condition; for the single
/// unconditioned arc of an XOR split, the negated disjunction of the
/// sibling conditions; for the forward exit of a loop tail with an
/// unconditioned exit arc, the negated loop-continue condition.
fn arc_guard(schema: &WorkflowSchema, arc: &crew_model::ControlArc) -> Option<Expr> {
    if let Some(c) = &arc.condition {
        return Some(c.clone());
    }
    // `otherwise` arc of an XOR split.
    if schema.split_kind(arc.from) == Some(crew_model::SplitKind::Xor) {
        let siblings: Vec<Expr> = schema
            .forward_outgoing(arc.from)
            .filter(|a| a.to != arc.to)
            .filter_map(|a| a.condition.clone())
            .collect();
        if !siblings.is_empty() {
            let any = siblings.into_iter().reduce(Expr::or).expect("non-empty");
            return Some(Expr::not(any));
        }
    }
    // Forward continuation out of a loop tail: take it when the loop does
    // not continue.
    let loop_conds: Vec<Expr> = schema
        .outgoing(arc.from)
        .filter(|a| a.loop_back)
        .filter_map(|a| a.condition.clone())
        .collect();
    if !loop_conds.is_empty() {
        let any = loop_conds.into_iter().reduce(Expr::or).expect("non-empty");
        return Some(Expr::not(any));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ruleset::RuleSet;
    use crew_model::{DataEnv, ItemKey, SchemaBuilder, SchemaId, Value};

    fn fire_all(rs: &mut RuleSet, env: &DataEnv) -> Vec<StepId> {
        rs.fire_ready(env)
            .into_iter()
            .filter_map(|f| match f.action {
                Action::StartStep(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sequence_compiles_to_chained_rules() {
        let mut b = SchemaBuilder::new(SchemaId(1), "seq");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        b.seq(s1, s2);
        let schema = b.build().unwrap();
        let template = compile_schema(&schema);
        assert_eq!(template.len(), 2);

        let mut rs = RuleSet::new();
        rs.add_rules(template.iter().map(|t| &t.rule));
        rs.add_event(EventKind::WorkflowStart);
        assert_eq!(fire_all(&mut rs, &DataEnv::new()), vec![s1]);
        rs.add_event(EventKind::StepDone(s1));
        assert_eq!(fire_all(&mut rs, &DataEnv::new()), vec![s2]);
    }

    #[test]
    fn and_split_fires_both_join_waits_for_all() {
        let mut b = SchemaBuilder::new(SchemaId(1), "par");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        let s4 = b.add_step("D", "p");
        b.and_split(s1, [s2, s3]);
        b.and_join([s2, s3], s4);
        let schema = b.build().unwrap();
        let mut rs = RuleSet::new();
        rs.add_rules(compile_schema(&schema).iter().map(|t| &t.rule));

        rs.add_event(EventKind::WorkflowStart);
        assert_eq!(fire_all(&mut rs, &DataEnv::new()), vec![s1]);
        rs.add_event(EventKind::StepDone(s1));
        let mut fired = fire_all(&mut rs, &DataEnv::new());
        fired.sort();
        assert_eq!(fired, vec![s2, s3]);
        rs.add_event(EventKind::StepDone(s2));
        assert!(fire_all(&mut rs, &DataEnv::new()).is_empty());
        rs.add_event(EventKind::StepDone(s3));
        assert_eq!(fire_all(&mut rs, &DataEnv::new()), vec![s4]);
    }

    #[test]
    fn xor_split_takes_exactly_one_branch_and_otherwise_negates() {
        let mut b = SchemaBuilder::new(SchemaId(1), "xor").inputs(1);
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        let s4 = b.add_step("D", "p");
        b.xor_split(
            s1,
            [
                (
                    s2,
                    Some(Expr::gt(Expr::item(ItemKey::input(1)), Expr::lit(10))),
                ),
                (s3, None),
            ],
        );
        b.xor_join([s2, s3], s4);
        let schema = b.build().unwrap();

        let run = |input: i64| {
            let mut rs = RuleSet::new();
            rs.add_rules(compile_schema(&schema).iter().map(|t| &t.rule));
            let mut env = DataEnv::new();
            env.set(ItemKey::input(1), Value::Int(input));
            rs.add_event(EventKind::WorkflowStart);
            assert_eq!(fire_all(&mut rs, &env), vec![s1]);
            rs.add_event(EventKind::StepDone(s1));
            let branch = fire_all(&mut rs, &env);
            assert_eq!(branch.len(), 1, "exactly one branch");
            let taken = branch[0];
            rs.add_event(EventKind::StepDone(taken));
            // XOR join fires on the single completed branch.
            assert_eq!(fire_all(&mut rs, &env), vec![s4]);
            taken
        };
        assert_eq!(run(42), s2);
        assert_eq!(run(5), s3);
    }

    #[test]
    fn cross_branch_data_adds_producer_event() {
        let mut b = SchemaBuilder::new(SchemaId(1), "data");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        let s4 = b.add_step("D", "p");
        b.and_split(s1, [s2, s3]);
        b.and_join([s2, s3], s4);
        b.read(s3, ItemKey::output(s2, 1)); // C consumes B's output
        let schema = b.build().unwrap();
        let template = compile_schema(&schema);
        let c_rule = template.iter().find(|t| t.step == s3).unwrap();
        assert!(c_rule.rule.trigger.contains(&EventKind::StepDone(s2)));

        // Behaviourally: C must not fire before B completes.
        let mut rs = RuleSet::new();
        rs.add_rules(template.iter().map(|t| &t.rule));
        rs.add_event(EventKind::WorkflowStart);
        fire_all(&mut rs, &DataEnv::new());
        rs.add_event(EventKind::StepDone(s1));
        let first = fire_all(&mut rs, &DataEnv::new());
        assert_eq!(first, vec![s2], "only B is ready until B.done");
        rs.add_event(EventKind::StepDone(s2));
        assert_eq!(fire_all(&mut rs, &DataEnv::new()), vec![s3]);
    }

    #[test]
    fn loop_repeats_until_condition_clears() {
        let mut b = SchemaBuilder::new(SchemaId(1), "loop").inputs(1);
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("Body", "p");
        let s3 = b.add_step("After", "p");
        b.seq(s1, s2);
        b.seq(s2, s3);
        let cont = Expr::lt(Expr::item(ItemKey::input(1)), Expr::lit(3));
        b.loop_back(s2, s2, cont);
        let schema = b.build().unwrap();
        let mut rs = RuleSet::new();
        rs.add_rules(compile_schema(&schema).iter().map(|t| &t.rule));

        let mut env = DataEnv::new();
        env.set(ItemKey::input(1), Value::Int(0));
        rs.add_event(EventKind::WorkflowStart);
        fire_all(&mut rs, &env);
        rs.add_event(EventKind::StepDone(s1));
        assert_eq!(fire_all(&mut rs, &env), vec![s2]);
        // Body completes with counter still low: loop rule fires body again
        // and the exit arc's negated guard keeps After quiet.
        for i in 1..3 {
            env.set(ItemKey::input(1), Value::Int(i));
            rs.add_event(EventKind::StepDone(s2));
            assert_eq!(fire_all(&mut rs, &env), vec![s2], "iteration {i}");
        }
        env.set(ItemKey::input(1), Value::Int(3));
        rs.add_event(EventKind::StepDone(s2));
        assert_eq!(fire_all(&mut rs, &env), vec![s3]);
    }

    #[test]
    fn template_covers_every_step() {
        let mut b = SchemaBuilder::new(SchemaId(1), "all").inputs(1);
        let ids: Vec<StepId> = (0..5).map(|i| b.add_step(format!("S{i}"), "p")).collect();
        for w in ids.windows(2) {
            b.seq(w[0], w[1]);
        }
        let schema = b.build().unwrap();
        let template = compile_schema(&schema);
        for def in schema.steps() {
            assert!(template.iter().any(|t| t.step == def.id));
        }
    }
}
