//! Workflow events.
//!
//! The rule-based run-time is driven by events (§3): `workflow.start`,
//! `step.done`, `step.fail`, `step.compensate`, `workflow.done`,
//! `workflow.abort`, plus *external* events injected across rule sets by the
//! coordination machinery (`AddEvent()`, Figure 4).
//!
//! Events are scoped to one workflow instance (the rule set they are posted
//! into). Each event kind carries a *generation* — the number of times it
//! has occurred — because loops re-produce `step.done` for body steps, and a
//! *validity* flag — rollback invalidates the `step.done` of steps that are
//! to be re-executed (the `HaltThread` protocol, §5.2).

use crew_model::StepId;
use std::fmt;

/// The kind of an event within one workflow instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// The instance was started (`workflow.start`).
    WorkflowStart,
    /// A step completed successfully (`step.done`).
    StepDone(StepId),
    /// A step failed (`step.fail`).
    StepFail(StepId),
    /// A step was compensated (`step.compensate` outcome).
    StepCompensated(StepId),
    /// The instance committed (`workflow.done`).
    WorkflowDone,
    /// The instance aborted (`workflow.abort`).
    WorkflowAbort,
    /// An event injected from outside this rule set — by the coordinated-
    /// execution machinery of another instance or agent via `AddEvent()`.
    /// The payload identifies the coordination fact (e.g. "leading workflow
    /// finished its k-th conflicting step").
    External(u64),
}

impl EventKind {
    /// Render like the paper's compact packet notation (`S1.D`, `WF1.S`,
    /// Figure 7 uses `S1.D S2.D WF1.S`).
    pub fn code(&self) -> String {
        match self {
            EventKind::WorkflowStart => "WF.S".to_owned(),
            EventKind::StepDone(s) => format!("{s}.D"),
            EventKind::StepFail(s) => format!("{s}.F"),
            EventKind::StepCompensated(s) => format!("{s}.C"),
            EventKind::WorkflowDone => "WF.D".to_owned(),
            EventKind::WorkflowAbort => "WF.A".to_owned(),
            EventKind::External(tag) => format!("X.{tag:x}"),
        }
    }

    /// The step this event concerns, if any.
    pub fn step(&self) -> Option<StepId> {
        match self {
            EventKind::StepDone(s) | EventKind::StepFail(s) | EventKind::StepCompensated(s) => {
                Some(*s)
            }
            _ => None,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.code())
    }
}

/// State of one event kind in an instance's event table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventState {
    /// How many times the event has occurred (0 = never).
    pub generation: u32,
    /// `false` after rollback invalidated the occurrence; a fresh
    /// occurrence revalidates.
    pub valid: bool,
}

impl EventState {
    /// An event that has occurred `generation` times and is valid.
    pub fn occurred(generation: u32) -> Self {
        EventState {
            generation,
            valid: generation > 0,
        }
    }

    /// True if the event is present for rule-triggering purposes.
    pub fn is_present(&self) -> bool {
        self.valid && self.generation > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_packet_notation() {
        assert_eq!(EventKind::WorkflowStart.code(), "WF.S");
        assert_eq!(EventKind::StepDone(StepId(2)).code(), "S2.D");
        assert_eq!(EventKind::StepFail(StepId(4)).code(), "S4.F");
        assert_eq!(EventKind::StepCompensated(StepId(3)).code(), "S3.C");
        assert_eq!(EventKind::WorkflowDone.code(), "WF.D");
        assert_eq!(EventKind::WorkflowAbort.code(), "WF.A");
        assert_eq!(EventKind::External(0x2a).code(), "X.2a");
    }

    #[test]
    fn step_extraction() {
        assert_eq!(EventKind::StepDone(StepId(1)).step(), Some(StepId(1)));
        assert_eq!(EventKind::WorkflowStart.step(), None);
    }

    #[test]
    fn presence_requires_valid_and_occurred() {
        assert!(!EventState::default().is_present());
        assert!(EventState::occurred(1).is_present());
        let mut s = EventState::occurred(2);
        s.valid = false;
        assert!(!s.is_present());
    }
}
