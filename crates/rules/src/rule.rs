//! ECA rules.
//!
//! "Requirements expressed in LAWS are converted into rules which are tuples
//! containing an event, condition and action part" (§1). A rule waits for a
//! conjunction of events, checks a guard condition over the instance's data
//! table, and when fired produces an [`Action`] that the hosting run-time
//! (central engine or distributed agent) interprets.

use crate::event::EventKind;
use crew_model::{Expr, StepId};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a rule within one rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u32);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// What a fired rule instructs the host to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Schedule the step for execution (generates `step.start`).
    StartStep(StepId),
    /// Compensate the step.
    CompensateStep(StepId),
    /// Commit the workflow instance.
    CommitWorkflow,
    /// Abort the workflow instance.
    AbortWorkflow,
    /// Post another event into this rule set (rule chaining).
    EmitEvent(EventKind),
    /// Deliver an external event to another party — the host translates
    /// this into an `AddEvent()` call on the agent/engine holding the
    /// target rule set. The payload is opaque to the rule engine.
    NotifyExternal {
        /// Host-interpreted routing token.
        route: u64,
        /// Event to inject at the destination.
        event: u64,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::StartStep(s) => write!(f, "start {s}"),
            Action::CompensateStep(s) => write!(f, "compensate {s}"),
            Action::CommitWorkflow => write!(f, "commit"),
            Action::AbortWorkflow => write!(f, "abort"),
            Action::EmitEvent(e) => write!(f, "emit {e}"),
            Action::NotifyExternal { route, event } => {
                write!(f, "notify {route:x} event {event:x}")
            }
        }
    }
}

/// One event-condition-action rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Stable identifier within its collection.
    pub id: RuleId,
    /// Conjunction of events required before the rule may fire. Extended at
    /// run time by `AddPrecondition()`.
    pub trigger: Vec<EventKind>,
    /// Guard evaluated against the instance's data table; the rule fires
    /// only if it holds. `None` = always true. Guard evaluation errors are
    /// treated as `false` (a branch condition over data that is not yet — or
    /// no longer — present must simply not be taken).
    pub guard: Option<Expr>,
    /// Action taken when the rule fires.
    pub action: Action,
    /// Diagnostic label ("fire S3", "relative-order monitor").
    pub label: String,
    /// For every trigger event: the generation consumed by the most recent
    /// firing. The rule can fire (again) only when each trigger event is
    /// present with a generation newer than this mark — which is what lets
    /// loop-body rules re-fire on each iteration without firing twice on
    /// one occurrence.
    pub(crate) fired_marks: BTreeMap<EventKind, u32>,
}

impl Rule {
    /// Create a new, empty value.
    pub fn new(id: RuleId, trigger: Vec<EventKind>, action: Action) -> Self {
        Rule {
            id,
            trigger,
            guard: None,
            action,
            label: String::new(),
            fired_marks: BTreeMap::new(),
        }
    }

    /// Attach a guard condition.
    pub fn with_guard(mut self, guard: Expr) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Attach a diagnostic label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Number of times this rule has fired.
    pub fn firings(&self) -> u32 {
        // Every firing marks all triggers; the minimum mark is the count of
        // complete firings for single-generation flows, but we track an
        // explicit counter-free definition: max mark works because marks
        // advance monotonically per firing.
        self.fired_marks.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(RuleId(3).to_string(), "R3");
        assert_eq!(Action::StartStep(StepId(2)).to_string(), "start S2");
        assert_eq!(Action::CommitWorkflow.to_string(), "commit");
        assert_eq!(
            Action::EmitEvent(EventKind::WorkflowDone).to_string(),
            "emit WF.D"
        );
    }

    #[test]
    fn builder_style() {
        let r = Rule::new(
            RuleId(1),
            vec![EventKind::WorkflowStart],
            Action::StartStep(StepId(1)),
        )
        .with_label("fire start step");
        assert_eq!(r.label, "fire start step");
        assert!(r.guard.is_none());
        assert_eq!(r.firings(), 0);
    }
}
