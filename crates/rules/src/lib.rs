//! # crew-rules
//!
//! The rule-based enactment core of CREW: events, event-condition-action
//! rules, per-instance rule sets with the dynamic primitives `AddRule()`,
//! `AddEvent()` and `AddPrecondition()` (paper §3, Figure 4), and the
//! compiler that turns a validated workflow schema into its navigation rule
//! template (§4.2).
//!
//! The rule engine is deliberately host-agnostic: it knows nothing about
//! agents, engines or messages. Hosts post events, call
//! [`RuleSet::fire_ready`] and interpret the returned [`Action`]s. The
//! centralized engine holds one complete `RuleSet` per instance; a
//! distributed agent holds, per instance, the slice of the template for the
//! steps it is responsible for.

#![warn(missing_docs)]

pub mod compile;
pub mod event;
pub mod rule;
pub mod ruleset;

pub use compile::{compile_schema, TemplateRule};
pub use event::{EventKind, EventState};
pub use rule::{Action, Rule, RuleId};
pub use ruleset::{Firing, RuleSet};
