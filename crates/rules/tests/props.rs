//! Property tests over the rule engine: firing discipline under arbitrary
//! event sequences, invalidation/reset laws, and packet-merge semantics.

use crew_model::{DataEnv, StepId};
use crew_rules::{Action, EventKind, Rule, RuleId, RuleSet};
use proptest::prelude::*;

fn ev(i: u8) -> EventKind {
    EventKind::StepDone(StepId(i as u32 % 5 + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A rule never fires more times than the minimum occurrence count of
    /// its trigger events (each firing consumes one occurrence of each).
    #[test]
    fn firings_bounded_by_occurrences(seq in proptest::collection::vec(0u8..10, 0..60)) {
        let mut rs = RuleSet::new();
        let trigger = vec![ev(0), ev(1)];
        rs.add_rule(Rule::new(RuleId(0), trigger.clone(), Action::StartStep(StepId(9))));
        let mut fired = 0u32;
        let mut counts = [0u32; 2];
        for e in seq {
            let kind = ev(e);
            rs.add_event(kind);
            for (i, t) in trigger.iter().enumerate() {
                if *t == kind {
                    counts[i] += 1;
                }
            }
            fired += rs.fire_ready(&DataEnv::new()).len() as u32;
        }
        prop_assert!(fired <= counts[0].min(counts[1]),
            "fired {fired}, occurrences {counts:?}");
    }

    /// merge_event is monotone and idempotent: replaying any prefix of
    /// merges leaves the table identical to the direct application.
    #[test]
    fn merge_event_idempotent(gens in proptest::collection::vec((0u8..4, 1u32..6), 0..30)) {
        let mut a = RuleSet::new();
        let mut b = RuleSet::new();
        for (e, g) in &gens {
            a.merge_event(ev(*e), *g);
            b.merge_event(ev(*e), *g);
            b.merge_event(ev(*e), *g); // replay
        }
        for e in 0u8..4 {
            prop_assert_eq!(a.event_state(ev(e)), b.event_state(ev(e)));
        }
    }

    /// Invalidate/revalidate round trip: after invalidation the event is
    /// absent; a merge at the same generation re-establishes it and lets
    /// dependent rules fire exactly once more.
    #[test]
    fn invalidate_then_merge_fires_once(gen in 1u32..5) {
        let mut rs = RuleSet::new();
        rs.add_rule(Rule::new(RuleId(0), vec![ev(0)], Action::StartStep(StepId(9))));
        for _ in 0..gen {
            rs.add_event(ev(0));
        }
        let first = rs.fire_ready(&DataEnv::new()).len();
        prop_assert_eq!(first, 1, "one firing per sweep regardless of pending gens");
        rs.invalidate_event(ev(0));
        prop_assert!(!rs.has_event(ev(0)));
        prop_assert!(rs.fire_ready(&DataEnv::new()).is_empty());
        // Re-establish at the same generation (a packet re-delivery).
        prop_assert!(rs.merge_event(ev(0), gen));
        prop_assert_eq!(rs.fire_ready(&DataEnv::new()).len(), 1);
        prop_assert!(rs.fire_ready(&DataEnv::new()).is_empty());
    }

    /// add_precondition never unblocks a rule: the satisfied set only
    /// shrinks.
    #[test]
    fn preconditions_only_restrict(extra in 0u8..4) {
        let mut rs = RuleSet::new();
        let id = rs.add_rule(Rule::new(RuleId(0), vec![ev(0)], Action::StartStep(StepId(9))));
        rs.add_event(ev(0));
        rs.add_precondition(id, EventKind::External(extra as u64 + 100));
        prop_assert!(rs.fire_ready(&DataEnv::new()).is_empty());
        rs.add_event(EventKind::External(extra as u64 + 100));
        prop_assert_eq!(rs.fire_ready(&DataEnv::new()).len(), 1);
    }
}
