//! # crew-lint
//!
//! A static verifier for workflow specifications. The paper's whole
//! failure-handling story assumes the schema's recovery declarations are
//! *coherent* — every rollback path has compensations to run (§3,
//! Figure 3) and the coordination requirements of §3 \[KR98\] (mutual
//! exclusion, relative order, rollback dependency) do not wedge
//! concurrent instances — but structural validation
//! (`SchemaBuilder::build`) only checks graph shape. An incoherent spec
//! today surfaces as a runtime `Stalled` after the simulation horizon
//! expires; this crate turns those wedges into compile-time diagnostics.
//!
//! Five passes run over a compiled spec (schemas + [`CoordinationSpec`] +
//! the `crew-rules` template):
//!
//! 1. **Compensation soundness** ([`passes::compensation`]) — steps a
//!    declared rollback can abandon or blindly redo must be compensatable
//!    (compensate program, compensation-set membership, or query kind),
//!    and rollback origins must cover the failing step's XOR branch.
//! 2. **Cross-workflow deadlock** ([`passes::coordination`]) — the static
//!    wait-for graph induced by mutex members and relative-order pairs
//!    against each schema's own topological order must be acyclic for
//!    every reachable leadership assignment.
//! 3. **Rule-template termination** ([`passes::template`]) — cycles in
//!    the compiled template's trigger graph must correspond to a declared
//!    `loop_back` arc, and loop-continue conditions must not fold to a
//!    constant `true`.
//! 4. **Data hazards** ([`passes::data`]) — XOR arc conditions must not
//!    be statically contradictory or tautological (constant folding over
//!    [`Expr`](crew_model::Expr)), reads must not cross XOR branches, and
//!    concurrent AND branches must not race the same update program
//!    without a serializing mutex.
//! 5. **Failure-policy soundness** ([`passes::policy`]) — retry, breaker
//!    and dead-letter annotations must be coherent: a retried
//!    non-idempotent update step needs compensation, retry inside a
//!    compensation dependent set needs a set-wide failure budget,
//!    unbounded retry needs a dead-letter route, a breaker on a mutex
//!    holder risks livelock, and cumulative backoff schedules must fit
//!    the run horizon without overflowing tick arithmetic.
//!
//! Diagnostics carry a [`LintId`], a severity, and (when the spec came
//! from LAWS source) a [`Span`] threaded through from the parser via a
//! [`SpanTable`]. `crew-laws` exposes `parse_and_compile_strict`, which
//! fails compilation on Error-level findings, and the `crew-lint` CLI
//! (in `crew-lint-cli`) lints `.laws` files and the built-in corpus.

#![warn(missing_docs)]

pub mod fold;
pub mod passes;

use crew_model::{CoordinationSpec, SchemaId, StepId, WorkflowSchema};
use std::collections::BTreeMap;
use std::fmt;

pub use passes::template::lint_template;

/// A source position (`line:col`) in the LAWS text a diagnostic points
/// at. Mirrors `crew_laws::token::Pos`; defined here so the analyzer does
/// not depend on the language crate (the language crate depends on the
/// analyzer for its strict mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Which coordination requirement kind a span or diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CoordKind {
    /// A `MutualExclusion` requirement.
    Mutex,
    /// A `RelativeOrder` requirement.
    Order,
    /// A `RollbackDependency` requirement.
    RollbackDep,
}

/// Source spans for compiled entities, recorded by the LAWS compiler and
/// consumed by [`lint_with_spans`] to place diagnostics in the source.
#[derive(Debug, Clone, Default)]
pub struct SpanTable {
    workflows: BTreeMap<SchemaId, Span>,
    steps: BTreeMap<(SchemaId, StepId), Span>,
    step_policies: BTreeMap<(SchemaId, StepId), Span>,
    coord: BTreeMap<(CoordKind, u32), Span>,
}

impl SpanTable {
    /// Record the declaration span of a workflow.
    pub fn record_workflow(&mut self, schema: SchemaId, span: Span) {
        self.workflows.insert(schema, span);
    }

    /// Record the declaration span of a step.
    pub fn record_step(&mut self, schema: SchemaId, step: StepId, span: Span) {
        self.steps.insert((schema, step), span);
    }

    /// Record the span of a step's `policy { ... }` block.
    pub fn record_step_policy(&mut self, schema: SchemaId, step: StepId, span: Span) {
        self.step_policies.insert((schema, step), span);
    }

    /// Record the span of a coordination requirement.
    pub fn record_coord(&mut self, kind: CoordKind, id: u32, span: Span) {
        self.coord.insert((kind, id), span);
    }

    /// The best span for a diagnostic: for policy findings the step's
    /// policy block, then its step, else its workflow, else its
    /// coordination requirement.
    pub fn resolve(&self, d: &Diagnostic) -> Option<Span> {
        if let (Some(schema), Some(step)) = (d.schema, d.step) {
            if d.id.is_policy() {
                if let Some(s) = self.step_policies.get(&(schema, step)) {
                    return Some(*s);
                }
            }
            if let Some(s) = self.steps.get(&(schema, step)) {
                return Some(*s);
            }
        }
        if let Some(c) = d.coord {
            if let Some(s) = self.coord.get(&c) {
                return Some(*s);
            }
        }
        d.schema.and_then(|w| self.workflows.get(&w).copied())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wedging: surfaced, never fatal.
    Warn,
    /// The spec can lose effects, stall, or deadlock at run time. Strict
    /// compilation and the CLI fail on these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identifiers for every check the analyzer performs, one per
/// distinct hazard. The kebab-case rendering (`Display`) is the code the
/// CLI prints and tests assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum LintId {
    // Pass 1: compensation soundness.
    /// An update step a rollback's branch switch can abandon has no
    /// compensate program and no compensation-set membership.
    RollbackStepNotCompensatable,
    /// An update step in a rollback region re-executes unconditionally
    /// (`Always`/`When`) with no way to undo its previous effects.
    RollbackBlindReexecution,
    /// The rollback origin sits inside the failing step's XOR branch, so
    /// a retry can never re-decide the branch choice (Figure 3).
    RollbackOriginInsideXorBranch,
    /// A compensation-set member is an update step without a compensate
    /// program, so the set's atomic undo is impossible.
    CompensationSetMemberNotCompensatable,

    // Pass 2: cross-workflow deadlock.
    /// A coordination requirement references a schema or step that does
    /// not exist in the spec.
    CoordUnknownStep,
    /// A step belongs to two or more mutexes: acquisition is concurrent
    /// with partial holds, so linked instances can deadlock on opposite
    /// grant orders.
    MutexHoldAndWait,
    /// A mutex lists the same schema step twice.
    MutexDuplicateMember,
    /// A relative order's pair sequence is inverted with respect to its
    /// own schema's topological order.
    RelativeOrderPairsInverted,
    /// A relative order mixes schemas within one side, or pairs a schema
    /// with itself.
    RelativeOrderSchemaMixed,
    /// The static wait-for graph has a cycle under a reachable leadership
    /// assignment: linked instances can wedge.
    CoordinationDeadlock,
    /// Rollback dependencies form a cycle between schemas: a rollback can
    /// ping-pong between linked instances.
    RollbackDependencyCycle,

    // Pass 3: rule-template termination.
    /// The compiled rule template has a trigger cycle that no declared
    /// `loop_back` arc accounts for: navigation can loop forever.
    RuleCycleWithoutLoopBack,
    /// A loop-continue condition folds to constant `true`: the loop never
    /// exits.
    LoopNeverExits,
    /// A loop-continue condition folds to constant `false`: the loop body
    /// never repeats and the arc is dead.
    LoopConditionNeverHolds,

    // Pass 4: data hazards.
    /// An XOR arc condition folds to constant `false`: the branch is
    /// unreachable.
    XorBranchUnreachable,
    /// An XOR arc condition folds to constant `true`: the choice is
    /// decided at design time and sibling branches are dead.
    XorBranchAlwaysTaken,
    /// Every XOR arc condition folds to constant `false` and there is no
    /// `otherwise` arc: the instance stalls at the split.
    XorNoViableBranch,
    /// A step reads an output produced on a different branch of the same
    /// XOR split: when its own branch runs, the producer never does, and
    /// the reader's rule waits forever.
    XorCrossBranchRead,
    /// Two update steps on concurrent AND branches run the same program
    /// with no serializing mutex: lost-update race on the shared
    /// resource.
    ConcurrentWriteConflict,

    // Pass 5: failure-policy soundness.
    /// A retried update step is neither idempotent nor compensatable:
    /// each retry can duplicate effects no rollback can undo.
    RetryNonIdempotentWithoutCompensation,
    /// A compensation-set member carries its own retry policy but the
    /// workflow declares no set-wide failure budget (`max_failures`): a
    /// member can retry indefinitely often while the set's atomic undo
    /// is pending.
    RetryInCompSetWithoutSetPolicy,
    /// An unbounded retry has no dead-letter route (step- or
    /// workflow-level): a deterministic failure retries forever and the
    /// instance never terminates.
    UnboundedRetryWithoutDeadLetter,
    /// A circuit breaker guards a step that holds a mutual-exclusion
    /// building block: while the breaker is open the mutex stays held and
    /// linked instances can livelock behind it.
    BreakerOnMutexStep,
    /// The retry policy's worst-case cumulative backoff exceeds the run
    /// horizon or wraps 64-bit tick arithmetic: the schedule can never
    /// complete within a bounded run.
    BackoffOverflowsHorizon,
    /// A dead-letter route is declared on a step without a retry policy:
    /// nothing ever routes to it.
    DeadLetterWithoutRetry,
}

impl LintId {
    /// The default severity of this check.
    pub fn severity(self) -> Severity {
        use LintId::*;
        match self {
            RollbackStepNotCompensatable
            | CompensationSetMemberNotCompensatable
            | CoordUnknownStep
            | MutexHoldAndWait
            | RelativeOrderPairsInverted
            | RelativeOrderSchemaMixed
            | CoordinationDeadlock
            | RuleCycleWithoutLoopBack
            | LoopNeverExits
            | XorNoViableBranch
            | XorCrossBranchRead
            | RetryNonIdempotentWithoutCompensation
            | RetryInCompSetWithoutSetPolicy
            | UnboundedRetryWithoutDeadLetter
            | BackoffOverflowsHorizon => Severity::Error,
            RollbackBlindReexecution
            | RollbackOriginInsideXorBranch
            | MutexDuplicateMember
            | RollbackDependencyCycle
            | LoopConditionNeverHolds
            | XorBranchUnreachable
            | XorBranchAlwaysTaken
            | ConcurrentWriteConflict
            | BreakerOnMutexStep
            | DeadLetterWithoutRetry => Severity::Warn,
        }
    }

    /// True for the failure-policy pass family: these diagnostics anchor
    /// to a step's `policy { ... }` block when the spec came from LAWS
    /// source.
    pub fn is_policy(self) -> bool {
        use LintId::*;
        matches!(
            self,
            RetryNonIdempotentWithoutCompensation
                | RetryInCompSetWithoutSetPolicy
                | UnboundedRetryWithoutDeadLetter
                | BreakerOnMutexStep
                | BackoffOverflowsHorizon
                | DeadLetterWithoutRetry
        )
    }

    /// The stable kebab-case code for this check.
    pub fn code(self) -> &'static str {
        use LintId::*;
        match self {
            RollbackStepNotCompensatable => "rollback-step-not-compensatable",
            RollbackBlindReexecution => "rollback-blind-reexecution",
            RollbackOriginInsideXorBranch => "rollback-origin-inside-xor-branch",
            CompensationSetMemberNotCompensatable => "compensation-set-member-not-compensatable",
            CoordUnknownStep => "coord-unknown-step",
            MutexHoldAndWait => "mutex-hold-and-wait",
            MutexDuplicateMember => "mutex-duplicate-member",
            RelativeOrderPairsInverted => "relative-order-pairs-inverted",
            RelativeOrderSchemaMixed => "relative-order-schema-mixed",
            CoordinationDeadlock => "coordination-deadlock",
            RollbackDependencyCycle => "rollback-dependency-cycle",
            RuleCycleWithoutLoopBack => "rule-cycle-without-loop-back",
            LoopNeverExits => "loop-never-exits",
            LoopConditionNeverHolds => "loop-condition-never-holds",
            XorBranchUnreachable => "xor-branch-unreachable",
            XorBranchAlwaysTaken => "xor-branch-always-taken",
            XorNoViableBranch => "xor-no-viable-branch",
            XorCrossBranchRead => "xor-cross-branch-read",
            ConcurrentWriteConflict => "concurrent-write-conflict",
            RetryNonIdempotentWithoutCompensation => "retry-non-idempotent-without-compensation",
            RetryInCompSetWithoutSetPolicy => "retry-in-comp-set-without-set-policy",
            UnboundedRetryWithoutDeadLetter => "unbounded-retry-without-dead-letter",
            BreakerOnMutexStep => "breaker-on-mutex-step",
            BackoffOverflowsHorizon => "backoff-overflows-horizon",
            DeadLetterWithoutRetry => "dead-letter-without-retry",
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: what ([`LintId`]), how bad ([`Severity`]), where (schema /
/// step / coordination requirement, plus a [`Span`] when the spec came
/// from LAWS source), and a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which check fired.
    pub id: LintId,
    /// Error or Warn (the check's default severity).
    pub severity: Severity,
    /// The schema the finding is about, when step-localized.
    pub schema: Option<SchemaId>,
    /// The step the finding anchors to.
    pub step: Option<StepId>,
    /// The coordination requirement the finding is about.
    pub coord: Option<(CoordKind, u32)>,
    /// LAWS source position, when a [`SpanTable`] was provided.
    pub span: Option<Span>,
    /// Human-readable description with names and ids spelled out.
    pub message: String,
}

impl Diagnostic {
    fn new(id: LintId, message: String) -> Self {
        Diagnostic {
            id,
            severity: id.severity(),
            schema: None,
            step: None,
            coord: None,
            span: None,
            message,
        }
    }

    fn at_step(mut self, schema: SchemaId, step: StepId) -> Self {
        self.schema = Some(schema);
        self.step = Some(step);
        self
    }

    fn at_coord(mut self, kind: CoordKind, id: u32) -> Self {
        self.coord = Some((kind, id));
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.id)?;
        if let Some(span) = self.span {
            write!(f, " at {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Run all five passes over `schemas` + `coordination`.
///
/// Diagnostics come back sorted errors-first, then by schema/step, so the
/// first entry is always the most severe finding.
pub fn lint(schemas: &[WorkflowSchema], coordination: &CoordinationSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for schema in schemas {
        passes::compensation::run(schema, &mut out);
        passes::template::run(schema, &mut out);
        passes::data::run(schema, coordination, &mut out);
        passes::policy::run(schema, coordination, &mut out);
    }
    passes::coordination::run(schemas, coordination, &mut out);
    sort(&mut out);
    out
}

/// [`lint`] plus span resolution through `spans` (typically the table the
/// LAWS compiler recorded).
pub fn lint_with_spans(
    schemas: &[WorkflowSchema],
    coordination: &CoordinationSpec,
    spans: &SpanTable,
) -> Vec<Diagnostic> {
    let mut out = lint(schemas, coordination);
    for d in &mut out {
        d.span = spans.resolve(d);
    }
    out
}

/// Lint a single schema with no coordination requirements.
pub fn lint_schema(schema: &WorkflowSchema) -> Vec<Diagnostic> {
    lint(std::slice::from_ref(schema), &CoordinationSpec::default())
}

/// The diagnostics of Error severity.
pub fn errors(diags: &[Diagnostic]) -> impl Iterator<Item = &Diagnostic> {
    diags.iter().filter(|d| d.severity == Severity::Error)
}

/// True when no Error-level diagnostic is present (Warns allowed).
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    errors(diags).next().is_none()
}

/// Render a report, one diagnostic per line.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&d.to_string());
        s.push('\n');
    }
    s
}

fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.schema.cmp(&b.schema))
            .then_with(|| a.step.cmp(&b.step))
            .then_with(|| a.id.cmp(&b.id))
    });
}
