//! Pass 4: data hazards decidable without running anything.
//!
//! Three families of checks:
//!
//! - **Statically decided XOR conditions.** Arc conditions that fold to a
//!   constant (see [`crate::fold`]) make a branch dead (`false`), make the
//!   choice a design-time constant (`true`), or — when *every* conditioned
//!   arc of a split folds false and no `otherwise` arc exists — leave the
//!   instance with no rule able to fire at the split.
//! - **Cross-branch reads over an XOR split.** Only one branch of an XOR
//!   executes; a step reading a sibling branch's output waits on an event
//!   that will never be posted.
//! - **Concurrent same-program updates.** Two update steps on parallel
//!   AND branches running the *same program* race the external resource
//!   that program encapsulates (steps are black boxes, so the program name
//!   is the only identity the WFMS has for the resource). A mutual
//!   exclusion covering both steps serializes them; absent one, the lost
//!   update is reported. This mirrors the paper's motivation for mutual
//!   exclusion in §3.

use crate::fold::fold_bool;
use crate::{Diagnostic, LintId};
use crew_model::{
    CoordinationSpec, ItemScope, SchemaStep, SplitKind, StepId, StepKind, WorkflowSchema,
};
use std::collections::BTreeSet;

/// Run the pass over one schema (the coordination spec is consulted for
/// serializing mutexes).
pub fn run(schema: &WorkflowSchema, spec: &CoordinationSpec, out: &mut Vec<Diagnostic>) {
    for def in schema.steps() {
        match schema.split_kind(def.id) {
            Some(SplitKind::Xor) => {
                check_xor_conditions(schema, def.id, out);
                check_cross_branch_reads(schema, def.id, out);
            }
            Some(SplitKind::And) => check_concurrent_writes(schema, def.id, spec, out),
            _ => {}
        }
    }
}

fn check_xor_conditions(schema: &WorkflowSchema, split: StepId, out: &mut Vec<Diagnostic>) {
    let arcs: Vec<_> = schema.forward_outgoing(split).collect();
    let folded: Vec<Option<bool>> = arcs
        .iter()
        .map(|a| a.condition.as_ref().and_then(fold_bool))
        .collect();

    // Every arc carries a condition and all fold false: no branch rule can
    // ever fire, the instance wedges at the split.
    if arcs.iter().all(|a| a.condition.is_some()) && folded.iter().all(|f| *f == Some(false)) {
        out.push(
            Diagnostic::new(
                LintId::XorNoViableBranch,
                format!(
                    "every branch condition of XOR split `{}` ({split}) in workflow \
                     `{}` is statically false: no branch can be taken and the \
                     instance stalls at the split",
                    schema.expect_step(split).name,
                    schema.name
                ),
            )
            .at_step(schema.id, split),
        );
        return;
    }

    for (arc, folded) in arcs.iter().zip(&folded) {
        let head = schema.expect_step(arc.to);
        match folded {
            Some(false) => out.push(
                Diagnostic::new(
                    LintId::XorBranchUnreachable,
                    format!(
                        "branch `{}` ({}) of XOR split `{}` ({split}) in workflow \
                         `{}` has a statically false condition: the branch is dead",
                        head.name,
                        arc.to,
                        schema.expect_step(split).name,
                        schema.name
                    ),
                )
                .at_step(schema.id, arc.to),
            ),
            Some(true) => out.push(
                Diagnostic::new(
                    LintId::XorBranchAlwaysTaken,
                    format!(
                        "branch `{}` ({}) of XOR split `{}` ({split}) in workflow \
                         `{}` has a statically true condition: the choice is made \
                         at design time and sibling branches are dead",
                        head.name,
                        arc.to,
                        schema.expect_step(split).name,
                        schema.name
                    ),
                )
                .at_step(schema.id, arc.to),
            ),
            None => {}
        }
    }
}

fn check_cross_branch_reads(schema: &WorkflowSchema, split: StepId, out: &mut Vec<Diagnostic>) {
    let branches: Vec<BTreeSet<StepId>> = schema
        .forward_outgoing(split)
        .map(|a| schema.branch_steps(split, a.to))
        .collect();

    for (i, branch) in branches.iter().enumerate() {
        for &s in branch {
            let def = schema.expect_step(s);
            for key in def.input_keys() {
                let ItemScope::StepOutput(p) = key.scope else {
                    continue;
                };
                let crossed = branches
                    .iter()
                    .enumerate()
                    .any(|(j, other)| j != i && other.contains(&p) && !branch.contains(&p));
                if crossed {
                    out.push(
                        Diagnostic::new(
                            LintId::XorCrossBranchRead,
                            format!(
                                "step `{}` ({s}) in workflow `{}` reads {key} from a \
                                 different branch of XOR split `{}` ({split}): when \
                                 `{}`'s branch runs, the producer never does",
                                def.name,
                                schema.name,
                                schema.expect_step(split).name,
                                def.name
                            ),
                        )
                        .at_step(schema.id, s),
                    );
                }
            }
        }
    }
}

fn check_concurrent_writes(
    schema: &WorkflowSchema,
    split: StepId,
    spec: &CoordinationSpec,
    out: &mut Vec<Diagnostic>,
) {
    let branches: Vec<BTreeSet<StepId>> = schema
        .forward_outgoing(split)
        .map(|a| schema.branch_steps(split, a.to))
        .collect();

    let serialized = |a: StepId, b: StepId| {
        spec.mutual_exclusions.iter().any(|m| {
            m.members.contains(&SchemaStep::new(schema.id, a))
                && m.members.contains(&SchemaStep::new(schema.id, b))
        })
    };

    for i in 0..branches.len() {
        for j in (i + 1)..branches.len() {
            for &s in &branches[i] {
                // A step on both branches is past the confluence of a
                // nested shape, not concurrent with itself.
                if branches[j].contains(&s) {
                    continue;
                }
                for &t in &branches[j] {
                    if branches[i].contains(&t) || s >= t {
                        continue;
                    }
                    let (ds, dt) = (schema.expect_step(s), schema.expect_step(t));
                    if ds.kind != StepKind::Update
                        || dt.kind != StepKind::Update
                        || ds.program != dt.program
                        || serialized(s, t)
                    {
                        continue;
                    }
                    out.push(
                        Diagnostic::new(
                            LintId::ConcurrentWriteConflict,
                            format!(
                                "update steps `{}` ({s}) and `{}` ({t}) run program \
                                 `{}` on concurrent branches of AND split `{}` \
                                 ({split}) in workflow `{}` with no serializing \
                                 mutual exclusion: lost-update race",
                                ds.name,
                                dt.name,
                                ds.program,
                                schema.expect_step(split).name,
                                schema.name
                            ),
                        )
                        .at_step(schema.id, s),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use crew_model::{CmpOp, Expr, ItemKey, MutualExclusion, SchemaBuilder, SchemaId};

    fn ids(out: &[Diagnostic]) -> Vec<LintId> {
        out.iter().map(|d| d.id).collect()
    }

    fn run_pass(schema: &WorkflowSchema, spec: &CoordinationSpec) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        run(schema, spec, &mut out);
        out
    }

    fn xor_diamond(cond_l: Expr) -> (SchemaBuilder, StepId, StepId, StepId, StepId) {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let l = b.add_step("L", "p");
        let r = b.add_step("R", "p");
        let j = b.add_step("J", "p");
        b.xor_split(a, [(l, Some(cond_l)), (r, None)]);
        b.xor_join([l, r], j);
        (b, a, l, r, j)
    }

    #[test]
    fn data_dependent_xor_is_clean() {
        let cond = Expr::cmp(CmpOp::Gt, Expr::item(ItemKey::input(1)), Expr::lit(10));
        let (b, ..) = xor_diamond(cond);
        let schema = b.build().unwrap();
        assert!(run_pass(&schema, &CoordinationSpec::default()).is_empty());
    }

    #[test]
    fn statically_false_branch_is_unreachable() {
        let cond = Expr::cmp(CmpOp::Gt, Expr::lit(1), Expr::lit(2));
        let (b, ..) = xor_diamond(cond);
        let schema = b.build().unwrap();
        let out = run_pass(&schema, &CoordinationSpec::default());
        assert_eq!(ids(&out), vec![LintId::XorBranchUnreachable]);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn statically_true_branch_is_always_taken() {
        let cond = Expr::cmp(CmpOp::Lt, Expr::lit(1), Expr::lit(2));
        let (b, ..) = xor_diamond(cond);
        let schema = b.build().unwrap();
        let out = run_pass(&schema, &CoordinationSpec::default());
        assert_eq!(ids(&out), vec![LintId::XorBranchAlwaysTaken]);
    }

    #[test]
    fn all_false_conditions_leave_no_viable_branch() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let l = b.add_step("L", "p");
        let r = b.add_step("R", "p");
        let j = b.add_step("J", "p");
        let f1 = Expr::cmp(CmpOp::Gt, Expr::lit(1), Expr::lit(2));
        let f2 = Expr::cmp(CmpOp::Gt, Expr::lit(3), Expr::lit(4));
        b.xor_split(a, [(l, Some(f1)), (r, Some(f2))]);
        b.xor_join([l, r], j);
        let schema = b.build().unwrap();
        let out = run_pass(&schema, &CoordinationSpec::default());
        assert_eq!(ids(&out), vec![LintId::XorNoViableBranch]);
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn cross_branch_read_is_an_error() {
        let cond = Expr::cmp(CmpOp::Gt, Expr::item(ItemKey::input(1)), Expr::lit(10));
        let (mut b, _a, l, r, _j) = xor_diamond(cond);
        b.read(r, ItemKey::output(l, 1));
        let schema = b.build().unwrap();
        let out = run_pass(&schema, &CoordinationSpec::default());
        assert_eq!(ids(&out), vec![LintId::XorCrossBranchRead]);
        assert_eq!(out[0].severity, Severity::Error);
    }

    /// Reading an output produced *before* the split is fine.
    #[test]
    fn upstream_read_is_clean() {
        let cond = Expr::cmp(CmpOp::Gt, Expr::item(ItemKey::input(1)), Expr::lit(10));
        let (mut b, a, l, _r, _j) = xor_diamond(cond);
        b.read(l, ItemKey::output(a, 1));
        let schema = b.build().unwrap();
        assert!(run_pass(&schema, &CoordinationSpec::default()).is_empty());
    }

    fn and_diamond(left_prog: &str, right_prog: &str) -> WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let l = b.add_step("L", left_prog);
        let r = b.add_step("R", right_prog);
        let j = b.add_step("J", "p");
        b.and_split(a, [l, r]);
        b.and_join([l, r], j);
        b.build().unwrap()
    }

    #[test]
    fn same_program_and_branches_warn() {
        let out = run_pass(&and_diamond("stamp", "stamp"), &CoordinationSpec::default());
        assert_eq!(ids(&out), vec![LintId::ConcurrentWriteConflict]);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    #[test]
    fn different_programs_are_clean() {
        let out = run_pass(&and_diamond("stamp", "other"), &CoordinationSpec::default());
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn serializing_mutex_silences_the_conflict() {
        let schema = and_diamond("stamp", "stamp");
        let spec = CoordinationSpec {
            mutual_exclusions: vec![MutualExclusion {
                id: 0,
                resource: "stamp".into(),
                members: vec![
                    SchemaStep::new(schema.id, StepId(2)),
                    SchemaStep::new(schema.id, StepId(3)),
                ],
            }],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&schema, &spec);
        assert!(out.is_empty(), "{out:?}");
    }
}
