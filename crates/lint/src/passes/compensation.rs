//! Pass 1: compensation soundness of declared rollbacks (§3, Figure 3).
//!
//! A rollback to `origin` invalidates every step downstream of it. The
//! steps that may already have *executed* when `failing` fails — everything
//! in the region except `failing` itself and its strict descendants — are
//! revisited on retry. Three things can then happen to a region step:
//!
//! - it re-executes (OCR decides per its reexec policy), superseding its
//!   previous effects;
//! - it is *abandoned*: it sat on an XOR branch and the retry decides the
//!   split differently, so `CompensateThread` undoes the branch without
//!   re-running it (Figure 3);
//! - it is compensated then re-executed (policy `Always`/`When`).
//!
//! Abandonment and compensate-then-reexec both need a real undo. An update
//! step with no compensate program is "compensated" by the engines as a
//! silent no-op — its external effects survive, which is exactly the
//! incoherence this pass reports.

use crate::{Diagnostic, LintId};
use crew_model::{ReexecPolicy, SplitKind, StepDef, StepId, StepKind, WorkflowSchema};
use std::collections::BTreeSet;

/// Run the pass over one schema.
pub fn run(schema: &WorkflowSchema, out: &mut Vec<Diagnostic>) {
    for spec in &schema.rollback_specs {
        check_rollback(schema, spec.failing_step, spec.origin, out);
    }
    for set in &schema.compensation_sets {
        for &member in &set.members {
            let def = schema.expect_step(member);
            if def.kind == StepKind::Update && !def.is_compensatable() {
                out.push(
                    Diagnostic::new(
                        LintId::CompensationSetMemberNotCompensatable,
                        format!(
                            "compensation set {} of workflow `{}` contains update step \
                             `{}` ({member}) with no compensate program: the set's \
                             atomic undo chain breaks at it",
                            set.id, schema.name, def.name
                        ),
                    )
                    .at_step(schema.id, member),
                );
            }
        }
    }
}

fn check_rollback(
    schema: &WorkflowSchema,
    failing: StepId,
    origin: StepId,
    out: &mut Vec<Diagnostic>,
) {
    // Steps that may have executed when `failing` fails and are invalidated
    // by restarting from `origin`: the origin, plus its descendants minus
    // the failing step and everything strictly after it.
    let mut region: BTreeSet<StepId> = schema.invalidation_set(origin);
    region.insert(origin);
    region.remove(&failing);
    for s in schema.descendants(failing) {
        region.remove(&s);
    }

    // XOR splits the retry walks again re-decide their branch; previously
    // executed steps on the branch *not* retaken are compensated without
    // re-execution (`CompensateThread`), so they need a real undo.
    let mut switchable: BTreeSet<StepId> = BTreeSet::new();
    for def in schema.steps() {
        let split = def.id;
        if schema.split_kind(split) != Some(SplitKind::Xor) {
            continue;
        }
        if split != origin && !region.contains(&split) {
            continue;
        }
        for arc in schema.forward_outgoing(split) {
            for s in schema.branch_steps(split, arc.to) {
                if region.contains(&s) {
                    switchable.insert(s);
                }
            }
        }
    }

    for &s in &region {
        let def = schema.expect_step(s);
        if def.kind != StepKind::Update || covered(schema, def) {
            continue;
        }
        if switchable.contains(&s) {
            out.push(
                Diagnostic::new(
                    LintId::RollbackStepNotCompensatable,
                    format!(
                        "rollback of `{}` ({failing}) to `{}` ({origin}) in workflow \
                         `{}` can abandon XOR-branch update step `{}` ({s}), which has \
                         no compensate program and is in no compensation set: its \
                         effects survive the branch switch",
                        schema.expect_step(failing).name,
                        schema.expect_step(origin).name,
                        schema.name,
                        def.name
                    ),
                )
                .at_step(schema.id, s),
            );
        } else if matches!(def.reexec, ReexecPolicy::Always | ReexecPolicy::When(_)) {
            out.push(
                Diagnostic::new(
                    LintId::RollbackBlindReexecution,
                    format!(
                        "rollback of `{}` ({failing}) to `{}` ({origin}) in workflow \
                         `{}` re-executes update step `{}` ({s}) under its `{}` \
                         policy with no compensate program: previous effects are \
                         applied twice",
                        schema.expect_step(failing).name,
                        schema.expect_step(origin).name,
                        schema.name,
                        def.name,
                        match def.reexec {
                            ReexecPolicy::Always => "reexecute always",
                            _ => "conditional reexecute",
                        }
                    ),
                )
                .at_step(schema.id, s),
            );
        }
    }

    // The origin must cover the failing step's XOR branch: if both sit
    // inside the same branch, the retry can never re-decide the choice
    // that put the instance there (Figure 3's branch switch is the whole
    // point of rolling back past the split).
    for def in schema.steps() {
        let split = def.id;
        if schema.split_kind(split) != Some(SplitKind::Xor) || !schema.is_ancestor(split, failing) {
            continue;
        }
        for arc in schema.forward_outgoing(split) {
            let branch = schema.branch_steps(split, arc.to);
            if branch.contains(&failing) && branch.contains(&origin) {
                out.push(
                    Diagnostic::new(
                        LintId::RollbackOriginInsideXorBranch,
                        format!(
                            "rollback origin `{}` ({origin}) for failure at `{}` \
                             ({failing}) in workflow `{}` sits inside the same XOR \
                             branch (split at `{}` ({split})): a retry can never \
                             re-decide the branch choice",
                            schema.expect_step(origin).name,
                            schema.expect_step(failing).name,
                            schema.name,
                            schema.expect_step(split).name
                        ),
                    )
                    .at_step(schema.id, origin),
                );
            }
        }
    }
}

/// A step needs no undo when it is read-only, has a compensate program, or
/// participates in a compensation set (whose members pass 1 checks
/// separately).
fn covered(schema: &WorkflowSchema, def: &StepDef) -> bool {
    def.kind == StepKind::Query
        || def.is_compensatable()
        || schema.compensation_set_of(def.id).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use crew_model::{CmpOp, Expr, ItemKey, SchemaBuilder, SchemaId};

    fn ids(out: &[Diagnostic]) -> Vec<LintId> {
        out.iter().map(|d| d.id).collect()
    }

    /// XOR diamond inside a rollback region with a non-compensatable
    /// update branch step: branch switch loses its effects.
    #[test]
    fn abandoned_branch_step_without_compensation_is_an_error() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let l = b.add_step("L", "p");
        let r = b.add_step("R", "p");
        let j = b.add_step("J", "p");
        let z = b.add_step("Z", "p");
        let cond = Expr::cmp(CmpOp::Gt, Expr::item(ItemKey::input(1)), Expr::lit(0));
        b.xor_split(a, [(l, Some(cond)), (r, None)]);
        b.xor_join([l, r], j);
        b.seq(j, z);
        b.on_failure_rollback_to(z, a);
        let schema = b.build().unwrap();

        let mut out = Vec::new();
        run(&schema, &mut out);
        assert!(
            ids(&out).contains(&LintId::RollbackStepNotCompensatable),
            "{out:?}"
        );
        assert!(
            out.iter()
                .all(|d| d.id != LintId::RollbackStepNotCompensatable
                    || d.severity == Severity::Error)
        );
    }

    /// Same shape, but the branch steps can undo themselves: clean.
    #[test]
    fn compensatable_branch_steps_are_clean() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let l = b.add_step("L", "p");
        let r = b.add_step("R", "p");
        let j = b.add_step("J", "p");
        let z = b.add_step("Z", "p");
        let cond = Expr::cmp(CmpOp::Gt, Expr::item(ItemKey::input(1)), Expr::lit(0));
        b.xor_split(a, [(l, Some(cond)), (r, None)]);
        b.xor_join([l, r], j);
        b.seq(j, z);
        b.on_failure_rollback_to(z, a);
        for s in [l, r] {
            b.configure(s, |d| d.compensation_program = Some("undo".into()));
        }
        let schema = b.build().unwrap();

        let mut out = Vec::new();
        run(&schema, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    /// A query step on the branch needs no compensation.
    #[test]
    fn query_branch_steps_are_exempt() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let l = b.add_step("L", "p");
        let r = b.add_step("R", "p");
        let j = b.add_step("J", "p");
        let z = b.add_step("Z", "p");
        let cond = Expr::cmp(CmpOp::Gt, Expr::item(ItemKey::input(1)), Expr::lit(0));
        b.xor_split(a, [(l, Some(cond)), (r, None)]);
        b.xor_join([l, r], j);
        b.seq(j, z);
        b.on_failure_rollback_to(z, a);
        for s in [l, r] {
            b.configure(s, |d| d.kind = StepKind::Query);
        }
        let schema = b.build().unwrap();

        let mut out = Vec::new();
        run(&schema, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    /// Always-reexecute steps with no undo get flagged as blind.
    #[test]
    fn blind_reexecution_warns() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let c = b.add_step("B", "p");
        b.seq(a, c);
        b.on_failure_rollback_to(c, a);
        b.configure(a, |d| d.reexec = ReexecPolicy::Always);
        let schema = b.build().unwrap();

        let mut out = Vec::new();
        run(&schema, &mut out);
        assert_eq!(ids(&out), vec![LintId::RollbackBlindReexecution]);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    /// Origin and failing step inside the same XOR branch: the retry
    /// cannot re-decide the split.
    #[test]
    fn origin_inside_xor_branch_warns() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let l1 = b.add_step("L1", "p");
        let l2 = b.add_step("L2", "p");
        let r = b.add_step("R", "p");
        let j = b.add_step("J", "p");
        let cond = Expr::cmp(CmpOp::Gt, Expr::item(ItemKey::input(1)), Expr::lit(0));
        b.xor_split(a, [(l1, Some(cond)), (r, None)]);
        b.seq(l1, l2);
        b.xor_join([l2, r], j);
        b.on_failure_rollback_to(l2, l1);
        let schema = b.build().unwrap();

        let mut out = Vec::new();
        run(&schema, &mut out);
        assert!(
            ids(&out).contains(&LintId::RollbackOriginInsideXorBranch),
            "{out:?}"
        );
    }

    /// Compensation-set member without a program breaks the undo chain.
    #[test]
    fn comp_set_member_without_program_is_an_error() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let c = b.add_step("B", "p");
        b.seq(a, c);
        b.configure(a, |d| d.compensation_program = Some("undo".into()));
        b.compensation_set([a, c]);
        let schema = b.build().unwrap();

        let mut out = Vec::new();
        run(&schema, &mut out);
        assert_eq!(
            ids(&out),
            vec![LintId::CompensationSetMemberNotCompensatable]
        );
    }
}
