//! Pass 3: termination of the compiled rule template (§4).
//!
//! The ECA template drives an instance by chaining rules: a fired rule's
//! action produces events (`StartStep(s)` eventually posts `StepDone(s)`,
//! `EmitEvent(e)` posts `e` directly) that trigger further rules. That
//! chain must terminate — the only sanctioned repetition is a schema
//! `loop_back` arc, whose rule the engines re-fire per iteration under its
//! continue condition.
//!
//! The pass builds the trigger graph over the template and reports any
//! cycle none of whose edges is carried by a declared `loop_back` arc: such
//! a cycle re-fires rules forever (or deadlocks the generation marks) with
//! no loop condition ever able to stop it. Declared loops are then checked
//! for statically decided conditions: a continue condition that folds to
//! `true` never lets the loop exit, one that folds to `false` makes the
//! back-edge dead weight.

use super::find_cycle;
use crate::fold::fold_bool;
use crate::{Diagnostic, LintId};
use crew_model::WorkflowSchema;
use crew_rules::{compile_schema, Action, EventKind, TemplateRule};
use std::collections::BTreeSet;

/// Run the pass over one schema: compile its template and lint it, then
/// check the declared loop conditions themselves.
pub fn run(schema: &WorkflowSchema, out: &mut Vec<Diagnostic>) {
    for def in schema.steps() {
        for arc in schema.incoming(def.id).filter(|a| a.loop_back) {
            let tail = schema.expect_step(arc.from);
            let head = schema.expect_step(arc.to);
            match arc.condition.as_ref() {
                None => out.push(
                    Diagnostic::new(
                        LintId::LoopNeverExits,
                        format!(
                            "loop back-edge `{}` -> `{}` in workflow `{}` has no \
                             continue condition: the loop re-fires unconditionally \
                             and never exits",
                            tail.name, head.name, schema.name
                        ),
                    )
                    .at_step(schema.id, arc.to),
                ),
                Some(c) => match fold_bool(c) {
                    Some(true) => out.push(
                        Diagnostic::new(
                            LintId::LoopNeverExits,
                            format!(
                                "loop back-edge `{}` -> `{}` in workflow `{}` has a \
                                 continue condition that is statically true: the \
                                 loop never exits",
                                tail.name, head.name, schema.name
                            ),
                        )
                        .at_step(schema.id, arc.to),
                    ),
                    Some(false) => out.push(
                        Diagnostic::new(
                            LintId::LoopConditionNeverHolds,
                            format!(
                                "loop back-edge `{}` -> `{}` in workflow `{}` has a \
                                 continue condition that is statically false: the \
                                 loop body never repeats",
                                tail.name, head.name, schema.name
                            ),
                        )
                        .at_step(schema.id, arc.to),
                    ),
                    None => {}
                },
            }
        }
    }

    let template = compile_schema(schema);
    out.extend(lint_template(schema, &template));
}

/// Lint an explicit rule template against its schema. Exposed so callers
/// can check hand-built or runtime-amended rule sets (the coordination
/// machinery adds rules via `AddRule()`), not just the stock compilation.
pub fn lint_template(schema: &WorkflowSchema, rules: &[TemplateRule]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Loop-sanctioned trigger links: StepDone(tail) firing a rule that
    // starts `head` where the schema declares `tail -> head` as loop_back.
    let declared: BTreeSet<(crew_model::StepId, crew_model::StepId)> = schema
        .steps()
        .flat_map(|d| schema.incoming(d.id).filter(|a| a.loop_back))
        .map(|a| (a.from, a.to))
        .collect();

    // The event a rule's action eventually produces, if any.
    let produces = |r: &TemplateRule| -> Option<EventKind> {
        match &r.rule.action {
            Action::StartStep(s) => Some(EventKind::StepDone(*s)),
            Action::EmitEvent(e) => Some(*e),
            _ => None,
        }
    };

    // Trigger graph over rule indices, minus loop-declared edges: any cycle
    // that survives has no sanctioned back-edge.
    let n = rules.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ri) in rules.iter().enumerate() {
        let Some(ev) = produces(ri) else { continue };
        for (j, rj) in rules.iter().enumerate() {
            if !rj.rule.trigger.contains(&ev) {
                continue;
            }
            if let EventKind::StepDone(tail) = ev {
                if declared.contains(&(tail, rj.step)) {
                    continue;
                }
            }
            edges[i].push(j);
        }
    }
    let nodes: BTreeSet<usize> = (0..n).collect();
    if let Some(cycle) = find_cycle(&nodes, |i| edges[*i].clone()) {
        let path: Vec<String> = cycle
            .iter()
            .map(|&i| {
                let r = &rules[i];
                format!("{} ({})", r.rule.id, r.rule.action)
            })
            .collect();
        out.push(
            Diagnostic::new(
                LintId::RuleCycleWithoutLoopBack,
                format!(
                    "rule template of workflow `{}` chains in a cycle with no \
                     declared loop back-edge: {} — the rule set re-fires forever",
                    schema.name,
                    path.join(" -> ")
                ),
            )
            .at_step(schema.id, rules[cycle[0]].step),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use crew_model::{CmpOp, Expr, ItemKey, SchemaBuilder, SchemaId};
    use crew_rules::{Rule, RuleId};

    fn ids(out: &[Diagnostic]) -> Vec<LintId> {
        out.iter().map(|d| d.id).collect()
    }

    #[test]
    fn linear_schema_is_clean() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let c = b.add_step("B", "p");
        b.seq(a, c);
        let schema = b.build().unwrap();
        let mut out = Vec::new();
        run(&schema, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn data_dependent_loop_is_clean() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let c = b.add_step("B", "p");
        b.seq(a, c);
        let cont = Expr::cmp(
            CmpOp::Eq,
            Expr::item(ItemKey::output(a, 1)),
            Expr::lit(false),
        );
        b.loop_back(a, a, cont);
        let schema = b.build().unwrap();
        let mut out = Vec::new();
        run(&schema, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn statically_true_loop_condition_never_exits() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let c = b.add_step("B", "p");
        b.seq(a, c);
        b.loop_back(a, a, Expr::lit(true));
        let schema = b.build().unwrap();
        let mut out = Vec::new();
        run(&schema, &mut out);
        assert_eq!(ids(&out), vec![LintId::LoopNeverExits]);
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn statically_false_loop_condition_warns() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let c = b.add_step("B", "p");
        b.seq(a, c);
        b.loop_back(a, a, Expr::cmp(CmpOp::Gt, Expr::lit(1), Expr::lit(2)));
        let schema = b.build().unwrap();
        let mut out = Vec::new();
        run(&schema, &mut out);
        assert_eq!(ids(&out), vec![LintId::LoopConditionNeverHolds]);
        assert_eq!(out[0].severity, Severity::Warn);
    }

    /// Hand-built rules that chain through emitted events in a ring — the
    /// shape `AddRule()` amendments can produce, which no schema loop
    /// sanctions.
    #[test]
    fn synthetic_emit_cycle_is_an_error() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let schema = b.build().unwrap();
        let rules = vec![
            TemplateRule {
                step: a,
                rule: Rule::new(
                    RuleId(0),
                    vec![EventKind::External(1)],
                    Action::EmitEvent(EventKind::External(2)),
                ),
            },
            TemplateRule {
                step: a,
                rule: Rule::new(
                    RuleId(1),
                    vec![EventKind::External(2)],
                    Action::EmitEvent(EventKind::External(1)),
                ),
            },
        ];
        let out = lint_template(&schema, &rules);
        assert_eq!(ids(&out), vec![LintId::RuleCycleWithoutLoopBack]);
    }

    /// A rule re-starting an ancestor step without a matching loop_back arc
    /// cycles the template.
    #[test]
    fn undeclared_restart_cycle_is_an_error() {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf").inputs(1);
        let a = b.add_step("A", "p");
        let c = b.add_step("B", "p");
        b.seq(a, c);
        let schema = b.build().unwrap();
        let mut rules = compile_schema(&schema);
        rules.push(TemplateRule {
            step: a,
            rule: Rule::new(
                RuleId(99),
                vec![EventKind::StepDone(c)],
                Action::StartStep(a),
            ),
        });
        let out = lint_template(&schema, &rules);
        assert_eq!(ids(&out), vec![LintId::RuleCycleWithoutLoopBack]);
    }
}
