//! Pass 2: cross-workflow deadlock over the coordination spec (§3 [KR98]).
//!
//! Coordination requirements make steps of linked concurrent instances
//! wait for each other: a mutex member waits for the current holder, the
//! lagging side of a relative order waits for the leader's matching pair
//! step. Those waits compose with each schema's own control order into a
//! static *may-wait-for* graph; a cycle means a reachable interleaving
//! wedges both instances until the simulation horizon expires
//! (`Stalled`).
//!
//! Relative-order leadership is decided dynamically (whichever instance
//! reaches the first conflicting step leads), so the pass enumerates
//! leadership assignments — every assignment is reachable under some
//! message timing — and reports the first cyclic one. Mutexes are
//! step-scoped (released when the member completes), so a *single* mutex
//! never deadlocks; but a step belonging to two mutexes acquires them
//! concurrently and holds partial grants while waiting, which is
//! hold-and-wait: two such steps (or two linked instances of one) can be
//! granted the locks in opposite orders and wedge.

use super::find_cycle;
use crate::{CoordKind, Diagnostic, LintId};
use crew_model::{CoordinationSpec, SchemaId, SchemaStep, WorkflowSchema};
use std::collections::{BTreeMap, BTreeSet};

/// Beyond this many relative orders, assignment enumeration (2^n) is
/// skipped; each requirement is still checked individually.
const MAX_ENUMERATED_ORDERS: usize = 10;

/// Run the pass over the full spec.
pub fn run(schemas: &[WorkflowSchema], spec: &CoordinationSpec, out: &mut Vec<Diagnostic>) {
    let by_id: BTreeMap<SchemaId, &WorkflowSchema> = schemas.iter().map(|s| (s.id, s)).collect();

    let known = |ss: &SchemaStep, kind: CoordKind, id: u32, out: &mut Vec<Diagnostic>| -> bool {
        let ok = by_id
            .get(&ss.schema)
            .is_some_and(|s| s.step(ss.step).is_some());
        if !ok {
            out.push(
                Diagnostic::new(
                    LintId::CoordUnknownStep,
                    format!(
                        "coordination requirement {id} references {}/{} which does \
                         not exist in the spec",
                        ss.schema, ss.step
                    ),
                )
                .at_coord(kind, id),
            );
        }
        ok
    };

    // --- Mutexes: duplicates and hold-and-wait. -------------------------
    let mut mutexes_of: BTreeMap<SchemaStep, Vec<u32>> = BTreeMap::new();
    for m in &spec.mutual_exclusions {
        let mut seen: BTreeSet<SchemaStep> = BTreeSet::new();
        for member in &m.members {
            if !known(member, CoordKind::Mutex, m.id, out) {
                continue;
            }
            if !seen.insert(*member) {
                out.push(
                    Diagnostic::new(
                        LintId::MutexDuplicateMember,
                        format!(
                            "mutex {} (`{}`) lists {}/{} more than once",
                            m.id, m.resource, member.schema, member.step
                        ),
                    )
                    .at_coord(CoordKind::Mutex, m.id)
                    .at_step(member.schema, member.step),
                );
                continue;
            }
            mutexes_of.entry(*member).or_default().push(m.id);
        }
    }
    for (ss, mutexes) in &mutexes_of {
        if mutexes.len() < 2 {
            continue;
        }
        let names: Vec<String> = spec
            .mutual_exclusions
            .iter()
            .filter(|m| mutexes.contains(&m.id))
            .map(|m| format!("`{}`", m.resource))
            .collect();
        out.push(
            Diagnostic::new(
                LintId::MutexHoldAndWait,
                format!(
                    "step {}/{} belongs to {} mutexes ({}): members acquire all \
                     their mutexes concurrently and hold partial grants while \
                     waiting, so linked instances can be granted them in opposite \
                     orders and deadlock",
                    ss.schema,
                    ss.step,
                    mutexes.len(),
                    names.join(", ")
                ),
            )
            .at_coord(CoordKind::Mutex, mutexes[0])
            .at_step(ss.schema, ss.step),
        );
    }

    // --- Relative orders: shape checks. ---------------------------------
    let mut sane_orders = Vec::new();
    for r in &spec.relative_orders {
        let mut ok = true;
        for (a, b) in &r.pairs {
            ok &= known(a, CoordKind::Order, r.id, out);
            ok &= known(b, CoordKind::Order, r.id, out);
        }
        if !ok {
            continue;
        }
        for side in 0..2 {
            let steps: Vec<SchemaStep> = r
                .pairs
                .iter()
                .map(|p| if side == 0 { p.0 } else { p.1 })
                .collect();
            if steps.windows(2).any(|w| w[0].schema != w[1].schema) {
                out.push(
                    Diagnostic::new(
                        LintId::RelativeOrderSchemaMixed,
                        format!(
                            "relative order {} (`{}`) draws side {} from more than \
                             one workflow: leadership is per instance, so the side \
                             must stay within one schema",
                            r.id, r.conflict, side
                        ),
                    )
                    .at_coord(CoordKind::Order, r.id),
                );
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        // Note: a side MAY pair a schema with itself — that is the paper's
        // own scenario (two linked instances of one workflow racing for
        // the same resources); the deadlock scan models the two instances
        // separately.
        // Pair sequence must respect each side's own schema order: the
        // k-th conflicting step of the leader releases the k-th wait of
        // the lagger, so inverted pairs make the protocol wait on a step
        // that cannot run yet.
        for side in 0..2 {
            let steps: Vec<SchemaStep> = r
                .pairs
                .iter()
                .map(|p| if side == 0 { p.0 } else { p.1 })
                .collect();
            let schema = by_id[&steps[0].schema];
            let mut inverted = false;
            for k in 0..steps.len() {
                for l in (k + 1)..steps.len() {
                    if schema.is_ancestor(steps[l].step, steps[k].step) {
                        out.push(
                            Diagnostic::new(
                                LintId::RelativeOrderPairsInverted,
                                format!(
                                    "relative order {} (`{}`): pair {} step {}/{} \
                                     precedes pair {} step {}/{} in workflow `{}`'s \
                                     own order — the pair sequence is inverted",
                                    r.id,
                                    r.conflict,
                                    l,
                                    steps[l].schema,
                                    steps[l].step,
                                    k,
                                    steps[k].schema,
                                    steps[k].step,
                                    schema.name
                                ),
                            )
                            .at_coord(CoordKind::Order, r.id)
                            .at_step(steps[k].schema, steps[k].step),
                        );
                        inverted = true;
                    }
                }
            }
            ok &= !inverted;
        }
        if ok {
            sane_orders.push(r);
        }
    }

    // --- Rollback dependencies: schema-level cycles. ---------------------
    {
        let mut edges: BTreeSet<(SchemaId, SchemaId)> = BTreeSet::new();
        for rd in &spec.rollback_dependencies {
            known(&rd.source, CoordKind::RollbackDep, rd.id, out);
            edges.insert((rd.source.schema, rd.dependent_schema));
        }
        let nodes: BTreeSet<SchemaId> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        if let Some(cycle) = find_cycle(&nodes, |n| {
            edges
                .iter()
                .filter(move |(a, _)| a == n)
                .map(|&(_, b)| b)
                .collect()
        }) {
            let path: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            out.push(
                Diagnostic::new(
                    LintId::RollbackDependencyCycle,
                    format!(
                        "rollback dependencies cycle between schemas ({}): one \
                         failure can force rollbacks to ping-pong between linked \
                         instances",
                        path.join(" -> ")
                    ),
                )
                .at_coord(
                    CoordKind::RollbackDep,
                    spec.rollback_dependencies
                        .first()
                        .map(|r| r.id)
                        .unwrap_or(0),
                ),
            );
        }
    }

    // --- Wait-for graph under every leadership assignment. ---------------
    deadlock_scan(&by_id, &sane_orders, &mutexes_of, out);
}

/// A step of one of the two virtual linked instances the scan models.
/// The tag distinguishes the instances, so a schema paired with itself in
/// a relative order (two linked instances of one workflow) gets two
/// separate copies of its steps instead of a bogus self-cycle.
type InstStep = (SchemaStep, u8);

/// Enumerate relative-order leadership assignments and look for a cycle in
/// the may-wait-for graph. Nodes are the coordination-mentioned steps of
/// two virtual linked instances; edges point from a waiting step to the
/// step it waits on.
fn deadlock_scan(
    by_id: &BTreeMap<SchemaId, &WorkflowSchema>,
    orders: &[&crew_model::RelativeOrder],
    mutexes_of: &BTreeMap<SchemaStep, Vec<u32>>,
    out: &mut Vec<Diagnostic>,
) {
    let mut base: BTreeSet<SchemaStep> = BTreeSet::new();
    for r in orders {
        for (a, b) in &r.pairs {
            base.insert(*a);
            base.insert(*b);
        }
    }
    for (ss, mutexes) in mutexes_of {
        if mutexes.len() >= 2 {
            base.insert(*ss);
        }
    }
    if base.is_empty() {
        return;
    }
    let nodes: BTreeSet<InstStep> = base.iter().flat_map(|&s| [(s, 0), (s, 1)]).collect();

    // Fixed edges: intra-instance control order (a later step waits for
    // every earlier one of the same instance) and mutual hold-and-wait
    // between steps of *different* instances sharing two or more mutexes.
    let mut fixed: BTreeSet<(InstStep, InstStep)> = BTreeSet::new();
    for &u in &base {
        for &v in &base {
            if u.schema == v.schema && u != v {
                if let Some(schema) = by_id.get(&u.schema) {
                    if schema.is_ancestor(u.step, v.step) {
                        for t in 0..2u8 {
                            fixed.insert(((v, t), (u, t)));
                        }
                    }
                }
            }
        }
    }
    for (&s, ms) in mutexes_of {
        for (&t, mt) in mutexes_of {
            let shared = ms.iter().filter(|m| mt.contains(m)).count();
            if shared < 2 {
                continue;
            }
            for ts in 0..2u8 {
                for tt in 0..2u8 {
                    // Same schema + same tag is the same instance: its own
                    // control order serializes the acquisitions.
                    if (s, ts) == (t, tt) || (s.schema == t.schema && ts == tt) {
                        continue;
                    }
                    fixed.insert(((s, ts), (t, tt)));
                }
            }
        }
    }

    let n = orders.len().min(MAX_ENUMERATED_ORDERS);
    for mask in 0..(1u32 << n) {
        let mut edges = fixed.clone();
        for (i, r) in orders.iter().enumerate().take(n) {
            let leader_first = mask & (1 << i) == 0;
            for (a, b) in &r.pairs {
                if a.schema == b.schema {
                    // Two instances of one schema: side 0 is tag 0, side 1
                    // is tag 1, and leadership picks which one leads.
                    let (lead, lag) = if leader_first {
                        ((*a, 0u8), (*b, 1u8))
                    } else {
                        ((*b, 1u8), (*a, 0u8))
                    };
                    edges.insert((lag, lead));
                } else {
                    // Different schemas: any instance of the lagging
                    // schema may wait on any instance of the leader.
                    let (lead, lag) = if leader_first { (*a, *b) } else { (*b, *a) };
                    for tl in 0..2u8 {
                        for tg in 0..2u8 {
                            edges.insert(((lag, tg), (lead, tl)));
                        }
                    }
                }
            }
        }
        let cycle = find_cycle(&nodes, |node| {
            edges
                .iter()
                .filter(move |(from, _)| from == node)
                .map(|&(_, to)| to)
                .collect()
        });
        if let Some(cycle) = cycle {
            let path: Vec<String> = cycle
                .iter()
                .map(|(ss, tag)| format!("{}/{}@i{tag}", ss.schema, ss.step))
                .collect();
            let orientation: Vec<String> = orders
                .iter()
                .enumerate()
                .take(n)
                .map(|(i, r)| {
                    let side = if mask & (1 << i) == 0 { 0 } else { 1 };
                    format!("order {} led by side {side}", r.id)
                })
                .collect();
            out.push(
                Diagnostic::new(
                    LintId::CoordinationDeadlock,
                    format!(
                        "static wait-for cycle {} under a reachable coordination \
                         outcome ({}): linked concurrent instances wedge until the \
                         horizon expires",
                        path.join(" -> "),
                        if orientation.is_empty() {
                            "mutex grant race".to_string()
                        } else {
                            orientation.join(", ")
                        }
                    ),
                )
                .at_step(cycle[0].0.schema, cycle[0].0.step),
            );
            return; // One witness is enough.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{MutualExclusion, RelativeOrder, RollbackDependency, SchemaBuilder, StepId};

    fn linear(id: u32, steps: u32) -> WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(id), format!("wf{id}")).inputs(1);
        let ids: Vec<StepId> = (0..steps)
            .map(|i| b.add_step(format!("S{}", i + 1), "p"))
            .collect();
        for w in ids.windows(2) {
            b.seq(w[0], w[1]);
        }
        b.build().unwrap()
    }

    fn ss(schema: u32, step: u32) -> SchemaStep {
        SchemaStep::new(SchemaId(schema), StepId(step))
    }

    fn run_pass(schemas: &[WorkflowSchema], spec: &CoordinationSpec) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        run(schemas, spec, &mut out);
        out
    }

    fn ids(out: &[Diagnostic]) -> Vec<LintId> {
        out.iter().map(|d| d.id).collect()
    }

    #[test]
    fn single_mutex_and_order_are_clean() {
        let spec = CoordinationSpec {
            mutual_exclusions: vec![MutualExclusion {
                id: 0,
                resource: "dock".into(),
                members: vec![ss(1, 2), ss(2, 2)],
            }],
            relative_orders: vec![RelativeOrder {
                id: 1,
                conflict: "parts".into(),
                pairs: vec![(ss(1, 1), ss(2, 1)), (ss(1, 3), ss(2, 3))],
            }],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 3), linear(2, 3)], &spec);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unknown_step_is_an_error() {
        let spec = CoordinationSpec {
            mutual_exclusions: vec![MutualExclusion {
                id: 0,
                resource: "dock".into(),
                members: vec![ss(1, 9), ss(2, 1)],
            }],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 2), linear(2, 2)], &spec);
        assert_eq!(ids(&out), vec![LintId::CoordUnknownStep]);
    }

    #[test]
    fn step_in_two_mutexes_is_hold_and_wait() {
        let spec = CoordinationSpec {
            mutual_exclusions: vec![
                MutualExclusion {
                    id: 0,
                    resource: "m1".into(),
                    members: vec![ss(1, 2), ss(2, 2)],
                },
                MutualExclusion {
                    id: 1,
                    resource: "m2".into(),
                    members: vec![ss(1, 2), ss(2, 2)],
                },
            ],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 3), linear(2, 3)], &spec);
        let got = ids(&out);
        assert!(got.contains(&LintId::MutexHoldAndWait), "{out:?}");
        // Two steps sharing both mutexes also close a wait-for cycle.
        assert!(got.contains(&LintId::CoordinationDeadlock), "{out:?}");
    }

    #[test]
    fn duplicate_member_warns() {
        let spec = CoordinationSpec {
            mutual_exclusions: vec![MutualExclusion {
                id: 0,
                resource: "dock".into(),
                members: vec![ss(1, 1), ss(1, 1)],
            }],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 2)], &spec);
        assert_eq!(ids(&out), vec![LintId::MutexDuplicateMember]);
    }

    #[test]
    fn inverted_pairs_are_an_error() {
        // Side A's second pair step (S1) precedes its first (S3).
        let spec = CoordinationSpec {
            relative_orders: vec![RelativeOrder {
                id: 0,
                conflict: "x".into(),
                pairs: vec![(ss(1, 3), ss(2, 1)), (ss(1, 1), ss(2, 3))],
            }],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 3), linear(2, 3)], &spec);
        assert!(
            ids(&out).contains(&LintId::RelativeOrderPairsInverted),
            "{out:?}"
        );
    }

    #[test]
    fn mixed_schema_side_is_an_error() {
        let spec = CoordinationSpec {
            relative_orders: vec![RelativeOrder {
                id: 0,
                conflict: "x".into(),
                pairs: vec![(ss(1, 1), ss(2, 1)), (ss(3, 1), ss(2, 2))],
            }],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 2), linear(2, 2), linear(3, 2)], &spec);
        assert!(
            ids(&out).contains(&LintId::RelativeOrderSchemaMixed),
            "{out:?}"
        );
    }

    #[test]
    fn self_paired_schema_orders_two_instances() {
        // The paper's own scenario: two linked instances of ONE workflow,
        // kept in arrival order at their conflicting steps. Legal & clean.
        let spec = CoordinationSpec {
            relative_orders: vec![RelativeOrder {
                id: 0,
                conflict: "parts".into(),
                pairs: vec![(ss(1, 1), ss(1, 1)), (ss(1, 3), ss(1, 3))],
            }],
            mutual_exclusions: vec![MutualExclusion {
                id: 1,
                resource: "dock".into(),
                members: vec![ss(1, 2)],
            }],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 3)], &spec);
        assert!(out.is_empty(), "{out:?}");
    }

    /// Two instances of one schema whose single step sits in two mutexes:
    /// each instance can grab one lock and wait for the other.
    #[test]
    fn self_double_mutex_deadlocks_two_instances() {
        let spec = CoordinationSpec {
            mutual_exclusions: vec![
                MutualExclusion {
                    id: 0,
                    resource: "m1".into(),
                    members: vec![ss(1, 1)],
                },
                MutualExclusion {
                    id: 1,
                    resource: "m2".into(),
                    members: vec![ss(1, 1)],
                },
            ],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 2)], &spec);
        let got = ids(&out);
        assert!(got.contains(&LintId::MutexHoldAndWait), "{out:?}");
        assert!(got.contains(&LintId::CoordinationDeadlock), "{out:?}");
    }

    /// Crossed same-schema orders: order 0 says the instance leading at
    /// step 1 leads, order 1 (over the same two instances) can elect the
    /// other leader at step 2 — a reachable wedge.
    #[test]
    fn crossed_self_orders_deadlock() {
        let spec = CoordinationSpec {
            relative_orders: vec![
                RelativeOrder {
                    id: 0,
                    conflict: "a".into(),
                    pairs: vec![(ss(1, 2), ss(1, 1))],
                },
                RelativeOrder {
                    id: 1,
                    conflict: "b".into(),
                    pairs: vec![(ss(1, 2), ss(1, 1))],
                },
            ],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 2)], &spec);
        assert!(ids(&out).contains(&LintId::CoordinationDeadlock), "{out:?}");
    }

    /// Two relative orders whose pairs chain head-to-tail across both
    /// schemas: under the leadership assignment where each order's later
    /// step leads, the waits close a cycle.
    #[test]
    fn crossed_orders_deadlock() {
        let spec = CoordinationSpec {
            relative_orders: vec![
                RelativeOrder {
                    id: 0,
                    conflict: "a".into(),
                    pairs: vec![(ss(1, 2), ss(2, 1))],
                },
                RelativeOrder {
                    id: 1,
                    conflict: "b".into(),
                    pairs: vec![(ss(2, 2), ss(1, 1))],
                },
            ],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 2), linear(2, 2)], &spec);
        assert!(ids(&out).contains(&LintId::CoordinationDeadlock), "{out:?}");
    }

    #[test]
    fn rollback_dependency_cycle_warns() {
        let spec = CoordinationSpec {
            rollback_dependencies: vec![
                RollbackDependency {
                    id: 0,
                    source: ss(1, 1),
                    dependent_schema: SchemaId(2),
                    dependent_origin: StepId(1),
                },
                RollbackDependency {
                    id: 1,
                    source: ss(2, 1),
                    dependent_schema: SchemaId(1),
                    dependent_origin: StepId(1),
                },
            ],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 2), linear(2, 2)], &spec);
        assert_eq!(ids(&out), vec![LintId::RollbackDependencyCycle]);
    }

    /// A one-way rollback dependency is fine.
    #[test]
    fn one_way_rollback_dependency_is_clean() {
        let spec = CoordinationSpec {
            rollback_dependencies: vec![RollbackDependency {
                id: 0,
                source: ss(1, 1),
                dependent_schema: SchemaId(2),
                dependent_origin: StepId(1),
            }],
            ..CoordinationSpec::default()
        };
        let out = run_pass(&[linear(1, 2), linear(2, 2)], &spec);
        assert!(out.is_empty(), "{out:?}");
    }
}
