//! Pass 5: failure-policy soundness.
//!
//! Retry, breaker and dead-letter annotations (the ROADMAP's production
//! failure-policy layer) sit on top of the paper's compensate-or-reexecute
//! machinery, and they can contradict it:
//!
//! - re-running a non-idempotent update step duplicates external effects,
//!   so a retry needs either idempotence or a compensate program to undo
//!   the failed attempt;
//! - a compensation dependent set is undone atomically (§3), so a member
//!   retrying on its own needs a set-wide failure budget
//!   (`max_failures`) to bound how long the set's undo stays pending;
//! - an unbounded retry of a deterministic failure never terminates
//!   unless a dead-letter route eventually swallows the instance;
//! - a circuit breaker on a step that holds a coordination mutex keeps
//!   the mutex held while the breaker is open — linked instances queue
//!   behind it with no progress (livelock risk);
//! - a bounded backoff schedule must fit the run horizon, and its
//!   closed-form total must survive the runtime's wrapping 64-bit tick
//!   arithmetic (checked through the constant folder so the lint agrees
//!   with `Expr::eval` exactly).

use crate::fold::{check_backoff, BackoffVerdict};
use crate::{Diagnostic, LintId};
use crew_model::{CoordinationSpec, StepId, StepKind, WorkflowSchema, RUN_HORIZON_TICKS};
use std::collections::BTreeMap;

/// Run the pass over one schema.
pub fn run(schema: &WorkflowSchema, coordination: &CoordinationSpec, out: &mut Vec<Diagnostic>) {
    // Step → mutex resource name, for the livelock check.
    let mut mutex_resource: BTreeMap<StepId, &str> = BTreeMap::new();
    for mx in &coordination.mutual_exclusions {
        for member in &mx.members {
            if member.schema == schema.id {
                mutex_resource.entry(member.step).or_insert(&mx.resource);
            }
        }
    }
    // Step → compensation set id, for the set-wide-policy check.
    let mut comp_set_of: BTreeMap<StepId, u32> = BTreeMap::new();
    for set in &schema.compensation_sets {
        for &member in &set.members {
            comp_set_of.entry(member).or_insert(set.id);
        }
    }

    for def in schema.steps() {
        let p = &def.policy;
        if let Some(retry) = &p.retry {
            if !p.idempotent && def.kind == StepKind::Update && !def.is_compensatable() {
                out.push(
                    Diagnostic::new(
                        LintId::RetryNonIdempotentWithoutCompensation,
                        format!(
                            "step `{}` ({}) of workflow `{}` retries but is neither \
                             idempotent nor compensatable: every failed attempt can \
                             leave external effects no rollback undoes",
                            def.name, def.id, schema.name
                        ),
                    )
                    .at_step(schema.id, def.id),
                );
            }
            if let Some(&set) = comp_set_of.get(&def.id) {
                if schema.policy.max_failures.is_none() {
                    out.push(
                        Diagnostic::new(
                            LintId::RetryInCompSetWithoutSetPolicy,
                            format!(
                                "step `{}` ({}) retries inside compensation set {set} of \
                                 workflow `{}` but the workflow declares no `max_failures` \
                                 budget: the set's atomic undo can stay pending across \
                                 unboundedly many member retries",
                                def.name, def.id, schema.name
                            ),
                        )
                        .at_step(schema.id, def.id),
                    );
                }
            }
            if retry.max.is_none() && !p.dead_letter && !schema.policy.dead_letter {
                out.push(
                    Diagnostic::new(
                        LintId::UnboundedRetryWithoutDeadLetter,
                        format!(
                            "step `{}` ({}) of workflow `{}` retries unbounded with no \
                             dead-letter route at step or workflow level: a deterministic \
                             failure retries forever and the instance never terminates",
                            def.name, def.id, schema.name
                        ),
                    )
                    .at_step(schema.id, def.id),
                );
            }
            match check_backoff(retry, RUN_HORIZON_TICKS) {
                Some(BackoffVerdict::ExceedsHorizon { total }) => out.push(
                    Diagnostic::new(
                        LintId::BackoffOverflowsHorizon,
                        format!(
                            "step `{}` ({}) of workflow `{}`: worst-case cumulative \
                             backoff is {total} ticks, past the {RUN_HORIZON_TICKS}-tick \
                             run horizon — the schedule cannot complete before the run \
                             is declared stalled",
                            def.name, def.id, schema.name
                        ),
                    )
                    .at_step(schema.id, def.id),
                ),
                Some(BackoffVerdict::WrapsTickArithmetic { exact, folded }) => out.push(
                    Diagnostic::new(
                        LintId::BackoffOverflowsHorizon,
                        format!(
                            "step `{}` ({}) of workflow `{}`: cumulative backoff wraps \
                             64-bit tick arithmetic (exact {exact} ticks, runtime would \
                             compute {folded})",
                            def.name, def.id, schema.name
                        ),
                    )
                    .at_step(schema.id, def.id),
                ),
                Some(BackoffVerdict::Fits) | None => {}
            }
        } else if p.dead_letter {
            out.push(
                Diagnostic::new(
                    LintId::DeadLetterWithoutRetry,
                    format!(
                        "step `{}` ({}) of workflow `{}` declares a dead-letter route \
                         but no retry policy: nothing ever routes to it",
                        def.name, def.id, schema.name
                    ),
                )
                .at_step(schema.id, def.id),
            );
        }
        if p.breaker.is_some() {
            if let Some(resource) = mutex_resource.get(&def.id) {
                out.push(
                    Diagnostic::new(
                        LintId::BreakerOnMutexStep,
                        format!(
                            "step `{}` ({}) of workflow `{}` combines a circuit breaker \
                             with membership in mutex \"{resource}\": while the breaker \
                             is open the mutex stays held, and linked instances can \
                             livelock behind it",
                            def.name, def.id, schema.name
                        ),
                    )
                    .at_step(schema.id, def.id),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{
        BackoffKind, BreakerPolicy, MutualExclusion, RetryPolicy, SchemaBuilder, SchemaId,
        SchemaStep, StepPolicy, WorkflowPolicy,
    };

    fn two_step_schema(
        comp: bool,
        policy: StepPolicy,
        wf_policy: WorkflowPolicy,
        comp_set: bool,
    ) -> WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(1), "W");
        let a = b.add_step("A", "p");
        let z = b.add_step("Z", "q");
        b.seq(a, z);
        b.configure(a, |d| {
            if comp {
                d.compensation_program = Some("p.undo".into());
            }
            d.policy = policy;
        });
        if comp_set {
            b.configure(z, |d| d.compensation_program = Some("q.undo".into()));
            b.compensation_set(vec![a, z]);
        }
        b.workflow_policy(wf_policy);
        b.build().unwrap()
    }

    fn ids(schema: &WorkflowSchema, coord: &CoordinationSpec) -> Vec<LintId> {
        let mut out = Vec::new();
        run(schema, coord, &mut out);
        out.iter().map(|d| d.id).collect()
    }

    #[test]
    fn retry_without_undo_is_flagged_and_idempotence_clears_it() {
        let flagged = two_step_schema(
            false,
            StepPolicy {
                retry: Some(RetryPolicy::bounded(2)),
                ..StepPolicy::default()
            },
            WorkflowPolicy::default(),
            false,
        );
        assert!(ids(&flagged, &CoordinationSpec::default())
            .contains(&LintId::RetryNonIdempotentWithoutCompensation));

        let idempotent = two_step_schema(
            false,
            StepPolicy {
                retry: Some(RetryPolicy::bounded(2)),
                idempotent: true,
                ..StepPolicy::default()
            },
            WorkflowPolicy::default(),
            false,
        );
        assert!(ids(&idempotent, &CoordinationSpec::default()).is_empty());

        let compensated = two_step_schema(
            true,
            StepPolicy {
                retry: Some(RetryPolicy::bounded(2)),
                ..StepPolicy::default()
            },
            WorkflowPolicy::default(),
            false,
        );
        assert!(ids(&compensated, &CoordinationSpec::default()).is_empty());
    }

    #[test]
    fn comp_set_retry_needs_workflow_budget() {
        let policy = StepPolicy {
            retry: Some(RetryPolicy::bounded(2)),
            ..StepPolicy::default()
        };
        let flagged = two_step_schema(true, policy.clone(), WorkflowPolicy::default(), true);
        assert!(ids(&flagged, &CoordinationSpec::default())
            .contains(&LintId::RetryInCompSetWithoutSetPolicy));

        let budgeted = two_step_schema(
            true,
            policy,
            WorkflowPolicy {
                max_failures: Some(5),
                ..WorkflowPolicy::default()
            },
            true,
        );
        assert!(!ids(&budgeted, &CoordinationSpec::default())
            .contains(&LintId::RetryInCompSetWithoutSetPolicy));
    }

    #[test]
    fn unbounded_retry_needs_dead_letter() {
        let policy = StepPolicy {
            retry: Some(RetryPolicy::unbounded()),
            idempotent: true,
            ..StepPolicy::default()
        };
        let flagged = two_step_schema(false, policy.clone(), WorkflowPolicy::default(), false);
        assert!(ids(&flagged, &CoordinationSpec::default())
            .contains(&LintId::UnboundedRetryWithoutDeadLetter));

        // Step-level route clears it.
        let step_routed = two_step_schema(
            false,
            StepPolicy {
                dead_letter: true,
                ..policy.clone()
            },
            WorkflowPolicy::default(),
            false,
        );
        assert!(ids(&step_routed, &CoordinationSpec::default()).is_empty());

        // Workflow-level route clears it too.
        let wf_routed = two_step_schema(
            false,
            policy,
            WorkflowPolicy {
                dead_letter: true,
                ..WorkflowPolicy::default()
            },
            false,
        );
        assert!(ids(&wf_routed, &CoordinationSpec::default()).is_empty());
    }

    #[test]
    fn breaker_on_mutex_member_warns() {
        let schema = two_step_schema(
            false,
            StepPolicy {
                breaker: Some(BreakerPolicy {
                    threshold: 2,
                    cooldown: 100,
                }),
                ..StepPolicy::default()
            },
            WorkflowPolicy::default(),
            false,
        );
        let coord = CoordinationSpec {
            mutual_exclusions: vec![MutualExclusion {
                id: 0,
                resource: "dock".into(),
                members: vec![
                    SchemaStep::new(SchemaId(1), schema.steps().next().unwrap().id),
                    SchemaStep::new(SchemaId(2), crew_model::StepId(1)),
                ],
            }],
            ..CoordinationSpec::default()
        };
        assert!(ids(&schema, &coord).contains(&LintId::BreakerOnMutexStep));
        // Without the mutex the breaker is fine.
        assert!(ids(&schema, &CoordinationSpec::default()).is_empty());
    }

    #[test]
    fn backoff_past_horizon_is_flagged() {
        let schema = two_step_schema(
            false,
            StepPolicy {
                retry: Some(RetryPolicy {
                    max: Some(20),
                    backoff: BackoffKind::Exponential,
                    base: 10_000,
                    jitter: 0,
                }),
                idempotent: true,
                ..StepPolicy::default()
            },
            WorkflowPolicy::default(),
            false,
        );
        assert!(
            ids(&schema, &CoordinationSpec::default()).contains(&LintId::BackoffOverflowsHorizon)
        );
    }

    #[test]
    fn dead_letter_without_retry_warns() {
        let schema = two_step_schema(
            false,
            StepPolicy {
                dead_letter: true,
                ..StepPolicy::default()
            },
            WorkflowPolicy::default(),
            false,
        );
        assert_eq!(
            ids(&schema, &CoordinationSpec::default()),
            vec![LintId::DeadLetterWithoutRetry]
        );
    }

    #[test]
    fn unannotated_schema_is_silent() {
        let schema = two_step_schema(
            false,
            StepPolicy::default(),
            WorkflowPolicy::default(),
            false,
        );
        assert!(ids(&schema, &CoordinationSpec::default()).is_empty());
    }
}
