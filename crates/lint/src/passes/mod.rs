//! The analyzer's five passes. Each pass is a free function appending to
//! a shared diagnostic vector; [`crate::lint`] runs them all and sorts.

pub mod compensation;
pub mod coordination;
pub mod data;
pub mod policy;
pub mod template;

use std::collections::{BTreeMap, BTreeSet};

/// Generic cycle finder: DFS with colors, returns the first cycle found as
/// a node path (closing node repeated at the end).
pub(crate) fn find_cycle<N: Ord + Copy>(
    nodes: &BTreeSet<N>,
    succ: impl Fn(&N) -> Vec<N>,
) -> Option<Vec<N>> {
    #[derive(PartialEq, Clone, Copy)]
    enum Color {
        White,
        Gray,
        Black,
    }
    fn visit<N: Ord + Copy>(
        n: N,
        color: &mut BTreeMap<N, Color>,
        stack: &mut Vec<N>,
        succ: &impl Fn(&N) -> Vec<N>,
    ) -> Option<Vec<N>> {
        color.insert(n, Color::Gray);
        stack.push(n);
        for next in succ(&n) {
            match color.get(&next) {
                Some(Color::Gray) => {
                    // Cycle: slice the stack from `next` onwards.
                    let start = stack.iter().position(|&s| s == next).unwrap_or(0);
                    let mut cycle: Vec<N> = stack[start..].to_vec();
                    cycle.push(next);
                    return Some(cycle);
                }
                Some(Color::White) => {
                    if let Some(c) = visit(next, color, stack, succ) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(n, Color::Black);
        None
    }

    let mut color: BTreeMap<N, Color> = nodes.iter().map(|&n| (n, Color::White)).collect();
    let mut stack: Vec<N> = Vec::new();
    for &n in nodes {
        if color[&n] == Color::White {
            if let Some(c) = visit(n, &mut color, &mut stack, &succ) {
                return Some(c);
            }
            stack.clear();
        }
    }
    None
}
