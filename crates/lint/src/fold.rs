//! Constant folding over [`Expr`] for the static passes.
//!
//! The linter cannot evaluate data-dependent conditions, but conditions
//! that fold to a constant regardless of the data table are statically
//! decidable: a loop-continue condition that folds to `true` never exits,
//! an XOR arc whose condition folds to `false` is dead. Folding mirrors
//! the runtime [`Expr::eval`] semantics exactly — a folded subtree is
//! re-evaluated through the real evaluator on constant leaves, so the
//! lint never disagrees with what the engines would compute.

use crew_model::{DataEnv, Expr, Value};

/// Fold `expr` to a constant [`Value`] if it does not depend on the data
/// table. Returns `None` for anything touching an item (or whose constant
/// evaluation fails, e.g. a type error — those surface at run time).
pub fn fold(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::Const(v) => Some(v.clone()),
        // Items and definedness depend on the instance data table.
        Expr::Item(_) | Expr::Defined(_) => None,
        Expr::Not(inner) => fold_bool(inner).map(|b| Value::Bool(!b)),
        Expr::And(l, r) => fold_junction(l, r, false),
        Expr::Or(l, r) => fold_junction(l, r, true),
        Expr::Cmp(op, l, r) => {
            let (l, r) = (fold(l)?, fold(r)?);
            eval_const(Expr::cmp(*op, Expr::Const(l), Expr::Const(r)))
        }
        Expr::Arith(op, l, r) => {
            let (l, r) = (fold(l)?, fold(r)?);
            eval_const(Expr::arith(*op, Expr::Const(l), Expr::Const(r)))
        }
    }
}

/// Fold `expr` to a boolean if possible (truthiness per the runtime's
/// [`Value::as_bool`]).
pub fn fold_bool(expr: &Expr) -> Option<bool> {
    fold(expr).and_then(|v| v.as_bool())
}

/// And/Or with short-circuiting: one decided absorbing side folds the
/// junction even when the other side depends on data (`false && x` is
/// `false` for every `x`).
fn fold_junction(l: &Expr, r: &Expr, absorbing: bool) -> Option<Value> {
    match (fold_bool(l), fold_bool(r)) {
        (Some(a), _) if a == absorbing => Some(Value::Bool(absorbing)),
        (_, Some(b)) if b == absorbing => Some(Value::Bool(absorbing)),
        // Both sides decided and neither absorbs: the junction resolves to
        // the non-absorbing value (`true && true`, `false || false`).
        (Some(_), Some(_)) => Some(Value::Bool(!absorbing)),
        _ => None,
    }
}

/// Evaluate an item-free expression through the runtime evaluator.
fn eval_const(e: Expr) -> Option<Value> {
    e.eval(&DataEnv::new()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{CmpOp, ItemKey};

    #[test]
    fn constants_fold() {
        assert_eq!(fold_bool(&Expr::lit(true)), Some(true));
        assert_eq!(
            fold_bool(&Expr::cmp(CmpOp::Gt, Expr::lit(3), Expr::lit(2))),
            Some(true)
        );
        assert_eq!(
            fold_bool(&Expr::not(Expr::cmp(CmpOp::Lt, Expr::lit(3), Expr::lit(2)))),
            Some(true)
        );
    }

    #[test]
    fn items_do_not_fold() {
        let item = Expr::item(ItemKey::input(1));
        assert_eq!(fold(&item), None);
        assert_eq!(
            fold_bool(&Expr::cmp(CmpOp::Eq, item.clone(), Expr::lit(1))),
            None
        );
        assert_eq!(fold(&Expr::Defined(ItemKey::input(1))), None);
    }

    #[test]
    fn junctions_short_circuit() {
        let unknown = Expr::cmp(CmpOp::Eq, Expr::item(ItemKey::input(1)), Expr::lit(1));
        assert_eq!(
            fold_bool(&Expr::and(Expr::lit(false), unknown.clone())),
            Some(false)
        );
        assert_eq!(
            fold_bool(&Expr::or(unknown.clone(), Expr::lit(true))),
            Some(true)
        );
        assert_eq!(
            fold_bool(&Expr::and(Expr::lit(true), unknown.clone())),
            None
        );
        assert_eq!(fold_bool(&Expr::or(unknown, Expr::lit(false))), None);
    }

    #[test]
    fn arithmetic_folds_through_runtime_semantics() {
        let e = Expr::cmp(
            CmpOp::Ge,
            Expr::arith(crew_model::ArithOp::Add, Expr::lit(2), Expr::lit(3)),
            Expr::lit(5),
        );
        assert_eq!(fold_bool(&e), Some(true));
    }
}
