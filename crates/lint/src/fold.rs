//! Constant folding over [`Expr`] for the static passes.
//!
//! The linter cannot evaluate data-dependent conditions, but conditions
//! that fold to a constant regardless of the data table are statically
//! decidable: a loop-continue condition that folds to `true` never exits,
//! an XOR arc whose condition folds to `false` is dead. Folding mirrors
//! the runtime [`Expr::eval`] semantics exactly — a folded subtree is
//! re-evaluated through the real evaluator on constant leaves, so the
//! lint never disagrees with what the engines would compute.

use crew_model::{ArithOp, BackoffKind, DataEnv, Expr, RetryPolicy, Value};

/// Fold `expr` to a constant [`Value`] if it does not depend on the data
/// table. Returns `None` for anything touching an item (or whose constant
/// evaluation fails, e.g. a type error — those surface at run time).
pub fn fold(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::Const(v) => Some(v.clone()),
        // Items and definedness depend on the instance data table.
        Expr::Item(_) | Expr::Defined(_) => None,
        Expr::Not(inner) => fold_bool(inner).map(|b| Value::Bool(!b)),
        Expr::And(l, r) => fold_junction(l, r, false),
        Expr::Or(l, r) => fold_junction(l, r, true),
        Expr::Cmp(op, l, r) => {
            let (l, r) = (fold(l)?, fold(r)?);
            eval_const(Expr::cmp(*op, Expr::Const(l), Expr::Const(r)))
        }
        Expr::Arith(op, l, r) => {
            let (l, r) = (fold(l)?, fold(r)?);
            eval_const(Expr::arith(*op, Expr::Const(l), Expr::Const(r)))
        }
    }
}

/// Fold `expr` to a boolean if possible (truthiness per the runtime's
/// [`Value::as_bool`]).
pub fn fold_bool(expr: &Expr) -> Option<bool> {
    fold(expr).and_then(|v| v.as_bool())
}

/// And/Or with short-circuiting: one decided absorbing side folds the
/// junction even when the other side depends on data (`false && x` is
/// `false` for every `x`).
fn fold_junction(l: &Expr, r: &Expr, absorbing: bool) -> Option<Value> {
    match (fold_bool(l), fold_bool(r)) {
        (Some(a), _) if a == absorbing => Some(Value::Bool(absorbing)),
        (_, Some(b)) if b == absorbing => Some(Value::Bool(absorbing)),
        // Both sides decided and neither absorbs: the junction resolves to
        // the non-absorbing value (`true && true`, `false || false`).
        (Some(_), Some(_)) => Some(Value::Bool(!absorbing)),
        _ => None,
    }
}

/// Evaluate an item-free expression through the runtime evaluator.
fn eval_const(e: Expr) -> Option<Value> {
    e.eval(&DataEnv::new()).ok()
}

// ---- backoff-schedule arithmetic -------------------------------------------
//
// The policy pass needs the worst-case cumulative delay of a bounded
// retry schedule twice over: once in exact integer arithmetic (u128,
// saturating — what the designer *meant*) and once through the runtime's
// own wrapping i64 tick arithmetic (what the engines would *compute*).
// The runtime figure is obtained by building the closed form as an
// [`Expr`] and folding it, so the lint can never disagree with
// `Expr::eval`. A disagreement between the two figures is precisely a
// tick-arithmetic wrap.

/// The closed-form worst-case cumulative delay of a bounded retry
/// schedule, as a constant [`Expr`] under the runtime's wrapping i64
/// semantics. `None` for unbounded retries (no closed form exists; the
/// dead-letter rule covers those).
pub fn backoff_schedule_expr(p: &RetryPolicy) -> Option<Expr> {
    let max = p.max?;
    let m = Expr::lit(max as i64);
    let base = Expr::lit(p.base as i64);
    let schedule = match p.backoff {
        // m retries, each waiting `base`.
        BackoffKind::Fixed => Expr::arith(ArithOp::Mul, base, m.clone()),
        // Retry k waits base*k: total = base * m*(m+1)/2.
        BackoffKind::Linear => Expr::arith(
            ArithOp::Mul,
            base,
            Expr::arith(
                ArithOp::Div,
                Expr::arith(
                    ArithOp::Mul,
                    m.clone(),
                    Expr::arith(ArithOp::Add, m.clone(), Expr::lit(1)),
                ),
                Expr::lit(2),
            ),
        ),
        // Retry k waits base*2^(k-1): total = base * (2^m - 1). The power
        // is a chain of doublings; beyond 64 the wrapped product is 0
        // regardless, so the chain caps there.
        BackoffKind::Exponential => {
            let mut pow = Expr::lit(1);
            for _ in 0..max.min(64) {
                pow = Expr::arith(ArithOp::Mul, Expr::lit(2), pow);
            }
            Expr::arith(
                ArithOp::Mul,
                base,
                Expr::arith(ArithOp::Sub, pow, Expr::lit(1)),
            )
        }
    };
    // Worst case every retry also waits the full jitter.
    Some(Expr::arith(
        ArithOp::Add,
        schedule,
        Expr::arith(ArithOp::Mul, Expr::lit(p.jitter as i64), m),
    ))
}

/// Fold [`backoff_schedule_expr`] to the value the runtime's wrapping
/// tick arithmetic would produce.
pub fn backoff_total_runtime(p: &RetryPolicy) -> Option<i64> {
    match fold(&backoff_schedule_expr(p)?) {
        Some(Value::Int(v)) => Some(v),
        _ => None,
    }
}

/// The exact worst-case cumulative delay in saturating u128 arithmetic.
/// `None` for unbounded retries.
pub fn backoff_total_exact(p: &RetryPolicy) -> Option<u128> {
    let max = p.max? as u128;
    let base = p.base as u128;
    let schedule = match p.backoff {
        BackoffKind::Fixed => base.saturating_mul(max),
        BackoffKind::Linear => base.saturating_mul(max.saturating_mul(max + 1) / 2),
        BackoffKind::Exponential => {
            let pow = match u32::try_from(max) {
                Ok(m) if m < 128 => (1u128 << m) - 1,
                _ => u128::MAX,
            };
            base.saturating_mul(pow)
        }
    };
    Some(schedule.saturating_add((p.jitter as u128).saturating_mul(max)))
}

/// The outcome of checking a retry schedule against the run horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffVerdict {
    /// The worst-case schedule completes within the horizon.
    Fits,
    /// The schedule is finite but exceeds the horizon: the run ends
    /// `Stalled` before the retries can complete.
    ExceedsHorizon {
        /// Exact worst-case cumulative delay in ticks.
        total: u128,
    },
    /// The schedule overflows 64-bit tick arithmetic: the runtime's
    /// folded figure disagrees with the exact one.
    WrapsTickArithmetic {
        /// Exact worst-case cumulative delay.
        exact: u128,
        /// What the runtime's wrapping arithmetic computes instead.
        folded: i64,
    },
}

/// Check a retry policy's worst-case schedule against `horizon` ticks.
/// `None` for unbounded retries — those have no finite schedule and are
/// handled by the dead-letter rule instead.
pub fn check_backoff(p: &RetryPolicy, horizon: u64) -> Option<BackoffVerdict> {
    let exact = backoff_total_exact(p)?;
    let folded = backoff_total_runtime(p)?;
    Some(if folded < 0 || folded as u128 != exact {
        BackoffVerdict::WrapsTickArithmetic { exact, folded }
    } else if exact > horizon as u128 {
        BackoffVerdict::ExceedsHorizon { total: exact }
    } else {
        BackoffVerdict::Fits
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{CmpOp, ItemKey};

    #[test]
    fn constants_fold() {
        assert_eq!(fold_bool(&Expr::lit(true)), Some(true));
        assert_eq!(
            fold_bool(&Expr::cmp(CmpOp::Gt, Expr::lit(3), Expr::lit(2))),
            Some(true)
        );
        assert_eq!(
            fold_bool(&Expr::not(Expr::cmp(CmpOp::Lt, Expr::lit(3), Expr::lit(2)))),
            Some(true)
        );
    }

    #[test]
    fn items_do_not_fold() {
        let item = Expr::item(ItemKey::input(1));
        assert_eq!(fold(&item), None);
        assert_eq!(
            fold_bool(&Expr::cmp(CmpOp::Eq, item.clone(), Expr::lit(1))),
            None
        );
        assert_eq!(fold(&Expr::Defined(ItemKey::input(1))), None);
    }

    #[test]
    fn junctions_short_circuit() {
        let unknown = Expr::cmp(CmpOp::Eq, Expr::item(ItemKey::input(1)), Expr::lit(1));
        assert_eq!(
            fold_bool(&Expr::and(Expr::lit(false), unknown.clone())),
            Some(false)
        );
        assert_eq!(
            fold_bool(&Expr::or(unknown.clone(), Expr::lit(true))),
            Some(true)
        );
        assert_eq!(
            fold_bool(&Expr::and(Expr::lit(true), unknown.clone())),
            None
        );
        assert_eq!(fold_bool(&Expr::or(unknown, Expr::lit(false))), None);
    }

    #[test]
    fn arithmetic_folds_through_runtime_semantics() {
        let e = Expr::cmp(
            CmpOp::Ge,
            Expr::arith(crew_model::ArithOp::Add, Expr::lit(2), Expr::lit(3)),
            Expr::lit(5),
        );
        assert_eq!(fold_bool(&e), Some(true));
    }

    #[test]
    fn comparison_folding_edge_cases() {
        // Extremes of the int range compare exactly.
        assert_eq!(
            fold_bool(&Expr::cmp(
                CmpOp::Lt,
                Expr::lit(i64::MIN),
                Expr::lit(i64::MAX)
            )),
            Some(true)
        );
        assert_eq!(
            fold_bool(&Expr::cmp(CmpOp::Le, Expr::lit(5), Expr::lit(5))),
            Some(true)
        );
        assert_eq!(
            fold_bool(&Expr::cmp(CmpOp::Ne, Expr::lit(0), Expr::lit(-0))),
            Some(false)
        );
        // Mixed int/float comparison goes through the runtime's widening.
        assert_eq!(
            fold_bool(&Expr::cmp(CmpOp::Eq, Expr::lit(2), Expr::lit(2.0))),
            Some(true)
        );
        // Wrapping shows up in folded comparisons exactly as at run time:
        // i64::MAX + 1 wraps negative.
        let wrapped = Expr::arith(crew_model::ArithOp::Add, Expr::lit(i64::MAX), Expr::lit(1));
        assert_eq!(
            fold_bool(&Expr::cmp(CmpOp::Lt, wrapped, Expr::lit(0))),
            Some(true)
        );
        // Division by zero does not fold (surfaces at run time).
        let div0 = Expr::arith(crew_model::ArithOp::Div, Expr::lit(1), Expr::lit(0));
        assert_eq!(fold(&div0), None);
    }

    fn retry(
        max: Option<u32>,
        backoff: crew_model::BackoffKind,
        base: u64,
        jitter: u64,
    ) -> RetryPolicy {
        RetryPolicy {
            max,
            backoff,
            base,
            jitter,
        }
    }

    #[test]
    fn backoff_totals_match_closed_forms() {
        use crew_model::BackoffKind::*;
        // fixed: 3 retries * 10 ticks + 3 * 2 jitter = 36.
        let p = retry(Some(3), Fixed, 10, 2);
        assert_eq!(backoff_total_exact(&p), Some(36));
        assert_eq!(backoff_total_runtime(&p), Some(36));
        // linear: 10*(1+2+3) = 60.
        let p = retry(Some(3), Linear, 10, 0);
        assert_eq!(backoff_total_exact(&p), Some(60));
        assert_eq!(backoff_total_runtime(&p), Some(60));
        // exponential: 10*(1+2+4) = 70.
        let p = retry(Some(3), Exponential, 10, 0);
        assert_eq!(backoff_total_exact(&p), Some(70));
        assert_eq!(backoff_total_runtime(&p), Some(70));
        // unbounded: no finite schedule.
        assert_eq!(backoff_total_exact(&retry(None, Fixed, 10, 0)), None);
        assert_eq!(backoff_total_runtime(&retry(None, Fixed, 10, 0)), None);
    }

    #[test]
    fn backoff_horizon_boundary() {
        use crew_model::BackoffKind::Fixed;
        let horizon = 1_000_000u64;
        // Exactly at the horizon: fits.
        let p = retry(Some(4), Fixed, 250_000, 0);
        assert_eq!(check_backoff(&p, horizon), Some(BackoffVerdict::Fits));
        // One tick over: exceeds.
        let p = retry(Some(4), Fixed, 250_001, 0);
        assert_eq!(
            check_backoff(&p, horizon),
            Some(BackoffVerdict::ExceedsHorizon { total: 1_000_004 })
        );
        // Jitter alone can push a fitting schedule over.
        let p = retry(Some(4), Fixed, 250_000, 1);
        assert_eq!(
            check_backoff(&p, horizon),
            Some(BackoffVerdict::ExceedsHorizon { total: 1_000_004 })
        );
        // Unbounded: not this rule's business.
        assert_eq!(check_backoff(&retry(None, Fixed, 1, 0), horizon), None);
    }

    #[test]
    fn backoff_wrapping_vs_saturating() {
        use crew_model::BackoffKind::Exponential;
        // 100 exponential retries of base 7: exact is astronomically large
        // (saturating u128 keeps it finite), while the runtime's wrapping
        // i64 product is a small wrapped residue. The two disagreeing is
        // the wrap verdict.
        let p = retry(Some(100), Exponential, 7, 0);
        let exact = backoff_total_exact(&p).unwrap();
        let folded = backoff_total_runtime(&p).unwrap();
        assert!(exact > i64::MAX as u128);
        assert_ne!(folded as u128, exact);
        assert_eq!(
            check_backoff(&p, 1_000_000),
            Some(BackoffVerdict::WrapsTickArithmetic { exact, folded })
        );
        // Saturation ceiling: ≥128 retries pins the exact figure at MAX
        // instead of wrapping it back around.
        let p = retry(Some(200), Exponential, 7, 0);
        assert_eq!(backoff_total_exact(&p), Some(u128::MAX));
        assert!(matches!(
            check_backoff(&p, 1_000_000),
            Some(BackoffVerdict::WrapsTickArithmetic { .. })
        ));
    }
}
