//! The application agent of centralized/parallel control.
//!
//! "The agent is responsible for executing the step and communicates back
//! the results of the step to the engine" (§2). Agents hold no workflow
//! state: the engine ships the program name and input values; the agent
//! runs the black box (honoring the failure plan) and replies.

use crate::msg::CentralMsg;
use crew_exec::{FailurePlan, ProgramCtx, ProgramRegistry};
use crew_simnet::{Ctx, Node, NodeId};
use std::any::Any;

/// A stateless program-execution agent.
pub struct AppAgent {
    registry: ProgramRegistry,
    plan: FailurePlan,
    seed: u64,
    /// Cumulative program-execution load (reported to state probes).
    pub load: u64,
    /// Number of programs executed (test introspection).
    pub executed: u64,
    /// Number of compensations performed.
    pub compensated: u64,
}

impl AppAgent {
    pub fn new(registry: ProgramRegistry, plan: FailurePlan, seed: u64) -> Self {
        AppAgent {
            registry,
            plan,
            seed,
            load: 0,
            executed: 0,
            compensated: 0,
        }
    }
}

impl Node<CentralMsg> for AppAgent {
    fn on_message(&mut self, from: NodeId, msg: CentralMsg, ctx: &mut Ctx<CentralMsg>) {
        match msg {
            CentralMsg::ExecRequest {
                instance,
                step,
                program,
                inputs,
                attempt,
                cost,
            } => {
                let reply = if self.plan.step_fails(instance, step, attempt) {
                    CentralMsg::ExecResult {
                        instance,
                        step,
                        attempt,
                        outputs: None,
                        error: Some("injected logical failure".into()),
                    }
                } else {
                    match self.registry.get(&program) {
                        None => CentralMsg::ExecResult {
                            instance,
                            step,
                            attempt,
                            outputs: None,
                            error: Some(format!("unknown program {program:?}")),
                        },
                        Some(p) => {
                            let pctx = ProgramCtx {
                                instance,
                                step,
                                attempt,
                                seed: self.seed,
                                inputs,
                            };
                            match p.run(&pctx) {
                                Ok(outputs) => {
                                    self.executed += 1;
                                    self.load += cost;
                                    ctx.add_load(cost);
                                    CentralMsg::ExecResult {
                                        instance,
                                        step,
                                        attempt,
                                        outputs: Some(outputs),
                                        error: None,
                                    }
                                }
                                Err(e) => CentralMsg::ExecResult {
                                    instance,
                                    step,
                                    attempt,
                                    outputs: None,
                                    error: Some(e.reason),
                                },
                            }
                        }
                    }
                };
                ctx.send(from, reply);
            }
            CentralMsg::CompensateRequest {
                instance,
                step,
                program,
                for_abort,
                ..
            } => {
                if let Some(name) = program {
                    if let Some(p) = self.registry.get(&name) {
                        let pctx = ProgramCtx {
                            instance,
                            step,
                            attempt: 0,
                            seed: self.seed,
                            inputs: vec![],
                        };
                        p.compensate(&pctx);
                        let _ = p.run(&pctx);
                    }
                }
                self.compensated += 1;
                ctx.send(
                    from,
                    CentralMsg::CompensateResult {
                        instance,
                        step,
                        for_abort,
                    },
                );
            }
            CentralMsg::StateProbe { token } => {
                ctx.send(
                    from,
                    CentralMsg::StateProbeReply {
                        token,
                        load: self.load,
                    },
                );
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{InstanceId, SchemaId, StepId, Value};
    use crew_simnet::Simulation;

    struct Probe {
        agent: NodeId,
        got: Vec<CentralMsg>,
    }

    impl Node<CentralMsg> for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<CentralMsg>) {
            let inst = InstanceId::new(SchemaId(1), 1);
            ctx.send(
                self.agent,
                CentralMsg::ExecRequest {
                    instance: inst,
                    step: StepId(1),
                    program: "sum".into(),
                    inputs: vec![Some(Value::Int(2)), Some(Value::Int(3))],
                    attempt: 1,
                    cost: 42,
                },
            );
            ctx.send(self.agent, CentralMsg::StateProbe { token: 9 });
        }
        fn on_message(&mut self, _from: NodeId, msg: CentralMsg, _ctx: &mut Ctx<CentralMsg>) {
            self.got.push(msg);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn executes_and_probes() {
        let mut sim = Simulation::new(3);
        let agent = sim.add_node(AppAgent::new(
            ProgramRegistry::with_builtins(),
            FailurePlan::none(),
            3,
        ));
        let probe = sim.add_node(Probe { agent, got: vec![] });
        sim.run();
        let p = sim.node_as::<Probe>(probe).unwrap();
        assert_eq!(p.got.len(), 2);
        assert!(matches!(
            &p.got[0],
            CentralMsg::ExecResult { outputs: Some(o), .. } if o == &vec![Value::Int(5)]
        ));
        assert!(matches!(
            &p.got[1],
            CentralMsg::StateProbeReply { token: 9, load: 42 }
        ));
        let a = sim.node_as::<AppAgent>(agent).unwrap();
        assert_eq!(a.executed, 1);
    }

    #[test]
    fn injected_failure_round_trips() {
        let inst = InstanceId::new(SchemaId(1), 1);
        let plan = FailurePlan::none().fail_step(inst, StepId(1), 1);
        let mut sim = Simulation::new(3);
        let agent = sim.add_node(AppAgent::new(ProgramRegistry::with_builtins(), plan, 3));
        let probe = sim.add_node(Probe { agent, got: vec![] });
        sim.run();
        let p = sim.node_as::<Probe>(probe).unwrap();
        assert!(matches!(
            &p.got[0],
            CentralMsg::ExecResult {
                outputs: None,
                error: Some(_),
                ..
            }
        ));
    }
}
