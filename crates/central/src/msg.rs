//! Messages of the centralized / parallel control architectures.
//!
//! The engine(s) hold all workflow state; application agents only run
//! programs. Per step the engine performs a one-phase scatter-gather over
//! the step's `a` eligible agents: an `ExecRequest` to the (least-loaded
//! estimated) executor plus `StateProbe`s to the rest, each answered — the
//! `2·s·a` messages per instance of Table 4. Engine↔engine messages exist
//! only under parallel control, for coordination requirements whose
//! instances live on different engines (Table 5's coordinated-execution
//! row).

use crew_model::{InstanceId, ItemKey, StepId, Value};
use crew_simnet::{Classify, Mechanism};

/// Engine↔engine coordination traffic (parallel control only).
#[derive(Debug, Clone, PartialEq)]
pub enum CoordMsg {
    /// Relative order: first conflicting step of `claimant` (linked with
    /// `partner`) completed; the requirement's manager engine decides.
    RoFirstDone {
        req: u32,
        claimant: InstanceId,
        partner: InstanceId,
    },
    /// Manager → owner engine: the decision (leading instance).
    RoDecision {
        req: u32,
        a: InstanceId,
        b: InstanceId,
        leader_side: u8,
    },
    /// Leading side's step `k` completed: release the lagging instance's
    /// step (owner engine of the lagging instance applies it).
    RoRelease {
        req: u32,
        k: usize,
        lagging: InstanceId,
    },
    /// Mutual exclusion request for `(instance, step)`.
    MutexAcquire {
        req: u32,
        instance: InstanceId,
        step: StepId,
    },
    /// Manager → owner engine: grant.
    MutexGrant {
        req: u32,
        instance: InstanceId,
        step: StepId,
    },
    /// Release the resource.
    MutexRelease {
        req: u32,
        instance: InstanceId,
        step: StepId,
    },
    /// Rollback dependency: roll `instance` back to `origin`.
    RollbackDep {
        instance: InstanceId,
        origin: StepId,
    },
}

/// The centralized/parallel control message set.
#[derive(Debug, Clone, PartialEq)]
pub enum CentralMsg {
    // ---- administrative interface (external → engine) ----
    WorkflowStart {
        instance: InstanceId,
        inputs: Vec<(ItemKey, Value)>,
    },
    WorkflowChangeInputs {
        instance: InstanceId,
        new_inputs: Vec<(ItemKey, Value)>,
    },
    WorkflowAbort {
        instance: InstanceId,
    },
    WorkflowStatus {
        instance: InstanceId,
    },

    // ---- engine → agent ----
    /// Execute a step's program.
    ExecRequest {
        instance: InstanceId,
        step: StepId,
        program: String,
        inputs: Vec<Option<Value>>,
        attempt: u32,
        /// Charged at the agent on success (the program's cost).
        cost: u64,
    },
    /// Load probe to the non-chosen eligible agents (scatter half).
    StateProbe {
        token: u64,
    },
    /// Compensate a previously executed step.
    CompensateRequest {
        instance: InstanceId,
        step: StepId,
        program: Option<String>,
        partial: bool,
        /// The mechanism this compensation belongs to (failure vs abort),
        /// so replies are attributed correctly.
        for_abort: bool,
    },

    // ---- agent → engine ----
    ExecResult {
        instance: InstanceId,
        step: StepId,
        attempt: u32,
        outputs: Option<Vec<Value>>,
        error: Option<String>,
    },
    StateProbeReply {
        token: u64,
        load: u64,
    },
    CompensateResult {
        instance: InstanceId,
        step: StepId,
        for_abort: bool,
    },

    // ---- engine ↔ engine (parallel only) ----
    Coord(CoordMsg),
    /// Nested workflow hand-off between owner engines.
    ChildStart {
        child: InstanceId,
        inputs: Vec<(ItemKey, Value)>,
        parent: InstanceId,
        parent_step: StepId,
    },
    ChildDone {
        parent: InstanceId,
        parent_step: StepId,
        outputs: Vec<Value>,
    },

    // ---- live migration (crew-shard, parallel only) ----
    /// Balancer → source engine: freeze `instance` and hand it over to
    /// engine index `target`. Handler atomicity is the freeze: the
    /// instance's state is exported and dropped before any further message
    /// can touch it.
    MigrateRequest {
        instance: InstanceId,
        target: u32,
    },
    /// Source → target engine: the instance's command-log slice — every
    /// journaled input that shaped it, as `(from_node, payload)` pairs in
    /// wire encoding. The target replays them through the normal handlers
    /// (the WFDB recovery machinery) to rebuild the instance in place.
    MigrateState {
        instance: InstanceId,
        records: Vec<(u32, Vec<u8>)>,
    },
    /// Target → source engine: installation complete.
    MigrateAck {
        instance: InstanceId,
    },
    /// Target → every other engine: routing update so in-flight traffic
    /// chases the instance with at most one forwarding hop.
    OwnerChanged {
        instance: InstanceId,
        owner: u32,
    },
}

impl CentralMsg {
    /// Every instance this message is addressed *about* — the owner-routing
    /// key set. [`Classify::instance`] reports one instance for metrics
    /// attribution; coordination traffic can concern two (both sides of a
    /// relative order, a parent and child). Migration control and probe
    /// traffic mention none: they are point-to-point engine messages that
    /// must never be re-routed through forwarding.
    pub fn mentions(&self) -> Vec<InstanceId> {
        match self {
            CentralMsg::WorkflowStart { instance, .. }
            | CentralMsg::WorkflowChangeInputs { instance, .. }
            | CentralMsg::WorkflowAbort { instance }
            | CentralMsg::WorkflowStatus { instance }
            | CentralMsg::ExecRequest { instance, .. }
            | CentralMsg::CompensateRequest { instance, .. }
            | CentralMsg::ExecResult { instance, .. }
            | CentralMsg::CompensateResult { instance, .. }
            | CentralMsg::MigrateRequest { instance, .. } => vec![*instance],
            CentralMsg::Coord(c) => match c {
                CoordMsg::RoFirstDone {
                    claimant, partner, ..
                } => vec![*claimant, *partner],
                CoordMsg::RoDecision { a, b, .. } => vec![*a, *b],
                CoordMsg::RoRelease { lagging, .. } => vec![*lagging],
                CoordMsg::MutexAcquire { instance, .. }
                | CoordMsg::MutexGrant { instance, .. }
                | CoordMsg::MutexRelease { instance, .. }
                | CoordMsg::RollbackDep { instance, .. } => vec![*instance],
            },
            // ChildStart mentions only the child it creates: the parent's
            // half of the interaction (pending_nested) is rebuilt by the
            // parent's own command log, and routing is to the child's side.
            CentralMsg::ChildStart { child, .. } => vec![*child],
            CentralMsg::ChildDone { parent, .. } => vec![*parent],
            CentralMsg::StateProbe { .. }
            | CentralMsg::StateProbeReply { .. }
            | CentralMsg::MigrateState { .. }
            | CentralMsg::MigrateAck { .. }
            | CentralMsg::OwnerChanged { .. } => vec![],
        }
    }

    /// Whether this message is addressed to a per-requirement *manager*
    /// engine (`req % e`) rather than to an instance's owner. The manager
    /// role is placement-independent and never migrates, so these must
    /// never be forwarded even when every instance they mention has moved.
    pub fn manager_bound(&self) -> bool {
        matches!(
            self,
            CentralMsg::Coord(
                CoordMsg::RoFirstDone { .. }
                    | CoordMsg::MutexAcquire { .. }
                    | CoordMsg::MutexRelease { .. }
            )
        )
    }
}

impl Classify for CentralMsg {
    fn kind(&self) -> &'static str {
        match self {
            CentralMsg::WorkflowStart { .. } => "WorkflowStart",
            CentralMsg::WorkflowChangeInputs { .. } => "WorkflowChangeInputs",
            CentralMsg::WorkflowAbort { .. } => "WorkflowAbort",
            CentralMsg::WorkflowStatus { .. } => "WorkflowStatus",
            CentralMsg::ExecRequest { .. } => "ExecRequest",
            CentralMsg::StateProbe { .. } => "StateProbe",
            CentralMsg::CompensateRequest { .. } => "CompensateRequest",
            CentralMsg::ExecResult { .. } => "ExecResult",
            CentralMsg::StateProbeReply { .. } => "StateProbeReply",
            CentralMsg::CompensateResult { .. } => "CompensateResult",
            CentralMsg::Coord(c) => match c {
                CoordMsg::RoFirstDone { .. } => "Coord.RoFirstDone",
                CoordMsg::RoDecision { .. } => "Coord.RoDecision",
                CoordMsg::RoRelease { .. } => "Coord.RoRelease",
                CoordMsg::MutexAcquire { .. } => "Coord.MutexAcquire",
                CoordMsg::MutexGrant { .. } => "Coord.MutexGrant",
                CoordMsg::MutexRelease { .. } => "Coord.MutexRelease",
                CoordMsg::RollbackDep { .. } => "Coord.RollbackDep",
            },
            CentralMsg::ChildStart { .. } => "ChildStart",
            CentralMsg::ChildDone { .. } => "ChildDone",
            CentralMsg::MigrateRequest { .. } => "MigrateRequest",
            CentralMsg::MigrateState { .. } => "MigrateState",
            CentralMsg::MigrateAck { .. } => "MigrateAck",
            CentralMsg::OwnerChanged { .. } => "OwnerChanged",
        }
    }

    fn mechanism(&self) -> Mechanism {
        match self {
            CentralMsg::WorkflowStart { .. }
            | CentralMsg::WorkflowStatus { .. }
            | CentralMsg::ExecRequest { .. }
            | CentralMsg::StateProbe { .. }
            | CentralMsg::ExecResult { .. }
            | CentralMsg::StateProbeReply { .. }
            | CentralMsg::ChildStart { .. }
            | CentralMsg::ChildDone { .. } => Mechanism::Normal,
            CentralMsg::WorkflowChangeInputs { .. } => Mechanism::InputChange,
            CentralMsg::WorkflowAbort { .. } => Mechanism::Abort,
            CentralMsg::CompensateRequest { for_abort, .. }
            | CentralMsg::CompensateResult { for_abort, .. } => {
                if *for_abort {
                    Mechanism::Abort
                } else {
                    Mechanism::FailureHandling
                }
            }
            CentralMsg::Coord(CoordMsg::RollbackDep { .. }) => Mechanism::FailureHandling,
            CentralMsg::Coord(_) => Mechanism::CoordinatedExecution,
            CentralMsg::MigrateRequest { .. }
            | CentralMsg::MigrateState { .. }
            | CentralMsg::MigrateAck { .. }
            | CentralMsg::OwnerChanged { .. } => Mechanism::Control,
        }
    }

    fn instance(&self) -> Option<InstanceId> {
        match self {
            CentralMsg::WorkflowStart { instance, .. }
            | CentralMsg::WorkflowChangeInputs { instance, .. }
            | CentralMsg::WorkflowAbort { instance }
            | CentralMsg::WorkflowStatus { instance }
            | CentralMsg::ExecRequest { instance, .. }
            | CentralMsg::CompensateRequest { instance, .. }
            | CentralMsg::ExecResult { instance, .. }
            | CentralMsg::CompensateResult { instance, .. } => Some(*instance),
            CentralMsg::Coord(c) => match c {
                CoordMsg::RoFirstDone { claimant, .. } => Some(*claimant),
                CoordMsg::RoDecision { a, .. } => Some(*a),
                CoordMsg::RoRelease { lagging, .. } => Some(*lagging),
                CoordMsg::MutexAcquire { instance, .. }
                | CoordMsg::MutexGrant { instance, .. }
                | CoordMsg::MutexRelease { instance, .. } => Some(*instance),
                CoordMsg::RollbackDep { instance, .. } => Some(*instance),
            },
            CentralMsg::ChildStart { child, .. } => Some(*child),
            CentralMsg::ChildDone { parent, .. } => Some(*parent),
            CentralMsg::MigrateRequest { instance, .. }
            | CentralMsg::MigrateState { instance, .. }
            | CentralMsg::MigrateAck { instance }
            | CentralMsg::OwnerChanged { instance, .. } => Some(*instance),
            CentralMsg::StateProbe { .. } | CentralMsg::StateProbeReply { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaId;

    fn inst() -> InstanceId {
        InstanceId::new(SchemaId(1), 1)
    }

    #[test]
    fn mechanisms_partition() {
        assert_eq!(
            CentralMsg::ExecRequest {
                instance: inst(),
                step: StepId(1),
                program: "p".into(),
                inputs: vec![],
                attempt: 1,
                cost: 1,
            }
            .mechanism(),
            Mechanism::Normal
        );
        assert_eq!(
            CentralMsg::CompensateRequest {
                instance: inst(),
                step: StepId(1),
                program: None,
                partial: false,
                for_abort: true,
            }
            .mechanism(),
            Mechanism::Abort
        );
        assert_eq!(
            CentralMsg::CompensateRequest {
                instance: inst(),
                step: StepId(1),
                program: None,
                partial: false,
                for_abort: false,
            }
            .mechanism(),
            Mechanism::FailureHandling
        );
        assert_eq!(
            CentralMsg::Coord(CoordMsg::MutexAcquire {
                req: 0,
                instance: inst(),
                step: StepId(1)
            })
            .mechanism(),
            Mechanism::CoordinatedExecution
        );
        assert_eq!(
            CentralMsg::Coord(CoordMsg::RollbackDep {
                instance: inst(),
                origin: StepId(1)
            })
            .mechanism(),
            Mechanism::FailureHandling
        );
    }

    #[test]
    fn probe_has_no_instance() {
        assert_eq!(CentralMsg::StateProbe { token: 1 }.instance(), None);
        assert_eq!(
            CentralMsg::WorkflowAbort { instance: inst() }.instance(),
            Some(inst())
        );
    }
}
