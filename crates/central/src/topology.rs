//! Node layout of centralized/parallel deployments.
//!
//! Agents occupy node ids `0..z`; engines occupy `z..z+e`. Centralized
//! control is the `e = 1` special case (Figure 6a vs 6b).

use crew_model::{AgentId, InstanceId};
use crew_shard::Ring;
use crew_simnet::NodeId;

/// How new instances are assigned to engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// The paper's static assignment: `hash(instance) mod e`.
    Modulo,
    /// Seeded consistent-hash ring with `vnodes` virtual nodes per engine
    /// (crew-shard): resizing the fleet remaps only `~1/e` of the
    /// instance space, and placement composes with live migration.
    ConsistentHash {
        /// Virtual nodes per engine (clamped by the ring's slot budget).
        vnodes: u16,
    },
}

/// Node layout and instance-ownership function.
#[derive(Debug, Clone, Copy)]
pub struct Topology {
    /// Number of application agents (`z`).
    pub agents: u32,
    /// Number of engines (`e`; 1 = centralized).
    pub engines: u32,
    /// Consistent-hash ring, when placement is not the static modulo.
    ring: Option<Ring>,
}

impl Topology {
    pub fn new(agents: u32, engines: u32) -> Self {
        assert!(engines >= 1, "at least one engine");
        Topology {
            agents,
            engines,
            ring: None,
        }
    }

    /// A topology using the given placement strategy. `seed` feeds the
    /// ring layout so placement is deterministic per deployment.
    pub fn with_placement(
        agents: u32,
        engines: u32,
        strategy: PlacementStrategy,
        seed: u64,
    ) -> Self {
        let mut topo = Topology::new(agents, engines);
        if let PlacementStrategy::ConsistentHash { vnodes } = strategy {
            topo.ring = Some(Ring::new(engines, seed, vnodes));
        }
        topo
    }

    /// The active placement strategy.
    pub fn placement(&self) -> PlacementStrategy {
        match self.ring {
            None => PlacementStrategy::Modulo,
            Some(r) => PlacementStrategy::ConsistentHash {
                vnodes: (r.slot_count() / self.engines as usize) as u16,
            },
        }
    }

    /// Node hosting an application agent.
    pub fn agent_node(&self, agent: AgentId) -> NodeId {
        debug_assert!(agent.0 < self.agents);
        NodeId(agent.0)
    }

    /// Node hosting engine `index`.
    pub fn engine_node(&self, index: u32) -> NodeId {
        debug_assert!(index < self.engines);
        NodeId(self.agents + index)
    }

    /// The engine owning an instance: "Each workflow instance ... is
    /// controlled by only one workflow engine" (§6). This is the
    /// *placement* owner — under live migration an instance may currently
    /// be hosted elsewhere, in which case the placement owner forwards.
    pub fn owner_engine(&self, instance: InstanceId) -> u32 {
        if self.engines == 1 {
            return 0;
        }
        if let Some(ring) = &self.ring {
            return ring.owner(instance);
        }
        let h =
            crew_exec::hash::combine(0xE17A, &[instance.schema.0 as u64, instance.serial as u64]);
        (h % self.engines as u64) as u32
    }

    /// All engine node ids.
    pub fn engine_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.engines).map(|i| self.engine_node(i))
    }

    /// All agent node ids.
    pub fn agent_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.agents).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaId;

    #[test]
    fn layout() {
        let t = Topology::new(5, 2);
        assert_eq!(t.agent_node(AgentId(4)), NodeId(4));
        assert_eq!(t.engine_node(0), NodeId(5));
        assert_eq!(t.engine_node(1), NodeId(6));
        assert_eq!(t.engine_nodes().count(), 2);
        assert_eq!(t.agent_nodes().count(), 5);
    }

    #[test]
    fn central_owns_everything() {
        let t = Topology::new(3, 1);
        for n in 0..100 {
            assert_eq!(t.owner_engine(InstanceId::new(SchemaId(1), n)), 0);
        }
    }

    #[test]
    fn parallel_spreads_ownership() {
        let t = Topology::new(3, 4);
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..100 {
            let e = t.owner_engine(InstanceId::new(SchemaId(1), n));
            assert!(e < 4);
            seen.insert(e);
        }
        assert_eq!(seen.len(), 4, "all engines get instances");
    }

    #[test]
    fn consistent_hash_placement_spreads_and_differs_from_modulo() {
        let modulo = Topology::new(3, 4);
        let ring =
            Topology::with_placement(3, 4, PlacementStrategy::ConsistentHash { vnodes: 32 }, 42);
        assert_eq!(
            ring.placement(),
            PlacementStrategy::ConsistentHash { vnodes: 32 }
        );
        assert_eq!(modulo.placement(), PlacementStrategy::Modulo);
        let mut seen = std::collections::BTreeSet::new();
        let mut differs = false;
        for n in 0..200 {
            let i = InstanceId::new(SchemaId(1), n);
            let e = ring.owner_engine(i);
            assert!(e < 4);
            seen.insert(e);
            differs |= e != modulo.owner_engine(i);
        }
        assert_eq!(seen.len(), 4, "all engines get instances");
        assert!(differs, "ring layout is a genuinely different assignment");
    }

    #[test]
    fn ring_placement_is_deterministic_per_seed() {
        let a = Topology::with_placement(1, 8, PlacementStrategy::ConsistentHash { vnodes: 16 }, 7);
        let b = Topology::with_placement(1, 8, PlacementStrategy::ConsistentHash { vnodes: 16 }, 7);
        for n in 0..300 {
            let i = InstanceId::new(SchemaId(3), n);
            assert_eq!(a.owner_engine(i), b.owner_engine(i));
        }
    }
}
