//! Node layout of centralized/parallel deployments.
//!
//! Agents occupy node ids `0..z`; engines occupy `z..z+e`. Centralized
//! control is the `e = 1` special case (Figure 6a vs 6b).

use crew_model::{AgentId, InstanceId};
use crew_simnet::NodeId;

/// Node layout and instance-ownership function.
#[derive(Debug, Clone, Copy)]
pub struct Topology {
    /// Number of application agents (`z`).
    pub agents: u32,
    /// Number of engines (`e`; 1 = centralized).
    pub engines: u32,
}

impl Topology {
    pub fn new(agents: u32, engines: u32) -> Self {
        assert!(engines >= 1, "at least one engine");
        Topology { agents, engines }
    }

    /// Node hosting an application agent.
    pub fn agent_node(&self, agent: AgentId) -> NodeId {
        debug_assert!(agent.0 < self.agents);
        NodeId(agent.0)
    }

    /// Node hosting engine `index`.
    pub fn engine_node(&self, index: u32) -> NodeId {
        debug_assert!(index < self.engines);
        NodeId(self.agents + index)
    }

    /// The engine owning an instance: "Each workflow instance ... is
    /// controlled by only one workflow engine" (§6).
    pub fn owner_engine(&self, instance: InstanceId) -> u32 {
        if self.engines == 1 {
            return 0;
        }
        let h =
            crew_exec::hash::combine(0xE17A, &[instance.schema.0 as u64, instance.serial as u64]);
        (h % self.engines as u64) as u32
    }

    /// All engine node ids.
    pub fn engine_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.engines).map(|i| self.engine_node(i))
    }

    /// All agent node ids.
    pub fn agent_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.agents).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaId;

    #[test]
    fn layout() {
        let t = Topology::new(5, 2);
        assert_eq!(t.agent_node(AgentId(4)), NodeId(4));
        assert_eq!(t.engine_node(0), NodeId(5));
        assert_eq!(t.engine_node(1), NodeId(6));
        assert_eq!(t.engine_nodes().count(), 2);
        assert_eq!(t.agent_nodes().count(), 5);
    }

    #[test]
    fn central_owns_everything() {
        let t = Topology::new(3, 1);
        for n in 0..100 {
            assert_eq!(t.owner_engine(InstanceId::new(SchemaId(1), n)), 0);
        }
    }

    #[test]
    fn parallel_spreads_ownership() {
        let t = Topology::new(3, 4);
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..100 {
            let e = t.owner_engine(InstanceId::new(SchemaId(1), n));
            assert!(e < 4);
            seen.insert(e);
        }
        assert_eq!(seen.len(), 4, "all engines get instances");
    }
}
