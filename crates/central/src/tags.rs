//! The wire-tag space of the centralized/parallel codec.
//!
//! Every [`crate::CentralMsg`] / [`crate::CoordMsg`] variant owns exactly
//! one `u8` discriminant on the wire, allocated here (in the style of
//! `crew-distributed`'s central tag registry) so additions cannot collide
//! silently: the uniqueness test below fails the build-time suite on any
//! duplicate, and the codec round-trip proptests exercise each one.

/// `CentralMsg` discriminants.
pub mod central {
    pub const WORKFLOW_START: u8 = 0;
    pub const WORKFLOW_CHANGE_INPUTS: u8 = 1;
    pub const WORKFLOW_ABORT: u8 = 2;
    pub const WORKFLOW_STATUS: u8 = 3;
    pub const EXEC_REQUEST: u8 = 4;
    pub const STATE_PROBE: u8 = 5;
    pub const COMPENSATE_REQUEST: u8 = 6;
    pub const EXEC_RESULT: u8 = 7;
    pub const STATE_PROBE_REPLY: u8 = 8;
    pub const COMPENSATE_RESULT: u8 = 9;
    pub const COORD: u8 = 10;
    pub const CHILD_START: u8 = 11;
    pub const CHILD_DONE: u8 = 12;
    // Live-migration protocol (crew-shard).
    pub const MIGRATE_REQUEST: u8 = 13;
    pub const MIGRATE_STATE: u8 = 14;
    pub const MIGRATE_ACK: u8 = 15;
    pub const OWNER_CHANGED: u8 = 16;

    /// Every allocated `CentralMsg` tag, for exhaustiveness checks.
    pub const ALL: [u8; 17] = [
        WORKFLOW_START,
        WORKFLOW_CHANGE_INPUTS,
        WORKFLOW_ABORT,
        WORKFLOW_STATUS,
        EXEC_REQUEST,
        STATE_PROBE,
        COMPENSATE_REQUEST,
        EXEC_RESULT,
        STATE_PROBE_REPLY,
        COMPENSATE_RESULT,
        COORD,
        CHILD_START,
        CHILD_DONE,
        MIGRATE_REQUEST,
        MIGRATE_STATE,
        MIGRATE_ACK,
        OWNER_CHANGED,
    ];
}

/// `CoordMsg` discriminants (nested under [`central::COORD`]).
pub mod coord {
    pub const RO_FIRST_DONE: u8 = 0;
    pub const RO_DECISION: u8 = 1;
    pub const RO_RELEASE: u8 = 2;
    pub const MUTEX_ACQUIRE: u8 = 3;
    pub const MUTEX_GRANT: u8 = 4;
    pub const MUTEX_RELEASE: u8 = 5;
    pub const ROLLBACK_DEP: u8 = 6;

    /// Every allocated `CoordMsg` tag, for exhaustiveness checks.
    pub const ALL: [u8; 7] = [
        RO_FIRST_DONE,
        RO_DECISION,
        RO_RELEASE,
        MUTEX_ACQUIRE,
        MUTEX_GRANT,
        MUTEX_RELEASE,
        ROLLBACK_DEP,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_unique(tags: &[u8]) -> bool {
        let set: std::collections::BTreeSet<u8> = tags.iter().copied().collect();
        set.len() == tags.len()
    }

    #[test]
    fn tag_spaces_have_no_collisions() {
        assert!(all_unique(&central::ALL));
        assert!(all_unique(&coord::ALL));
    }

    #[test]
    fn tags_are_dense_from_zero() {
        // Dense allocation keeps the BadTag error range meaningful: any
        // byte >= ALL.len() is provably unassigned.
        for (i, t) in central::ALL.iter().enumerate() {
            assert_eq!(*t as usize, i);
        }
        for (i, t) in coord::ALL.iter().enumerate() {
            assert_eq!(*t as usize, i);
        }
    }
}
