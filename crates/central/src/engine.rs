//! The workflow engine of centralized and parallel control.
//!
//! One engine manages every instance it owns: it holds the complete rule
//! set, data table and execution history per instance (backed by the
//! WFDB), navigates by firing rules, dispatches step programs to
//! application agents, and runs every recovery and coordination mechanism
//! *locally* — which is why centralized control needs zero coordination
//! messages (Table 4) but concentrates all navigation load on one node.
//!
//! Under parallel control (§6) several engines each run this same node
//! class; an instance is owned by `hash(instance) mod e`. Coordination
//! requirements spanning instances on different engines are mediated by a
//! per-requirement *manager engine* through [`CoordMsg`] traffic — the
//! source of Table 5's coordinated-execution message count.

use crate::msg::{CentralMsg, CoordMsg};
use crate::topology::Topology;
use bytes::Bytes;
use crew_exec::{ocr_decide, Deployment, InstanceHistory, OcrDecision, StepState, Weight};
use crew_model::{
    DataEnv, InstanceId, ItemKey, SchemaStep, SplitKind, StepId, Value, WorkflowSchema,
};
use crew_rules::{compile_schema, Action, EventKind, RuleId, RuleSet};
use crew_simnet::{Ctx, Node, NodeId};
use crew_storage::{
    recover_for_node, AgentDb, DbOp, Decode, Encode, InstanceStatus, MemStore, StoredStepState, Wal,
};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Why a compensation was queued (drives message attribution and what
/// happens when the queue drains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompReason {
    Failure,
    Abort,
    BranchSwitch,
}

#[derive(Debug, Clone)]
struct CompItem {
    step: StepId,
    partial: bool,
    reason: CompReason,
}

/// Per-instance engine state.
#[derive(Debug, Default)]
struct EngineInst {
    rules: RuleSet,
    data: DataEnv,
    history: InstanceHistory,
    rule_ids: BTreeMap<StepId, Vec<RuleId>>,
    committed: bool,
    aborted: bool,
    terminal_weights: BTreeMap<StepId, Weight>,
    /// Incoming flow weight per step, keyed by source step (re-executions
    /// replace their slot instead of double-counting at joins). The
    /// workflow's initial token uses `StepId(0)`.
    weight_in: BTreeMap<StepId, BTreeMap<StepId, Weight>>,
    branch_choice: BTreeMap<StepId, StepId>,
    rollback_counts: BTreeMap<StepId, u32>,
    /// Steps whose program execution is in flight: step → attempt.
    pending_exec: BTreeMap<StepId, u32>,
    /// Ordered compensation work; processed one item at a time so
    /// dependent sets compensate in reverse execution order.
    comp_queue: VecDeque<CompItem>,
    comp_active: bool,
    /// Origin to re-execute once the compensation queue drains.
    reexec_after_comp: Option<StepId>,
    parent: Option<(InstanceId, StepId)>,
    pending_nested: BTreeMap<StepId, InstanceId>,
    /// Steps deferred on a coordination guard.
    ro_waiting: BTreeSet<StepId>,
    mutex_waiting: BTreeSet<StepId>,
    /// Steps invalidated by a rollback and not yet revisited — the OCR
    /// decision applies exactly to these; re-firings outside a rollback
    /// (loop iterations) always execute fresh.
    revisit_pending: BTreeSet<StepId>,
}

/// Relative-order decision as known at an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoState {
    Undecided,
    /// Side 0 (the requirement's first components) leads.
    SideALeads,
    SideBLeads,
}

/// The engine node.
pub struct Engine {
    /// This engine's index (0 for centralized control).
    pub index: u32,
    topo: Topology,
    deployment: Arc<Deployment>,
    instances: BTreeMap<InstanceId, EngineInst>,
    templates: BTreeMap<crew_model::SchemaId, Arc<Vec<crew_rules::TemplateRule>>>,
    /// Instance status summary (the WFDB instance summary table).
    pub statuses: BTreeMap<InstanceId, InstanceStatus>,
    /// Virtual tick at which each instance first reached a terminal status
    /// (measurement instrumentation for the throughput/latency harness —
    /// not part of the recovered state machine, so it survives fail-stop
    /// crashes and is never written during replay).
    pub terminal_times: BTreeMap<InstanceId, u64>,
    /// Virtual time of the message being handled (instrumentation only;
    /// the state machine itself never reads the clock).
    clock: u64,
    // ---- coordination state ----
    /// Relative-order decisions, keyed by (req, side-0 instance, side-1
    /// instance). Present at the manager engine and mirrored at owners.
    ro_decisions: BTreeMap<(u32, InstanceId, InstanceId), RoState>,
    /// Releases received for lagging steps: (req, pair index, instance).
    ro_released: BTreeSet<(u32, usize, InstanceId)>,
    /// Mutex manager state (at the manager engine): req → holder + queue.
    mutex_holders: BTreeMap<u32, Option<(InstanceId, StepId, u32)>>,
    mutex_queues: BTreeMap<u32, VecDeque<(InstanceId, StepId, u32)>>,
    /// Grants this engine holds for its instances.
    mutex_held: BTreeSet<(u32, InstanceId, StepId)>,
    probe_token: u64,
    load: u64,
    // ---- live migration (crew-shard) ----
    /// Per-instance command log: the encoded `CentralMsg` inputs (real and
    /// synthesized) that mention each hosted instance, in delivery order.
    /// Replaying this slice through `handle` on another engine rebuilds the
    /// instance's volatile state there, which is what `MigrateState`
    /// carries. Rebuilt from the WAL on recovery, so it needs no separate
    /// persistence.
    cmd_log: BTreeMap<InstanceId, Vec<(u32, Vec<u8>)>>,
    /// Instances migrated away: where to forward their traffic.
    forwards: BTreeMap<InstanceId, u32>,
    /// Messages forwarded on behalf of migrated-away instances.
    pub forwarded_msgs: u64,
    /// Instances this engine has migrated out / accepted in.
    pub migrations_out: u64,
    pub migrations_in: u64,
    /// Accepted instances that arrived holding at least one mutex grant.
    pub migrations_in_with_mutex: u64,
    /// Messages delivered to this engine (handled, not forwarded).
    pub delivered_msgs: u64,
    /// `MigrateAck`s received for instances this engine exported.
    pub migrations_acked: u64,
    /// Set to the instance being installed while a `MigrateState` slice
    /// replays, so cross-instance effects of the replay are routed as
    /// (discarded) sends instead of re-applied to live co-hosted state.
    installing: Option<InstanceId>,
    // ---- WFDB (persistence) ----
    /// The WFDB write-ahead log. Every delivered message is journaled as a
    /// [`DbOp::EngineInput`] command *before* it is handled, alongside the
    /// table mutations it causes: the engine is a deterministic state
    /// machine over its input stream (it never reads the clock and all its
    /// hashing is seeded), so re-driving the commands with outputs
    /// discarded rebuilds every volatile structure — rule firing state,
    /// flow weights, pending dispatches, compensation queues, OCR
    /// bookkeeping, and in-flight coordination state.
    wal: Wal<DbOp, MemStore>,
    /// WFDB table projection, kept in lockstep with the log.
    db: AgentDb,
    /// True while `on_recover` re-drives journaled commands (suppresses
    /// appends; the replay context's outputs are discarded by the caller).
    replaying: bool,
    /// Set when WAL recovery fails: the node goes silent (fail-stop
    /// becomes fail-silent) instead of taking down the run.
    halted: bool,
}

impl Engine {
    pub fn new(index: u32, deployment: Arc<Deployment>, topo: Topology) -> Self {
        Engine {
            index,
            topo,
            deployment,
            instances: BTreeMap::new(),
            templates: BTreeMap::new(),
            statuses: BTreeMap::new(),
            terminal_times: BTreeMap::new(),
            clock: 0,
            ro_decisions: BTreeMap::new(),
            ro_released: BTreeSet::new(),
            mutex_holders: BTreeMap::new(),
            mutex_queues: BTreeMap::new(),
            mutex_held: BTreeSet::new(),
            probe_token: 0,
            load: 0,
            cmd_log: BTreeMap::new(),
            forwards: BTreeMap::new(),
            forwarded_msgs: 0,
            migrations_out: 0,
            migrations_in: 0,
            migrations_in_with_mutex: 0,
            delivered_msgs: 0,
            migrations_acked: 0,
            installing: None,
            wal: Wal::in_memory(),
            db: AgentDb::new(),
            replaying: false,
            halted: false,
        }
    }

    fn schema(&self, instance: InstanceId) -> Arc<WorkflowSchema> {
        self.deployment.expect_schema(instance.schema).clone()
    }

    fn nav_load(&mut self, ctx: &mut Ctx<CentralMsg>) {
        let l = self.deployment.nav_load;
        self.load += l;
        ctx.add_load(l);
    }

    fn inst(&mut self, instance: InstanceId) -> &mut EngineInst {
        self.instances.entry(instance).or_default()
    }

    /// Write-ahead: journal one WFDB table mutation and apply it to the
    /// projection. During replay the record is regenerated from the
    /// command stream, so only the projection is updated.
    fn log(&mut self, op: DbOp) {
        if !self.replaying {
            // Group commit: records accumulate unsynced and are made
            // durable by the single flush at the end of `on_message`,
            // before any handler output leaves the node.
            self.wal
                .append_nosync(&op)
                .expect("in-memory WAL append cannot fail");
        }
        self.db.apply(&op);
    }

    /// Update the instance summary table, journaling the change.
    fn set_status(&mut self, instance: InstanceId, status: InstanceStatus) {
        self.statuses.insert(instance, status);
        if status != InstanceStatus::Executing {
            // Terminal instances never migrate, so their command log —
            // kept only to feed a future MigrateState export — can go.
            self.cmd_log.remove(&instance);
            if !self.replaying {
                // First terminal transition wins: re-executions after an
                // input change must not move the completion time.
                self.terminal_times.entry(instance).or_insert(self.clock);
            }
        }
        self.log(DbOp::StatusChanged { instance, status });
    }

    /// Total navigation load charged so far.
    pub fn total_load(&self) -> u64 {
        self.load
    }

    /// Instance status (the administrative `WorkflowStatus` interface; the
    /// admin tool reads the WFDB summary directly in this architecture).
    pub fn status_of(&self, instance: InstanceId) -> Option<InstanceStatus> {
        self.statuses.get(&instance).copied()
    }

    /// The instance's current data table (test introspection).
    pub fn data_of(&self, instance: InstanceId) -> Option<&DataEnv> {
        self.instances.get(&instance).map(|s| &s.data)
    }

    /// The instance's execution history (test introspection).
    pub fn history_of(&self, instance: InstanceId) -> Option<&InstanceHistory> {
        self.instances.get(&instance).map(|s| &s.history)
    }

    /// The persistent WFDB table projection (test introspection).
    pub fn db(&self) -> &AgentDb {
        &self.db
    }

    /// Whether WAL recovery failed and this engine went silent.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    // ---- live migration (crew-shard) ---------------------------------------

    /// Live (non-terminal) instances currently hosted by this engine.
    pub fn live_instances(&self) -> u64 {
        self.statuses
            .values()
            .filter(|s| **s == InstanceStatus::Executing)
            .count() as u64
    }

    /// WAL records appended so far (a proxy for WFDB write pressure).
    pub fn wal_appended(&self) -> u64 {
        self.wal.appended()
    }

    /// Instances hosted here and still executing — the candidates a
    /// balancer driver can order moved. Deterministic (BTreeMap) order.
    pub fn movable_instances(&self) -> Vec<InstanceId> {
        self.instances
            .keys()
            .filter(|i| self.statuses.get(i) == Some(&InstanceStatus::Executing))
            .copied()
            .collect()
    }

    /// Where an instance lives right now, for the local-vs-remote decision
    /// every cross-instance interaction makes: `None` means handle it with
    /// a direct call (hosted here, or about to be created here), otherwise
    /// the engine node to send to — the placement owner, or the forward
    /// target if the instance migrated away.
    ///
    /// While a `MigrateState` slice replays, effects on instances other
    /// than the one being installed already happened at the source, so
    /// they are routed as sends for the replay sink to discard.
    fn route(&self, instance: InstanceId) -> Option<NodeId> {
        if let Some(focus) = self.installing {
            if instance == focus {
                return None;
            }
            return Some(self.topo.engine_node(self.index));
        }
        if self.instances.contains_key(&instance) {
            return None;
        }
        if let Some(&e) = self.forwards.get(&instance) {
            return Some(self.topo.engine_node(e));
        }
        let owner = self.topo.owner_engine(instance);
        if owner == self.index {
            None
        } else {
            Some(self.topo.engine_node(owner))
        }
    }

    /// Record a delivered (or locally synthesized) command against every
    /// hosted instance it mentions. The per-instance command log is what a
    /// `MigrateState` export carries: replaying it through [`Self::handle`]
    /// on another engine rebuilds the instance's volatile state there. The
    /// log is itself volatile — crash recovery rebuilds it by re-driving
    /// the WAL through this same path.
    fn ingest_cmd(&mut self, from: u32, msg: &CentralMsg, payload: &[u8]) {
        if matches!(
            msg,
            CentralMsg::MigrateRequest { .. }
                | CentralMsg::MigrateState { .. }
                | CentralMsg::MigrateAck { .. }
                | CentralMsg::OwnerChanged { .. }
        ) {
            // Migration traffic describes placement, not instance state;
            // replaying a stale MigrateRequest at a new host would bounce
            // the instance right back out.
            return;
        }
        let creates = match msg {
            CentralMsg::WorkflowStart { instance, .. } => Some(*instance),
            CentralMsg::ChildStart { child, .. } => Some(*child),
            _ => None,
        };
        for inst in msg.mentions() {
            if creates == Some(inst) {
                self.cmd_log
                    .entry(inst)
                    .or_default()
                    .push((from, payload.to_vec()));
            } else if let Some(log) = self.cmd_log.get_mut(&inst) {
                log.push((from, payload.to_vec()));
            }
        }
    }

    /// Journal-equivalent of a local shortcut: when a handler takes a
    /// direct call instead of a self-send, record the message it *would*
    /// have sent against the hosted instances it mentions, so an export
    /// replays the interaction at the target. Nothing is sent and nothing
    /// is charged — non-migrating runs behave identically.
    fn synth(&mut self, msg: &CentralMsg, ctx: &Ctx<CentralMsg>) {
        if self.installing.is_some() {
            return; // the incoming slice already carries these records
        }
        let payload = msg.to_bytes().to_vec();
        self.ingest_cmd(ctx.self_id.0, msg, &payload);
    }

    // ---- instantiation -----------------------------------------------------

    fn start_instance(
        &mut self,
        instance: InstanceId,
        inputs: Vec<(ItemKey, Value)>,
        parent: Option<(InstanceId, StepId)>,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        if self.statuses.contains_key(&instance) {
            // Duplicate start (e.g. a replayed ChildStart for an instance
            // that already lives here): compiling the rules twice would
            // double-fire every step.
            return;
        }
        let schema = self.schema(instance);
        let template = self
            .templates
            .entry(instance.schema)
            .or_insert_with(|| Arc::new(compile_schema(&schema)))
            .clone();
        self.nav_load(ctx);
        self.log(DbOp::InstanceCreated { instance });
        {
            let st = self.inst(instance);
            st.parent = parent;
            for t in template.iter() {
                let id = st.rules.add_rule(t.rule.clone());
                st.rule_ids.entry(t.step).or_default().push(id);
            }
        }
        for (k, v) in inputs {
            self.log(DbOp::DataWritten {
                instance,
                key: k,
                value: v.clone(),
            });
            self.inst(instance).data.set(k, v);
        }
        {
            let st = self.inst(instance);
            st.rules.add_event(EventKind::WorkflowStart);
            st.weight_in
                .entry(schema.start_step())
                .or_default()
                .insert(StepId(0), Weight::ONE);
        }
        self.log(DbOp::EventPosted {
            instance,
            code: EventKind::WorkflowStart.code(),
        });
        self.set_status(instance, InstanceStatus::Executing);
        self.fire_rules(instance, ctx);
    }

    // ---- rule firing ---------------------------------------------------------

    fn fire_rules(&mut self, instance: InstanceId, ctx: &mut Ctx<CentralMsg>) {
        loop {
            let firings = {
                let st = self.inst(instance);
                if st.aborted {
                    return;
                }
                let data = st.data.clone();
                st.rules.fire_ready(&data)
            };
            if firings.is_empty() {
                break;
            }
            for f in firings {
                if let Action::StartStep(step) = f.action {
                    self.start_step(instance, step, ctx);
                }
            }
        }
    }

    // ---- coordination guards ---------------------------------------------------

    /// Pair index of `step` within requirement `r` for `instance`'s side,
    /// plus the canonical (a, b) pair with `partner`, if applicable.
    fn ro_position(
        &self,
        r: &crew_model::RelativeOrder,
        instance: InstanceId,
        partner: InstanceId,
        step: StepId,
    ) -> Option<(u8, usize, InstanceId, InstanceId)> {
        let (side, steps) = ro_side(r, instance, partner)?;
        let k = steps.iter().position(|&s| s == step)?;
        let (a, b) = if side == 0 {
            (instance, partner)
        } else {
            (partner, instance)
        };
        Some((side, k, a, b))
    }

    /// Should `step` of `instance` wait on a relative-order guard?
    fn ro_blocked(
        &mut self,
        instance: InstanceId,
        step: StepId,
        ctx: &mut Ctx<CentralMsg>,
    ) -> bool {
        let dep = self.deployment.clone();
        for r in &dep.coordination.relative_orders {
            for partner in dep.ro_links.partners_of(instance) {
                let Some((side, k, a, b)) = self.ro_position(r, instance, partner, step) else {
                    continue;
                };
                self.nav_load(ctx); // the coordination check itself costs
                let decision = self
                    .ro_decisions
                    .get(&(r.id, a, b))
                    .copied()
                    .unwrap_or(RoState::Undecided);
                match decision {
                    RoState::Undecided => {
                        // First pair: claim leadership at the manager (the
                        // serialization point); the step waits for the
                        // decision (leader) or the leader's completion
                        // (lagger).
                        if k == 0 {
                            let manager = self.manager_engine(r.id);
                            if manager == self.index {
                                self.ro_decide(r.id, a, b, side, ctx);
                                // Decided in our favour: re-check below.
                                let d = self.ro_decisions[&(r.id, a, b)];
                                let we_lead = matches!(
                                    (d, side),
                                    (RoState::SideALeads, 0) | (RoState::SideBLeads, 1)
                                );
                                if we_lead {
                                    continue;
                                }
                            } else {
                                ctx.send(
                                    self.topo.engine_node(manager),
                                    CentralMsg::Coord(CoordMsg::RoFirstDone {
                                        req: r.id,
                                        claimant: instance,
                                        partner,
                                    }),
                                );
                            }
                        }
                        return true;
                    }
                    RoState::SideALeads if side == 0 => {}
                    RoState::SideBLeads if side == 1 => {}
                    _ => {
                        // We lag: wait for the leading step k's release.
                        if !self.ro_released.contains(&(r.id, k, instance)) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Should `step` wait on a mutual-exclusion grant? Issues the acquire
    /// if needed.
    fn mutex_blocked(
        &mut self,
        instance: InstanceId,
        step: StepId,
        ctx: &mut Ctx<CentralMsg>,
    ) -> bool {
        let dep = self.deployment.clone();
        let mut blocked = false;
        for m in &dep.coordination.mutual_exclusions {
            if !m.members.contains(&SchemaStep::new(instance.schema, step)) {
                continue;
            }
            self.nav_load(ctx);
            if self.mutex_held.contains(&(m.id, instance, step)) {
                continue;
            }
            blocked = true;
            let manager = self.manager_engine(m.id);
            if manager == self.index {
                self.mutex_try_acquire(m.id, instance, step, self.index, ctx);
            } else {
                ctx.send(
                    self.topo.engine_node(manager),
                    CentralMsg::Coord(CoordMsg::MutexAcquire {
                        req: m.id,
                        instance,
                        step,
                    }),
                );
            }
        }
        if blocked {
            // Re-check after the grant arrives.
            let held_all = dep
                .coordination
                .mutual_exclusions
                .iter()
                .filter(|m| m.members.contains(&SchemaStep::new(instance.schema, step)))
                .all(|m| self.mutex_held.contains(&(m.id, instance, step)));
            return !held_all;
        }
        false
    }

    fn manager_engine(&self, req: u32) -> u32 {
        req % self.topo.engines
    }

    /// Manager side: grant or queue.
    fn mutex_try_acquire(
        &mut self,
        req: u32,
        instance: InstanceId,
        step: StepId,
        owner_engine: u32,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let holder = self.mutex_holders.entry(req).or_default();
        // Holder/queue identity is (instance, step); the recorded owner
        // engine is advisory and may go stale when the holder migrates.
        let same = |t: &(InstanceId, StepId, u32)| t.0 == instance && t.1 == step;
        if holder.is_none() {
            *holder = Some((instance, step, owner_engine));
            self.mutex_grant(req, instance, step, owner_engine, ctx);
        } else if !holder.as_ref().is_some_and(same) {
            let q = self.mutex_queues.entry(req).or_default();
            if !q.iter().any(same) {
                q.push_back((instance, step, owner_engine));
            }
        }
    }

    fn mutex_grant(
        &mut self,
        req: u32,
        instance: InstanceId,
        step: StepId,
        _owner_engine: u32,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        // Routed by current hosting, not the owner engine recorded at
        // acquire time: the holder may have migrated while queued.
        match self.route(instance) {
            None => {
                let terminal = {
                    let st = self.inst(instance);
                    st.aborted || st.committed
                };
                if terminal {
                    self.mutex_do_release(req, instance, step, ctx);
                    return;
                }
                self.synth(
                    &CentralMsg::Coord(CoordMsg::MutexGrant {
                        req,
                        instance,
                        step,
                    }),
                    ctx,
                );
                self.mutex_held.insert((req, instance, step));
                self.resume_waiting(instance, step, ctx);
            }
            Some(node) => ctx.send(
                node,
                CentralMsg::Coord(CoordMsg::MutexGrant {
                    req,
                    instance,
                    step,
                }),
            ),
        }
    }

    fn mutex_release(
        &mut self,
        req: u32,
        instance: InstanceId,
        step: StepId,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        self.mutex_held.remove(&(req, instance, step));
        let manager = self.manager_engine(req);
        if manager == self.index {
            self.mutex_do_release(req, instance, step, ctx);
        } else {
            ctx.send(
                self.topo.engine_node(manager),
                CentralMsg::Coord(CoordMsg::MutexRelease {
                    req,
                    instance,
                    step,
                }),
            );
        }
    }

    fn mutex_do_release(
        &mut self,
        req: u32,
        instance: InstanceId,
        step: StepId,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        // Drop any queued request of the releasing (instance, step) — an
        // aborted instance must not be granted later.
        self.mutex_queues
            .entry(req)
            .or_default()
            .retain(|(i, s, _)| !(*i == instance && *s == step));
        let holder = self.mutex_holders.entry(req).or_default();
        if matches!(holder, Some((i, s, _)) if *i == instance && *s == step) {
            *holder = self.mutex_queues.entry(req).or_default().pop_front();
            if let Some((i, s, e)) = *holder {
                self.mutex_grant(req, i, s, e, ctx);
            }
        }
    }

    fn resume_waiting(&mut self, instance: InstanceId, step: StepId, ctx: &mut Ctx<CentralMsg>) {
        let waiting = {
            let st = self.inst(instance);
            st.mutex_waiting.remove(&step) || st.ro_waiting.remove(&step)
        };
        if waiting {
            self.start_step(instance, step, ctx);
        }
    }

    /// Resume every deferred step of an instance whose guard may have
    /// cleared (after a decision or release).
    fn resume_all_ro(&mut self, instance: InstanceId, ctx: &mut Ctx<CentralMsg>) {
        let steps: Vec<StepId> = {
            let st = self.inst(instance);
            st.ro_waiting.iter().copied().collect()
        };
        for step in steps {
            self.inst(instance).ro_waiting.remove(&step);
            self.start_step(instance, step, ctx);
        }
    }

    // ---- step lifecycle -----------------------------------------------------------

    fn start_step(&mut self, instance: InstanceId, step: StepId, ctx: &mut Ctx<CentralMsg>) {
        {
            let st = self.inst(instance);
            if st.aborted || st.pending_exec.contains_key(&step) {
                return;
            }
        }
        if self.ro_blocked(instance, step, ctx) {
            self.inst(instance).ro_waiting.insert(step);
            return;
        }
        if self.mutex_blocked(instance, step, ctx) {
            self.inst(instance).mutex_waiting.insert(step);
            return;
        }
        let schema = self.schema(instance);
        if let Some(&child_schema) = schema.nested.get(&step) {
            self.launch_nested(instance, step, child_schema, ctx);
            return;
        }
        let def = schema.expect_step(step).clone();
        let is_revisit = self.inst(instance).revisit_pending.remove(&step);
        let decision = if is_revisit {
            let plan = self.deployment.plan.clone();
            let st = self.inst(instance);
            ocr_decide(&def, instance, &st.history, &st.data, &plan)
        } else {
            OcrDecision::ExecuteFresh
        };
        match decision {
            OcrDecision::Reuse => self.after_step_done(instance, step, ctx),
            OcrDecision::ExecuteFresh => self.dispatch(instance, &def, ctx),
            OcrDecision::PartialCompensateIncrementalReexec
            | OcrDecision::CompleteCompensateCompleteReexec => {
                let partial = decision == OcrDecision::PartialCompensateIncrementalReexec;
                // Compensation dependent set: queue the members executed
                // after `step` in reverse execution order first.
                let mut items: Vec<CompItem> = Vec::new();
                if let Some(set) = schema.compensation_set_of(step) {
                    let members: Vec<StepId> = set.members.iter().copied().collect();
                    let ordered = {
                        let st = self.inst(instance);
                        st.history.members_reverse_order(&members)
                    };
                    let my_seq = self
                        .inst(instance)
                        .history
                        .record(step)
                        .map(|r| r.seq)
                        .unwrap_or(0);
                    for m in ordered {
                        let seq = self
                            .inst(instance)
                            .history
                            .record(m)
                            .map(|r| r.seq)
                            .unwrap_or(0);
                        if m != step && seq > my_seq {
                            items.push(CompItem {
                                step: m,
                                partial: false,
                                reason: CompReason::Failure,
                            });
                        }
                    }
                }
                items.push(CompItem {
                    step,
                    partial,
                    reason: CompReason::Failure,
                });
                {
                    let st = self.inst(instance);
                    st.comp_queue.extend(items);
                    st.reexec_after_comp = Some(step);
                }
                self.pump_comp_queue(instance, ctx);
            }
        }
    }

    /// Send the next queued compensation to its agent (or apply it locally
    /// when the step has no compensation program).
    fn pump_comp_queue(&mut self, instance: InstanceId, ctx: &mut Ctx<CentralMsg>) {
        loop {
            let item = {
                let st = self.inst(instance);
                if st.comp_active {
                    return;
                }
                st.comp_queue.pop_front()
            };
            let Some(item) = item else {
                // Queue drained: re-execute the deferred origin, if any.
                let origin = self.inst(instance).reexec_after_comp.take();
                if let Some(origin) = origin {
                    let def = self.schema(instance).expect_step(origin).clone();
                    self.dispatch(instance, &def, ctx);
                }
                return;
            };
            let schema = self.schema(instance);
            let def = schema.expect_step(item.step).clone();
            let done = self.inst(instance).history.state(item.step) == StepState::Done;
            if !done {
                continue; // not executed: nothing to undo
            }
            self.nav_load(ctx);
            if let Some(program) = def.compensation_program.clone() {
                let agent = crew_exec::hash::combine(
                    self.deployment.seed,
                    &[
                        instance.schema.0 as u64,
                        instance.serial as u64,
                        item.step.0 as u64,
                    ],
                ) % def.eligible_agents.len() as u64;
                let agent = def.eligible_agents[agent as usize];
                self.inst(instance).comp_active = true;
                ctx.send(
                    self.topo.agent_node(agent),
                    CentralMsg::CompensateRequest {
                        instance,
                        step: item.step,
                        program: Some(program),
                        partial: item.partial,
                        for_abort: item.reason == CompReason::Abort,
                    },
                );
                return; // wait for CompensateResult
            }
            // No compensation program: bookkeeping only.
            self.apply_compensation(instance, item.step, ctx);
        }
    }

    /// Local effects of a completed compensation.
    fn apply_compensation(
        &mut self,
        instance: InstanceId,
        step: StepId,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let schema = self.schema(instance);
        let attempt = self
            .instances
            .get(&instance)
            .and_then(|st| st.history.record(step))
            .map(|r| r.attempt)
            .unwrap_or(0);
        {
            let st = self.inst(instance);
            st.data.clear_step_outputs(step);
            st.history.record_compensated(step);
            st.rules.add_event(EventKind::StepCompensated(step));
            st.rules.invalidate_event(EventKind::StepDone(step));
            for arc_to in schema
                .forward_outgoing(step)
                .map(|a| a.to)
                .collect::<Vec<_>>()
            {
                if let Some(slots) = st.weight_in.get_mut(&arc_to) {
                    slots.remove(&step);
                }
            }
            if schema.terminal_steps().contains(&step) {
                st.terminal_weights.insert(step, Weight::ZERO);
            }
        }
        self.log(DbOp::StepOutputsCleared { instance, step });
        self.log(DbOp::StepRecorded {
            instance,
            step,
            state: StoredStepState::Compensated,
            attempt,
            outputs: vec![],
        });
        self.log(DbOp::EventPosted {
            instance,
            code: EventKind::StepCompensated(step).code(),
        });
        self.log(DbOp::EventInvalidated {
            instance,
            code: EventKind::StepDone(step).code(),
        });
        let _ = ctx;
    }

    /// Scatter-gather dispatch of a step's program: `ExecRequest` to the
    /// chosen executor, `StateProbe` to the other eligible agents — the
    /// `2·a` messages per step of the §6 model.
    fn dispatch(
        &mut self,
        instance: InstanceId,
        def: &crew_model::StepDef,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        self.nav_load(ctx);
        let (attempt, inputs) = {
            let st = self.inst(instance);
            let attempt = st.history.begin_attempt(def.id);
            st.pending_exec.insert(def.id, attempt);
            (attempt, st.data.project(&def.input_keys()))
        };
        self.log(DbOp::StepRecorded {
            instance,
            step: def.id,
            state: StoredStepState::Executing,
            attempt,
            outputs: vec![],
        });
        let chosen_idx = crew_exec::hash::combine(
            self.deployment.seed,
            &[
                instance.schema.0 as u64,
                instance.serial as u64,
                def.id.0 as u64,
            ],
        ) % def.eligible_agents.len() as u64;
        for (i, agent) in def.eligible_agents.iter().enumerate() {
            let node = self.topo.agent_node(*agent);
            if i as u64 == chosen_idx {
                ctx.send(
                    node,
                    CentralMsg::ExecRequest {
                        instance,
                        step: def.id,
                        program: def.program.clone(),
                        inputs: inputs.clone(),
                        attempt,
                        cost: def.cost,
                    },
                );
            } else {
                self.probe_token += 1;
                ctx.send(
                    node,
                    CentralMsg::StateProbe {
                        token: self.probe_token,
                    },
                );
            }
        }
    }

    fn on_exec_result(
        &mut self,
        instance: InstanceId,
        step: StepId,
        attempt: u32,
        outputs: Option<Vec<Value>>,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let valid = {
            let st = self.inst(instance);
            st.pending_exec.get(&step) == Some(&attempt)
        };
        if !valid {
            return; // stale result from a rolled-back attempt
        }
        self.inst(instance).pending_exec.remove(&step);
        self.nav_load(ctx);
        let schema = self.schema(instance);
        match outputs {
            Some(outputs) => {
                let def = schema.expect_step(step);
                self.log(DbOp::StepRecorded {
                    instance,
                    step,
                    state: StoredStepState::Done,
                    attempt,
                    outputs: outputs.clone(),
                });
                for (i, v) in outputs.iter().enumerate() {
                    let slot = (i + 1) as u16;
                    if slot <= def.output_slots {
                        self.log(DbOp::DataWritten {
                            instance,
                            key: ItemKey::output(step, slot),
                            value: v.clone(),
                        });
                    }
                }
                {
                    let st = self.inst(instance);
                    let inputs = st.data.project(&def.input_keys());
                    for (i, v) in outputs.iter().enumerate() {
                        let slot = (i + 1) as u16;
                        if slot <= def.output_slots {
                            st.data.set(ItemKey::output(step, slot), v.clone());
                        }
                    }
                    st.history.record_done(step, attempt, inputs, outputs);
                }
                self.after_step_done(instance, step, ctx);
            }
            None => {
                {
                    let st = self.inst(instance);
                    st.history.record_failed(step);
                    st.rules.add_event(EventKind::StepFail(step));
                }
                self.log(DbOp::StepRecorded {
                    instance,
                    step,
                    state: StoredStepState::Failed,
                    attempt,
                    outputs: vec![],
                });
                self.log(DbOp::EventPosted {
                    instance,
                    code: EventKind::StepFail(step).code(),
                });
                // Failure-policy retry: re-dispatch in place while the
                // step's budget lasts; only an exhausted budget falls
                // through to the paper's rollback machinery.
                let def = schema.expect_step(step);
                if def
                    .policy
                    .retry
                    .as_ref()
                    .is_some_and(|r| r.allows_retry_after(attempt))
                {
                    let def = def.clone();
                    self.dispatch(instance, &def, ctx);
                    return;
                }
                self.handle_failure(instance, step, ctx);
            }
        }
    }

    fn after_step_done(&mut self, instance: InstanceId, step: StepId, ctx: &mut Ctx<CentralMsg>) {
        let schema = self.schema(instance);
        {
            let st = self.inst(instance);
            st.rules.add_event(EventKind::StepDone(step));
        }
        self.log(DbOp::EventPosted {
            instance,
            code: EventKind::StepDone(step).code(),
        });
        self.ro_after_done(instance, step, ctx);
        // Mutex release.
        let dep = self.deployment.clone();
        for m in &dep.coordination.mutual_exclusions {
            if m.members.contains(&SchemaStep::new(instance.schema, step))
                && self.mutex_held.contains(&(m.id, instance, step))
            {
                self.mutex_release(m.id, instance, step, ctx);
            }
        }
        // Branch switch detection at XOR splits.
        if schema.split_kind(step) == Some(SplitKind::Xor) {
            self.detect_branch_switch(instance, step, &schema, ctx);
        }
        // Weight propagation along outgoing arcs (per-source slots so a
        // re-execution replaces rather than double-counts).
        let flow = self.flow_weight(instance, step);
        let forward: Vec<StepId> = schema.forward_outgoing(step).map(|a| a.to).collect();
        let branch_weight = match schema.split_kind(step) {
            Some(SplitKind::And) if forward.len() > 1 => flow.split(forward.len() as u64),
            _ => flow,
        };
        {
            let st = self.inst(instance);
            for t in &forward {
                st.weight_in
                    .entry(*t)
                    .or_default()
                    .insert(step, branch_weight);
            }
            for arc in schema.outgoing(step).filter(|a| a.loop_back) {
                // A loop re-enters with the same thread: the back-edge
                // replaces the head's incoming weight rather than adding a
                // second slot next to the original entry arc's.
                st.weight_in.insert(arc.to, BTreeMap::from([(step, flow)]));
            }
        }
        // Terminal: account completion weight; commit at 1.
        if schema.terminal_steps().contains(&step) {
            let flow = self.flow_weight(instance, step);
            let committed = {
                let st = self.inst(instance);
                st.terminal_weights.insert(step, flow);
                let total = st
                    .terminal_weights
                    .values()
                    .fold(Weight::ZERO, |acc, w| acc.plus(*w));
                if total.is_one() && !st.committed {
                    st.committed = true;
                    true
                } else {
                    false
                }
            };
            if committed {
                self.set_status(instance, InstanceStatus::Committed);
                let parent = self.inst(instance).parent;
                if let Some((p, pstep)) = parent {
                    let outputs = self.nested_outputs(instance);
                    match self.route(p) {
                        None => {
                            self.synth(
                                &CentralMsg::ChildDone {
                                    parent: p,
                                    parent_step: pstep,
                                    outputs: outputs.clone(),
                                },
                                ctx,
                            );
                            self.on_child_done(p, pstep, outputs, ctx);
                        }
                        Some(node) => ctx.send(
                            node,
                            CentralMsg::ChildDone {
                                parent: p,
                                parent_step: pstep,
                                outputs,
                            },
                        ),
                    }
                }
            }
        }
        self.fire_rules(instance, ctx);
    }

    /// Thread weight flowing through `step`: sum of the per-source slots,
    /// defaulting to 1.
    fn flow_weight(&mut self, instance: InstanceId, step: StepId) -> Weight {
        let st = self.inst(instance);
        match st.weight_in.get(&step) {
            Some(slots) if !slots.is_empty() => {
                slots.values().fold(Weight::ZERO, |acc, w| acc.plus(*w))
            }
            _ => Weight::ONE,
        }
    }

    fn nested_outputs(&mut self, instance: InstanceId) -> Vec<Value> {
        let schema = self.schema(instance);
        let st = self.inst(instance);
        schema
            .terminal_steps()
            .iter()
            .rev()
            .find_map(|t| st.history.record(*t).map(|r| r.outputs.clone()))
            .unwrap_or_default()
    }

    fn launch_nested(
        &mut self,
        instance: InstanceId,
        step: StepId,
        child_schema: crew_model::SchemaId,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        if self.inst(instance).pending_nested.contains_key(&step) {
            return;
        }
        let schema = self.schema(instance);
        let def = schema.expect_step(step).clone();
        let child = InstanceId::new(
            child_schema,
            instance.serial.wrapping_mul(1009).wrapping_add(step.0) | 0x4000_0000,
        );
        self.inst(instance).pending_nested.insert(step, child);
        let inputs: Vec<(ItemKey, Value)> = {
            let st = self.inst(instance);
            def.input_keys()
                .iter()
                .enumerate()
                .filter_map(|(i, k)| {
                    st.data
                        .get(k)
                        .cloned()
                        .map(|v| (ItemKey::input((i + 1) as u16), v))
                })
                .collect()
        };
        match self.route(child) {
            None => {
                self.synth(
                    &CentralMsg::ChildStart {
                        child,
                        inputs: inputs.clone(),
                        parent: instance,
                        parent_step: step,
                    },
                    ctx,
                );
                self.start_instance(child, inputs, Some((instance, step)), ctx);
            }
            Some(node) => ctx.send(
                node,
                CentralMsg::ChildStart {
                    child,
                    inputs,
                    parent: instance,
                    parent_step: step,
                },
            ),
        }
    }

    fn on_child_done(
        &mut self,
        parent: InstanceId,
        parent_step: StepId,
        outputs: Vec<Value>,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let schema = self.schema(parent);
        let def = schema.expect_step(parent_step).clone();
        {
            let st = self.inst(parent);
            st.pending_nested.remove(&parent_step);
            let attempt = st.history.begin_attempt(parent_step);
            st.history
                .record_done(parent_step, attempt, vec![], outputs.clone());
            for (i, v) in outputs.iter().enumerate() {
                let slot = (i + 1) as u16;
                if slot <= def.output_slots {
                    st.data.set(ItemKey::output(parent_step, slot), v.clone());
                }
            }
        }
        self.after_step_done(parent, parent_step, ctx);
    }

    fn detect_branch_switch(
        &mut self,
        instance: InstanceId,
        split: StepId,
        schema: &WorkflowSchema,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let data = self.inst(instance).data.clone();
        let mut chosen: Option<StepId> = None;
        let mut otherwise: Option<StepId> = None;
        for arc in schema.forward_outgoing(split) {
            match &arc.condition {
                Some(c) => {
                    if c.eval_bool(&data).unwrap_or(false) && chosen.is_none() {
                        chosen = Some(arc.to);
                    }
                }
                None => otherwise = Some(arc.to),
            }
        }
        let Some(new_head) = chosen.or(otherwise) else {
            return;
        };
        let prev = self.inst(instance).branch_choice.insert(split, new_head);
        if let Some(old_head) = prev {
            if old_head != new_head {
                // Compensate the executed steps of the abandoned branch in
                // reverse execution order.
                let members: Vec<StepId> =
                    schema.branch_steps(split, old_head).into_iter().collect();
                let ordered = {
                    let st = self.inst(instance);
                    st.history.members_reverse_order(&members)
                };
                {
                    let st = self.inst(instance);
                    for m in ordered {
                        st.comp_queue.push_back(CompItem {
                            step: m,
                            partial: false,
                            reason: CompReason::BranchSwitch,
                        });
                    }
                }
                self.pump_comp_queue(instance, ctx);
            }
        }
    }

    // ---- failure handling -------------------------------------------------------

    fn handle_failure(&mut self, instance: InstanceId, failed: StepId, ctx: &mut Ctx<CentralMsg>) {
        let schema = self.schema(instance);
        let origin = schema
            .rollback_spec_for(failed)
            .map(|r| r.origin)
            .unwrap_or(failed);
        let max_attempts = schema
            .rollback_spec_for(failed)
            .map(|r| r.max_attempts)
            .unwrap_or(3);
        {
            let exhausted = {
                let st = self.inst(instance);
                let count = st.rollback_counts.entry(origin).or_default();
                *count += 1;
                *count >= max_attempts
            };
            if exhausted {
                self.abort_instance(instance, ctx);
                return;
            }
        }
        self.rollback_to(instance, origin, false, ctx);
    }

    fn rollback_to(
        &mut self,
        instance: InstanceId,
        origin: StepId,
        from_dependency: bool,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        self.nav_load(ctx);
        let schema = self.schema(instance);
        let invalidated = schema.invalidation_set(origin);
        {
            let st = self.inst(instance);
            for &s in &invalidated {
                st.rules.invalidate_event(EventKind::StepDone(s));
                st.weight_in.remove(&s);
                st.pending_exec.remove(&s);
            }
            st.pending_exec.remove(&origin);
            for id in st.rule_ids.get(&origin).cloned().unwrap_or_default() {
                st.rules.reset_rule(id);
            }
            st.revisit_pending.insert(origin);
            st.revisit_pending.extend(invalidated.iter().copied());
        }
        for &s in &invalidated {
            self.log(DbOp::EventInvalidated {
                instance,
                code: EventKind::StepDone(s).code(),
            });
        }
        // Rollback dependencies (one level, like distributed control).
        if !from_dependency {
            let dep = self.deployment.clone();
            for rd in &dep.coordination.rollback_dependencies {
                let hit = rd.source.schema == instance.schema
                    && (rd.source.step == origin || invalidated.contains(&rd.source.step));
                if !hit {
                    continue;
                }
                for partner in dep.ro_links.partners_of(instance) {
                    if partner.schema != rd.dependent_schema {
                        continue;
                    }
                    let msg = CentralMsg::Coord(CoordMsg::RollbackDep {
                        instance: partner,
                        origin: rd.dependent_origin,
                    });
                    match self.route(partner) {
                        None => {
                            self.synth(&msg, ctx);
                            self.rollback_to(partner, rd.dependent_origin, true, ctx);
                        }
                        Some(node) => ctx.send(node, msg),
                    }
                }
            }
        }
        self.fire_rules(instance, ctx);
    }

    fn abort_instance(&mut self, instance: InstanceId, ctx: &mut Ctx<CentralMsg>) {
        let reject = {
            let st = self.inst(instance);
            st.committed || st.aborted
        };
        if reject {
            return;
        }
        self.nav_load(ctx);
        self.inst(instance).aborted = true;
        self.set_status(instance, InstanceStatus::Aborted);
        // Hand back (or de-queue) every mutex this instance may be holding
        // or waiting on — a wedged resource would deadlock the contenders.
        let dep = self.deployment.clone();
        for m in &dep.coordination.mutual_exclusions {
            for member in &m.members {
                if member.schema != instance.schema {
                    continue;
                }
                self.mutex_held.remove(&(m.id, instance, member.step));
                let manager = self.manager_engine(m.id);
                if manager == self.index {
                    self.mutex_do_release(m.id, instance, member.step, ctx);
                } else {
                    ctx.send(
                        self.topo.engine_node(manager),
                        CentralMsg::Coord(CoordMsg::MutexRelease {
                            req: m.id,
                            instance,
                            step: member.step,
                        }),
                    );
                }
            }
        }
        let schema = self.schema(instance);
        // Compensate executed compensatable steps, reverse execution order.
        let done: Vec<StepId> = {
            let st = self.inst(instance);
            st.history.done_steps_reverse_order()
        };
        let items: Vec<CompItem> = done
            .into_iter()
            .filter(|s| schema.expect_step(*s).is_compensatable())
            .map(|step| CompItem {
                step,
                partial: false,
                reason: CompReason::Abort,
            })
            .collect();
        {
            let st = self.inst(instance);
            st.comp_queue.extend(items);
            st.reexec_after_comp = None;
        }
        self.pump_comp_queue(instance, ctx);
    }

    fn change_inputs(
        &mut self,
        instance: InstanceId,
        new_inputs: Vec<(ItemKey, Value)>,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let reject = {
            let st = self.inst(instance);
            st.committed || st.aborted
        };
        if reject {
            return;
        }
        self.nav_load(ctx);
        let schema = self.schema(instance);
        let changed: BTreeSet<ItemKey> = new_inputs.iter().map(|(k, _)| *k).collect();
        {
            let st = self.inst(instance);
            for (k, v) in new_inputs {
                st.data.set(k, v);
            }
        }
        let origin = schema
            .topo_order()
            .iter()
            .copied()
            .find(|s| {
                schema
                    .expect_step(*s)
                    .input_keys()
                    .iter()
                    .any(|k| changed.contains(k))
            })
            .unwrap_or(schema.start_step());
        self.rollback_to(instance, origin, false, ctx);
    }

    // ---- relative ordering -----------------------------------------------------

    fn ro_after_done(&mut self, instance: InstanceId, step: StepId, ctx: &mut Ctx<CentralMsg>) {
        let dep = self.deployment.clone();
        for r in &dep.coordination.relative_orders {
            for partner in dep.ro_links.partners_of(instance) {
                let Some((side, k, a, b)) = self.ro_position(r, instance, partner, step) else {
                    continue;
                };
                // If we lead, a completed pair-k step releases the lagging
                // partner's step k (including the serialized first pair).
                let decision = self
                    .ro_decisions
                    .get(&(r.id, a, b))
                    .copied()
                    .unwrap_or(RoState::Undecided);
                let we_lead = matches!(
                    (decision, side),
                    (RoState::SideALeads, 0) | (RoState::SideBLeads, 1)
                );
                if we_lead {
                    let msg = CentralMsg::Coord(CoordMsg::RoRelease {
                        req: r.id,
                        k,
                        lagging: partner,
                    });
                    match self.route(partner) {
                        None => {
                            self.synth(&msg, ctx);
                            self.ro_apply_release(r.id, k, partner, ctx);
                        }
                        Some(node) => ctx.send(node, msg),
                    }
                }
            }
        }
    }

    /// Manager: first claim wins; broadcast the decision to the owner
    /// engines of both instances.
    fn ro_decide(
        &mut self,
        req: u32,
        a: InstanceId,
        b: InstanceId,
        winner_side: u8,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let key = (req, a, b);
        if self
            .ro_decisions
            .get(&key)
            .copied()
            .unwrap_or(RoState::Undecided)
            != RoState::Undecided
        {
            return;
        }
        let state = if winner_side == 0 {
            RoState::SideALeads
        } else {
            RoState::SideBLeads
        };
        self.ro_decisions.insert(key, state);
        self.nav_load(ctx);
        for inst in [a, b] {
            let msg = CentralMsg::Coord(CoordMsg::RoDecision {
                req,
                a,
                b,
                leader_side: winner_side,
            });
            match self.route(inst) {
                None => {
                    self.synth(&msg, ctx);
                    self.ro_apply_decision(req, a, b, winner_side, ctx);
                }
                Some(node) => ctx.send(node, msg),
            }
        }
    }

    fn ro_apply_decision(
        &mut self,
        req: u32,
        a: InstanceId,
        b: InstanceId,
        leader_side: u8,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let state = if leader_side == 0 {
            RoState::SideALeads
        } else {
            RoState::SideBLeads
        };
        self.ro_decisions.insert((req, a, b), state);
        // The decision may unblock deferred steps of instances we host
        // (hosting, not placement: a migrated-in instance resumes here).
        for inst in [a, b] {
            if self.instances.contains_key(&inst) {
                self.resume_all_ro(inst, ctx);
                // If the leading side already completed later pairs before
                // the decision landed, emit the pending releases now.
                let done: Vec<StepId> = self
                    .instances
                    .get(&inst)
                    .map(|st| {
                        st.history
                            .iter()
                            .filter(|r| r.state == StepState::Done)
                            .map(|r| r.step)
                            .collect()
                    })
                    .unwrap_or_default();
                for step in done {
                    self.ro_after_done_releases_only(inst, step, ctx);
                }
            }
        }
    }

    /// Re-run only the release half of [`Self::ro_after_done`] (used when a
    /// decision arrives after the leading side already progressed).
    fn ro_after_done_releases_only(
        &mut self,
        instance: InstanceId,
        step: StepId,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let dep = self.deployment.clone();
        for r in &dep.coordination.relative_orders {
            for partner in dep.ro_links.partners_of(instance) {
                let Some((side, k, a, b)) = self.ro_position(r, instance, partner, step) else {
                    continue;
                };
                let decision = self
                    .ro_decisions
                    .get(&(r.id, a, b))
                    .copied()
                    .unwrap_or(RoState::Undecided);
                let we_lead = matches!(
                    (decision, side),
                    (RoState::SideALeads, 0) | (RoState::SideBLeads, 1)
                );
                if we_lead {
                    let msg = CentralMsg::Coord(CoordMsg::RoRelease {
                        req: r.id,
                        k,
                        lagging: partner,
                    });
                    match self.route(partner) {
                        None => {
                            self.synth(&msg, ctx);
                            self.ro_apply_release(r.id, k, partner, ctx);
                        }
                        Some(node) => ctx.send(node, msg),
                    }
                }
            }
        }
    }

    fn ro_apply_release(
        &mut self,
        req: u32,
        k: usize,
        lagging: InstanceId,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        self.ro_released.insert((req, k, lagging));
        if self.instances.contains_key(&lagging) {
            self.resume_all_ro(lagging, ctx);
        }
    }

    fn on_coord(&mut self, msg: CoordMsg, ctx: &mut Ctx<CentralMsg>) {
        match msg {
            CoordMsg::RoFirstDone {
                req,
                claimant,
                partner,
            } => {
                let dep = self.deployment.clone();
                let Some(r) = dep
                    .coordination
                    .relative_orders
                    .iter()
                    .find(|r| r.id == req)
                else {
                    return;
                };
                let Some((side, _)) = ro_side(r, claimant, partner) else {
                    return;
                };
                let (a, b) = if side == 0 {
                    (claimant, partner)
                } else {
                    (partner, claimant)
                };
                self.ro_decide(req, a, b, side, ctx);
            }
            CoordMsg::RoDecision {
                req,
                a,
                b,
                leader_side,
            } => {
                self.ro_apply_decision(req, a, b, leader_side, ctx);
            }
            CoordMsg::RoRelease { req, k, lagging } => {
                self.ro_apply_release(req, k, lagging, ctx);
            }
            CoordMsg::MutexAcquire {
                req,
                instance,
                step,
            } => {
                let owner = self.topo.owner_engine(instance);
                self.mutex_try_acquire(req, instance, step, owner, ctx);
            }
            CoordMsg::MutexGrant {
                req,
                instance,
                step,
            } => {
                let terminal = {
                    let st = self.inst(instance);
                    st.aborted || st.committed
                };
                if terminal {
                    // The grant raced a terminal transition: hand it back.
                    self.mutex_release(req, instance, step, ctx);
                } else {
                    self.mutex_held.insert((req, instance, step));
                    self.resume_waiting(instance, step, ctx);
                }
            }
            CoordMsg::MutexRelease {
                req,
                instance,
                step,
            } => {
                self.mutex_do_release(req, instance, step, ctx);
            }
            CoordMsg::RollbackDep { instance, origin } => {
                self.rollback_to(instance, origin, true, ctx);
            }
        }
    }
}

/// Side and ordered steps of `mine` under requirement `r` against
/// `partner` (same contract as the distributed agent's helper).
fn ro_side(
    r: &crew_model::RelativeOrder,
    mine: InstanceId,
    partner: InstanceId,
) -> Option<(u8, Vec<StepId>)> {
    let a_schema = r.pairs.first()?.0.schema;
    let b_schema = r.pairs.first()?.1.schema;
    if mine.schema == a_schema && partner.schema == b_schema {
        if a_schema == b_schema && mine.serial > partner.serial {
            return Some((1, r.pairs.iter().map(|(_, b)| b.step).collect()));
        }
        Some((0, r.pairs.iter().map(|(a, _)| a.step).collect()))
    } else if mine.schema == b_schema && partner.schema == a_schema {
        Some((1, r.pairs.iter().map(|(_, b)| b.step).collect()))
    } else {
        None
    }
}

impl Engine {
    /// The actual message handler. [`Node::on_message`] journals the input
    /// and delegates here; [`Node::on_recover`] replays journalled inputs
    /// through here with a detached context.
    fn handle(&mut self, from: NodeId, msg: CentralMsg, ctx: &mut Ctx<CentralMsg>) {
        match msg {
            CentralMsg::WorkflowStart { instance, inputs } => {
                self.start_instance(instance, inputs, None, ctx)
            }
            CentralMsg::WorkflowChangeInputs {
                instance,
                new_inputs,
            } => self.change_inputs(instance, new_inputs, ctx),
            CentralMsg::WorkflowAbort { instance } => self.abort_instance(instance, ctx),
            CentralMsg::WorkflowStatus { .. } => {
                // The admin tool reads the WFDB summary (self.statuses)
                // directly in this architecture.
            }
            CentralMsg::ExecResult {
                instance,
                step,
                attempt,
                outputs,
                ..
            } => self.on_exec_result(instance, step, attempt, outputs, ctx),
            CentralMsg::CompensateResult { instance, step, .. } => {
                self.apply_compensation(instance, step, ctx);
                self.inst(instance).comp_active = false;
                self.pump_comp_queue(instance, ctx);
                self.fire_rules(instance, ctx);
            }
            CentralMsg::StateProbeReply { .. } => {
                // Load information feeds future dispatch choices; the
                // deterministic chooser already balances, so replies are
                // informational.
            }
            CentralMsg::Coord(c) => self.on_coord(c, ctx),
            CentralMsg::ChildStart {
                child,
                inputs,
                parent,
                parent_step,
            } => self.start_instance(child, inputs, Some((parent, parent_step)), ctx),
            CentralMsg::ChildDone {
                parent,
                parent_step,
                outputs,
            } => self.on_child_done(parent, parent_step, outputs, ctx),
            CentralMsg::MigrateRequest { instance, target } => {
                self.on_migrate_request(instance, target, ctx)
            }
            CentralMsg::MigrateState { instance, records } => {
                self.on_migrate_state(from, instance, records, ctx)
            }
            CentralMsg::MigrateAck { .. } => {
                self.migrations_acked += 1;
            }
            CentralMsg::OwnerChanged { instance, owner } => {
                if self.instances.contains_key(&instance) || owner == self.index {
                    self.forwards.remove(&instance);
                } else {
                    self.forwards.insert(instance, owner);
                }
            }
            CentralMsg::ExecRequest { .. }
            | CentralMsg::StateProbe { .. }
            | CentralMsg::CompensateRequest { .. } => {
                // Agent-bound messages; an engine receiving one is a
                // routing bug surfaced by tests.
            }
        }
    }

    // ---- migration protocol (crew-shard) -----------------------------------

    /// Source side of a live migration: freeze is implicit in handler
    /// atomicity — between receiving the request and emitting the state
    /// transfer nothing else can touch the instance. Refusal (not hosted,
    /// not executing, bogus target) is silent: the balancer observes the
    /// outcome through load stats, not replies.
    fn on_migrate_request(&mut self, instance: InstanceId, target: u32, ctx: &mut Ctx<CentralMsg>) {
        if target == self.index
            || target >= self.topo.engines
            || !self.instances.contains_key(&instance)
            || self.status_of(instance) != Some(InstanceStatus::Executing)
        {
            return;
        }
        let records = self.cmd_log.remove(&instance).unwrap_or_default();
        self.instances.remove(&instance);
        self.statuses.remove(&instance);
        // The local grant mirror travels with the instance (rebuilt from
        // the slice at the target); manager-side holder state stays put —
        // the manager role is placement-independent and never migrates.
        self.mutex_held.retain(|(_, i, _)| *i != instance);
        self.forwards.insert(instance, target);
        self.migrations_out += 1;
        ctx.send(
            self.topo.engine_node(target),
            CentralMsg::MigrateState { instance, records },
        );
    }

    /// Target side: replay the exported command slice through the normal
    /// handlers to rebuild the instance's volatile state, then ack the
    /// source and advertise the new placement. Per-channel FIFO guarantees
    /// the slice lands before any traffic the source forwards afterwards.
    fn on_migrate_state(
        &mut self,
        from: NodeId,
        instance: InstanceId,
        records: Vec<(u32, Vec<u8>)>,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        self.forwards.remove(&instance);
        let was_replaying = self.replaying;
        self.replaying = true; // suppress WAL appends: the MigrateState
                               // input record regenerates all of this
        self.installing = Some(instance);
        for (src, payload) in &records {
            let mut buf = Bytes::from(payload.clone());
            match CentralMsg::decode(&mut buf) {
                Ok(msg) => {
                    let mut sink = Ctx::detached(ctx.now, ctx.self_id);
                    self.handle(NodeId(*src), msg, &mut sink);
                }
                Err(_) => {
                    self.halted = true;
                    break;
                }
            }
        }
        self.installing = None;
        self.replaying = was_replaying;
        if self.halted {
            return;
        }
        let holds_mutex = self.mutex_held.iter().any(|(_, i, _)| *i == instance);
        self.cmd_log.insert(instance, records);
        self.migrations_in += 1;
        if holds_mutex {
            self.migrations_in_with_mutex += 1;
        }
        ctx.send(from, CentralMsg::MigrateAck { instance });
        // Advertise the new placement fleet-wide. Peers route
        // instance-bound traffic (manager decisions, ChildDone from child
        // hosts) via the static placement owner; without the broadcast
        // every such message would detour through that owner as a forward
        // — exactly the engine the balancer is usually trying to drain.
        // The source is skipped: dropping the instance left it a forwards
        // entry already.
        for e in 0..self.topo.engines {
            let node = self.topo.engine_node(e);
            if e == self.index || node == from {
                continue;
            }
            ctx.send(
                node,
                CentralMsg::OwnerChanged {
                    instance,
                    owner: self.index,
                },
            );
        }
    }
}

impl Node<CentralMsg> for Engine {
    fn on_message(&mut self, from: NodeId, msg: CentralMsg, ctx: &mut Ctx<CentralMsg>) {
        if self.halted {
            // Fail-silent: a node whose log could not be recovered serves
            // nothing rather than serving from wrong (empty) state.
            return;
        }
        // Traffic for migrated-away instances is passed along unjournaled:
        // the current owner journals it on delivery, so each input is
        // recovered exactly once, at exactly one engine. Manager-bound
        // coordination is exempt — the manager role never migrates.
        if !msg.manager_bound() {
            let mentions = msg.mentions();
            if !mentions.is_empty() && mentions.iter().all(|i| !self.instances.contains_key(i)) {
                if let Some(&e) = mentions.iter().find_map(|i| self.forwards.get(i)) {
                    self.forwarded_msgs += 1;
                    ctx.send(self.topo.engine_node(e), msg);
                    return;
                }
            }
        }
        // Write-ahead command logging: journal the input *before* handling
        // it, so every volatile structure the handler mutates can be
        // re-derived by replaying the journal after a fail-stop crash.
        // The input record and every table mutation the handler logs are
        // group-committed: one flush per delivered message, issued before
        // the simulator releases the handler's buffered sends.
        self.clock = ctx.now;
        self.delivered_msgs += 1;
        let payload = msg.to_bytes().to_vec();
        self.wal
            .append_nosync(&DbOp::EngineInput {
                from: from.0,
                payload: payload.clone(),
            })
            .expect("in-memory WAL append cannot fail");
        self.ingest_cmd(from.0, &msg, &payload);
        self.handle(from, msg, ctx);
        self.wal.flush().expect("in-memory WAL flush cannot fail");
    }

    fn on_crash(&mut self) {
        // Fail-stop: everything not on the WAL is gone.
        self.instances.clear();
        self.templates.clear();
        self.statuses.clear();
        self.ro_decisions.clear();
        self.ro_released.clear();
        self.mutex_holders.clear();
        self.mutex_queues.clear();
        self.mutex_held.clear();
        self.probe_token = 0;
        self.load = 0;
        self.cmd_log.clear();
        self.forwards.clear();
        self.forwarded_msgs = 0;
        self.migrations_out = 0;
        self.migrations_in = 0;
        self.migrations_in_with_mutex = 0;
        self.migrations_acked = 0;
        self.delivered_msgs = 0;
        self.installing = None;
        self.db = AgentDb::new();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<CentralMsg>) {
        let Some(records) = recover_for_node(&mut self.wal) else {
            self.halted = true;
            return;
        };
        self.replaying = true;
        for record in records {
            let DbOp::EngineInput { from, payload } = record else {
                // Table ops are regenerated by the commands themselves
                // (through `log`, which applies without appending).
                continue;
            };
            let mut buf = Bytes::from(payload.clone());
            match CentralMsg::decode(&mut buf) {
                Ok(msg) => {
                    // Sends, timers and load were already emitted before the
                    // crash; replay must rebuild state without repeating them.
                    self.delivered_msgs += 1;
                    self.ingest_cmd(from, &msg, &payload);
                    let mut sink = Ctx::detached(ctx.now, ctx.self_id);
                    self.handle(NodeId(from), msg, &mut sink);
                }
                Err(_) => {
                    self.halted = true;
                    break;
                }
            }
        }
        self.replaying = false;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::{AgentId, ItemKey, SchemaBuilder, SchemaId, Value};

    fn engine() -> Engine {
        let mut b = SchemaBuilder::new(SchemaId(1), "wf1").inputs(1);
        let s = b.add_step("S1", "passthrough");
        b.configure(s, |d| d.eligible_agents = vec![AgentId(0)]);
        let deployment = Deployment::new([b.build().unwrap()]);
        Engine::new(0, Arc::new(deployment), Topology::new(1, 1))
    }

    fn start(e: &mut Engine, serial: u32) -> InstanceId {
        let instance = InstanceId::new(SchemaId(1), serial);
        let mut ctx = Ctx::detached(0, NodeId(1));
        e.on_message(
            NodeId::EXTERNAL,
            CentralMsg::WorkflowStart {
                instance,
                inputs: vec![(ItemKey::input(1), Value::Int(5))],
            },
            &mut ctx,
        );
        instance
    }

    #[test]
    fn replay_rebuilds_projection_and_state() {
        let mut e = engine();
        let inst = start(&mut e, 1);
        assert!(e.instances[&inst].pending_exec.contains_key(&StepId(1)));
        assert_eq!(e.status_of(inst), Some(InstanceStatus::Executing));

        e.on_crash();
        assert!(e.instances.is_empty());
        assert!(e.status_of(inst).is_none());
        assert!(e.db().instance(inst).is_none());

        let mut ctx = Ctx::detached(10, NodeId(1));
        e.on_recover(&mut ctx);
        assert!(!e.is_halted());
        // Volatile dispatch state is back, so the in-flight ExecResult the
        // simulator re-delivers after recovery will be accepted (not
        // re-dispatched, not dropped).
        assert!(e.instances[&inst].pending_exec.contains_key(&StepId(1)));
        assert_eq!(e.status_of(inst), Some(InstanceStatus::Executing));
        assert!(e.db().instance(inst).is_some());
        assert_eq!(e.db().status(inst), Some(InstanceStatus::Executing));
    }

    #[test]
    fn unreadable_wal_halts_recovery() {
        let mut e = engine();
        start(&mut e, 1);
        e.wal.store_mut().fail_reads();
        e.on_crash();
        let mut ctx = Ctx::detached(10, NodeId(1));
        e.on_recover(&mut ctx);
        assert!(e.is_halted());
        // A halted engine ignores everything that follows.
        let inst2 = start(&mut e, 2);
        assert!(e.status_of(inst2).is_none());
    }

    // ---- live migration ----------------------------------------------------

    use crate::builder::CentralRun;
    use crew_model::{CoordinationSpec, MutualExclusion, SchemaStep};

    fn linear(id: u32, steps: u32) -> crew_model::WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(id), format!("wf{id}")).inputs(1);
        let ids: Vec<_> = (0..steps)
            .map(|i| b.add_step(format!("S{}", i + 1), "passthrough"))
            .collect();
        for w in ids.windows(2) {
            b.seq(w[0], w[1]);
        }
        for s in &ids {
            b.configure(*s, |d| d.eligible_agents = vec![AgentId(0)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn live_migration_mid_flight_commits_at_target() {
        let deployment = Deployment::new([linear(1, 4)]);
        let mut run = CentralRun::new(deployment, 1, 2);
        let inst = run.start_instance(SchemaId(1), vec![(1, Value::Int(5))]);
        let src = run.topo.owner_engine(inst);
        let dst = 1 - src;
        run.migrate_instance_at(inst, dst, 3);
        run.run();
        assert_eq!(run.statuses().get(&inst), Some(&InstanceStatus::Committed));
        assert_eq!(run.engine(src).migrations_out, 1);
        assert_eq!(run.engine(dst).migrations_in, 1);
        assert!(
            run.engine(src).forwarded_msgs >= 1,
            "in-flight agent results must chase the instance"
        );
        assert!(
            run.engine(dst).terminal_times.contains_key(&inst),
            "completion is recorded at the target"
        );
        assert!(
            !run.engine(src).statuses.contains_key(&inst),
            "the source forgets the instance"
        );
    }

    #[test]
    fn stale_migrate_request_forwards_to_current_host() {
        // After src → dst, a second order addressed to the placement owner
        // (src) must chase the instance to dst, which then exports it back.
        let deployment = Deployment::new([linear(1, 6)]);
        let mut run = CentralRun::new(deployment, 1, 2);
        let inst = run.start_instance(SchemaId(1), vec![(1, Value::Int(5))]);
        let src = run.topo.owner_engine(inst);
        let dst = 1 - src;
        run.migrate_instance_at(inst, dst, 3);
        run.migrate_instance_at(inst, src, 7);
        run.run();
        assert_eq!(run.statuses().get(&inst), Some(&InstanceStatus::Committed));
        assert_eq!(run.engine(src).migrations_out, 1);
        assert_eq!(run.engine(src).migrations_in, 1);
        assert_eq!(run.engine(dst).migrations_out, 1);
        assert_eq!(run.engine(dst).migrations_in, 1);
        assert!(
            run.engine(src).terminal_times.contains_key(&inst),
            "the instance returned home before committing"
        );
    }

    #[test]
    fn migrating_a_mutex_holder_keeps_exclusion_safe() {
        // Scan migration ticks until one lands inside the window where the
        // instance executes S2 holding the mutex — the sim is deterministic
        // per tick, so the scan is stable; the slow service cost widens the
        // window.
        let mut saw_holder_migration = false;
        for at in 1..60 {
            let mut deployment = Deployment::new([linear(1, 4)]);
            deployment.coordination = CoordinationSpec {
                mutual_exclusions: vec![MutualExclusion {
                    id: 0,
                    resource: "booth".into(),
                    members: vec![SchemaStep::new(SchemaId(1), StepId(2))],
                }],
                ..CoordinationSpec::default()
            };
            let mut run = CentralRun::new(deployment, 1, 2);
            run.sim.set_service_cost(run.topo.agent_node(AgentId(0)), 5);
            let a = run.start_instance(SchemaId(1), vec![(1, Value::Int(1))]);
            let b = run.start_instance(SchemaId(1), vec![(1, Value::Int(2))]);
            let src = run.topo.owner_engine(a);
            let dst = 1 - src;
            run.migrate_instance_at(a, dst, at);
            run.run();
            // Whatever the timing, exclusion safety must hold.
            let statuses = run.statuses();
            assert_eq!(
                statuses.get(&a),
                Some(&InstanceStatus::Committed),
                "at {at}"
            );
            assert_eq!(
                statuses.get(&b),
                Some(&InstanceStatus::Committed),
                "at {at}"
            );
            if run.engine(dst).migrations_in_with_mutex == 1 {
                saw_holder_migration = true;
                break;
            }
        }
        assert!(
            saw_holder_migration,
            "no migration tick caught the instance holding the mutex"
        );
    }

    #[test]
    fn target_crash_after_migration_recovers_the_instance() {
        // The MigrateState input record is journaled at the target, so a
        // crash after the hand-off replays the nested install and the
        // instance still commits exactly once.
        let deployment = Deployment::new([linear(1, 6)]);
        let mut run = CentralRun::new(deployment, 1, 2);
        let inst = run.start_instance(SchemaId(1), vec![(1, Value::Int(5))]);
        let src = run.topo.owner_engine(inst);
        let dst = 1 - src;
        run.migrate_instance_at(inst, dst, 3);
        run.sim
            .schedule_crash(run.topo.engine_node(dst), 7, Some(2));
        run.run();
        assert_eq!(run.statuses().get(&inst), Some(&InstanceStatus::Committed));
        assert_eq!(run.engine(dst).migrations_in, 1);
        assert!(run.engine(dst).terminal_times.contains_key(&inst));
    }

    #[test]
    fn corrupt_command_record_halts_recovery() {
        let mut e = engine();
        start(&mut e, 1);
        // A record that frames fine but does not decode as a CentralMsg.
        e.wal
            .append(&DbOp::EngineInput {
                from: 0,
                payload: vec![250, 1, 2],
            })
            .unwrap();
        e.on_crash();
        let mut ctx = Ctx::detached(10, NodeId(1));
        e.on_recover(&mut ctx);
        assert!(e.is_halted());
    }
}
