//! Building centralized/parallel deployments on the simulator, with the
//! same driver surface as `crew-distributed`'s `DistRun`.

use crate::appagent::AppAgent;
use crate::engine::Engine;
use crate::msg::CentralMsg;
use crate::topology::{PlacementStrategy, Topology};
use crew_exec::Deployment;
use crew_model::{AgentId, InstanceId, ItemKey, SchemaId, Value};
use crew_shard::{plan_migrations, BalancerConfig, EngineLoad, Params};
use crew_simnet::{NodeId, Simulation};
use crew_storage::InstanceStatus;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A centralized (`engines == 1`) or parallel deployment bound to a
/// simulator.
pub struct CentralRun {
    pub sim: Simulation<CentralMsg>,
    pub topo: Topology,
    pub deployment: Arc<Deployment>,
    next_serial: u32,
    started: Vec<InstanceId>,
}

impl CentralRun {
    pub fn new(deployment: Deployment, agents: u32, engines: u32) -> Self {
        Self::new_with_placement(deployment, agents, engines, PlacementStrategy::Modulo)
    }

    /// Like [`CentralRun::new`] but with an explicit instance-placement
    /// strategy. The deployment seed feeds the consistent-hash ring so
    /// runs stay deterministic.
    pub fn new_with_placement(
        deployment: Deployment,
        agents: u32,
        engines: u32,
        strategy: PlacementStrategy,
    ) -> Self {
        let deployment = Arc::new(deployment);
        let topo = Topology::with_placement(agents, engines, strategy, deployment.seed);
        let mut sim = Simulation::new(deployment.seed);
        for _ in 0..agents {
            sim.add_node(AppAgent::new(
                deployment.registry.clone(),
                deployment.plan.clone(),
                deployment.seed,
            ));
        }
        for e in 0..engines {
            sim.add_node(Engine::new(e, deployment.clone(), topo));
        }
        CentralRun {
            sim,
            topo,
            deployment,
            next_serial: 1,
            started: Vec::new(),
        }
    }

    /// Start an instance through its owner engine's administrative
    /// interface.
    pub fn start_instance(&mut self, schema: SchemaId, inputs: Vec<(u16, Value)>) -> InstanceId {
        let instance = InstanceId::new(schema, self.next_serial);
        self.next_serial += 1;
        let inputs = inputs
            .into_iter()
            .map(|(slot, v)| (ItemKey::input(slot), v))
            .collect();
        let owner = self.topo.owner_engine(instance);
        self.sim.send_external(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowStart { instance, inputs },
        );
        self.started.push(instance);
        instance
    }

    /// Start an instance at a specific virtual time (open-loop arrival
    /// processes in the throughput harness).
    pub fn start_instance_at(
        &mut self,
        schema: SchemaId,
        inputs: Vec<(u16, Value)>,
        at: u64,
    ) -> InstanceId {
        let instance = InstanceId::new(schema, self.next_serial);
        self.next_serial += 1;
        let inputs = inputs
            .into_iter()
            .map(|(slot, v)| (ItemKey::input(slot), v))
            .collect();
        let owner = self.topo.owner_engine(instance);
        self.sim.send_external_at(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowStart { instance, inputs },
            at,
        );
        self.started.push(instance);
        instance
    }

    /// Inject a user abort.
    pub fn abort_instance(&mut self, instance: InstanceId) {
        let owner = self.topo.owner_engine(instance);
        self.sim.send_external(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowAbort { instance },
        );
    }

    /// Inject a user abort at a specific virtual time (mid-flight).
    pub fn abort_instance_at(&mut self, instance: InstanceId, at: u64) {
        let owner = self.topo.owner_engine(instance);
        self.sim.send_external_at(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowAbort { instance },
            at,
        );
    }

    /// Inject a user input change at a specific virtual time.
    pub fn change_inputs_at(
        &mut self,
        instance: InstanceId,
        new_inputs: Vec<(u16, Value)>,
        at: u64,
    ) {
        let owner = self.topo.owner_engine(instance);
        let new_inputs = new_inputs
            .into_iter()
            .map(|(slot, v)| (ItemKey::input(slot), v))
            .collect();
        self.sim.send_external_at(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowChangeInputs {
                instance,
                new_inputs,
            },
            at,
        );
    }

    /// Inject a user input change.
    pub fn change_inputs(&mut self, instance: InstanceId, new_inputs: Vec<(u16, Value)>) {
        let owner = self.topo.owner_engine(instance);
        let new_inputs = new_inputs
            .into_iter()
            .map(|(slot, v)| (ItemKey::input(slot), v))
            .collect();
        self.sim.send_external(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowChangeInputs {
                instance,
                new_inputs,
            },
        );
    }

    /// Inject a live-migration order at a specific virtual time: move
    /// `instance` to engine `target`. Addressed to the placement owner; if
    /// the instance already migrated, the owner forwards the request to
    /// wherever it currently lives.
    pub fn migrate_instance_at(&mut self, instance: InstanceId, target: u32, at: u64) {
        let owner = self.topo.owner_engine(instance);
        self.sim.send_external_at(
            self.topo.engine_node(owner),
            CentralMsg::MigrateRequest { instance, target },
            at,
        );
    }

    /// Run to quiescence.
    pub fn run(&mut self) -> u64 {
        self.sim.run()
    }

    /// One load sample per engine, in engine order, from the live
    /// counters each engine exports.
    pub fn engine_loads(&self) -> Vec<EngineLoad> {
        (0..self.topo.engines)
            .map(|e| {
                let eng = self.engine(e);
                EngineLoad {
                    engine: e,
                    live_instances: eng.live_instances(),
                    delivered_msgs: eng.delivered_msgs,
                    wal_appends: eng.wal_appended(),
                    forwarded_msgs: eng.forwarded_msgs,
                    migrations_out: eng.migrations_out,
                    migrations_in: eng.migrations_in,
                }
            })
            .collect()
    }

    /// Run to quiescence with the auto-balancer in the loop.
    ///
    /// Every `interval` ticks the driver samples per-engine load, asks
    /// `crew-shard` for a plan (measured skew vs the §7 uniform
    /// prediction), and turns each [`crew_shard::MigrationOrder`] into
    /// live `MigrateRequest`s against concrete executing instances on the
    /// hot engine. Returns `(final_tick, instances_ordered_moved)`.
    pub fn run_balanced(&mut self, interval: u64, cfg: &BalancerConfig, p: &Params) -> (u64, u64) {
        self.run_balanced_until(u64::MAX, interval, cfg, p)
    }

    /// [`CentralRun::run_balanced`] with a virtual-time horizon, for
    /// scenarios (unrecovered crashes) whose event queue never drains.
    pub fn run_balanced_until(
        &mut self,
        horizon: u64,
        interval: u64,
        cfg: &BalancerConfig,
        p: &Params,
    ) -> (u64, u64) {
        let interval = interval.max(1);
        let mut moved = 0u64;
        // Drive a monotonic virtual-time cursor rather than `sim.now()`:
        // a window in which nothing was due must still advance time, or a
        // queue of far-future arrivals would spin the loop forever.
        let mut cursor = self.sim.now();
        // Counter samples from the previous window: the planner sees
        // per-window deltas, not run-cumulative totals, so pressure ranks
        // engines by what they are doing *now* rather than by history.
        // Backlog (`live_instances`) stays instantaneous.
        let mut prev: Vec<EngineLoad> = self.engine_loads();
        // Each instance is ordered moved at most once per run. A request
        // queued behind a saturated engine is invisible to the next
        // sampling round — without this set the driver re-orders the same
        // instances every interval and the duplicates, delivered stale,
        // bounce them between engines indefinitely.
        let mut ordered: std::collections::BTreeSet<InstanceId> = std::collections::BTreeSet::new();
        loop {
            cursor = cursor.saturating_add(interval).min(horizon);
            self.sim.run_until(cursor);
            if self.sim.is_quiescent()
                || self.sim.halted()
                || cursor >= horizon
                || self.sim.delivered() >= self.sim.max_events
            {
                break;
            }
            let now = self.engine_loads();
            let window: Vec<EngineLoad> = now
                .iter()
                .zip(prev.iter())
                .map(|(n, o)| EngineLoad {
                    engine: n.engine,
                    live_instances: n.live_instances,
                    delivered_msgs: n.delivered_msgs - o.delivered_msgs,
                    wal_appends: n.wal_appends - o.wal_appends,
                    forwarded_msgs: n.forwarded_msgs - o.forwarded_msgs,
                    migrations_out: n.migrations_out - o.migrations_out,
                    migrations_in: n.migrations_in - o.migrations_in,
                })
                .collect();
            prev = now;
            let orders = plan_migrations(&window, p, cfg);
            let at = cursor + 1;
            for o in orders {
                let candidates = self.engine(o.from).movable_instances();
                for inst in candidates
                    .into_iter()
                    .filter(|i| ordered.insert(*i))
                    .take(o.count as usize)
                {
                    // Address the currently-hosting engine directly: the
                    // placement owner would forward anyway, this skips a
                    // hop for instances the balancer already moved once.
                    self.sim.send_external_at(
                        self.topo.engine_node(o.from),
                        CentralMsg::MigrateRequest {
                            instance: inst,
                            target: o.to,
                        },
                        at,
                    );
                    moved += 1;
                }
            }
        }
        (self.sim.now(), moved)
    }

    /// The engine owning `instance`.
    pub fn owner_engine_of(&self, instance: InstanceId) -> &Engine {
        let owner = self.topo.owner_engine(instance);
        self.sim
            .node_as::<Engine>(self.topo.engine_node(owner))
            .expect("engine node")
    }

    /// Engine by index.
    pub fn engine(&self, index: u32) -> &Engine {
        self.sim
            .node_as::<Engine>(self.topo.engine_node(index))
            .expect("engine node")
    }

    /// Agent by id.
    pub fn agent(&self, agent: AgentId) -> &AppAgent {
        self.sim
            .node_as::<AppAgent>(self.topo.agent_node(agent))
            .expect("agent node")
    }

    /// Statuses of all started instances, folded across engines.
    pub fn statuses(&self) -> BTreeMap<InstanceId, InstanceStatus> {
        let mut out = BTreeMap::new();
        for e in 0..self.topo.engines {
            for (&i, &s) in &self.engine(e).statuses {
                out.insert(i, s);
            }
        }
        out
    }

    /// Virtual tick at which each instance first reached a terminal
    /// status, folded across engines.
    pub fn completion_times(&self) -> BTreeMap<InstanceId, u64> {
        let mut out = BTreeMap::new();
        for e in 0..self.topo.engines {
            for (&i, &t) in &self.engine(e).terminal_times {
                out.entry(i).or_insert(t);
            }
        }
        out
    }

    pub fn started_instances(&self) -> &[InstanceId] {
        &self.started
    }

    /// Engine node ids (for load aggregation).
    pub fn engine_nodes(&self) -> Vec<NodeId> {
        self.topo.engine_nodes().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaBuilder;
    use crew_simnet::Mechanism;

    fn linear_schema(id: u32, steps: u32, agents: &[u32]) -> crew_model::WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(id), format!("wf{id}")).inputs(1);
        let ids: Vec<_> = (0..steps)
            .map(|i| b.add_step(format!("S{}", i + 1), "passthrough"))
            .collect();
        for w in ids.windows(2) {
            b.seq(w[0], w[1]);
        }
        for (i, s) in ids.iter().enumerate() {
            let a = agents[i % agents.len()];
            b.configure(*s, |d| d.eligible_agents = vec![AgentId(a)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn sequential_workflow_commits_centrally() {
        let deployment = Deployment::new([linear_schema(1, 4, &[0, 1])]);
        let mut run = CentralRun::new(deployment, 2, 1);
        let inst = run.start_instance(SchemaId(1), vec![(1, Value::Int(5))]);
        run.run();
        assert_eq!(run.statuses().get(&inst), Some(&InstanceStatus::Committed));
        // Normal messages: per step a=1 → ExecRequest + ExecResult = 2·s.
        assert_eq!(run.sim.metrics.messages(Mechanism::Normal), 8);
    }

    #[test]
    fn parallel_engines_partition_instances() {
        let deployment = Deployment::new([linear_schema(1, 3, &[0])]);
        let mut run = CentralRun::new(deployment, 1, 4);
        let instances: Vec<InstanceId> = (0..8)
            .map(|_| run.start_instance(SchemaId(1), vec![(1, Value::Int(1))]))
            .collect();
        run.run();
        let statuses = run.statuses();
        for i in &instances {
            assert_eq!(statuses.get(i), Some(&InstanceStatus::Committed), "{i}");
        }
        // More than one engine did work.
        let engines_with_work = (0..4)
            .filter(|&e| !run.engine(e).statuses.is_empty())
            .count();
        assert!(engines_with_work > 1);
    }

    #[test]
    fn balancer_moves_instances_off_the_hot_engine() {
        // A 1-vnode-per-engine ring carves the key space into four uneven
        // arcs, so arrivals pile onto whichever engine owns the largest
        // arc — exactly the measured-vs-predicted divergence the balancer
        // exists to correct.
        let deployment = Deployment::new([linear_schema(1, 4, &[0])]);
        let mut run = CentralRun::new_with_placement(
            deployment,
            1,
            4,
            PlacementStrategy::ConsistentHash { vnodes: 1 },
        );
        run.sim.set_service_cost(run.topo.agent_node(AgentId(0)), 3);
        let instances: Vec<InstanceId> = (0..24)
            .map(|_| run.start_instance(SchemaId(1), vec![(1, Value::Int(1))]))
            .collect();
        let cfg = crew_shard::BalancerConfig {
            skew_threshold: 1.2,
            max_moves_per_round: 8,
        };
        let (_, moved) = run.run_balanced(5, &cfg, &crew_shard::Params::paper_mean());
        let statuses = run.statuses();
        for i in &instances {
            assert_eq!(statuses.get(i), Some(&InstanceStatus::Committed), "{i}");
        }
        assert!(moved >= 1, "balancer should order at least one move");
        let migrated_in: u64 = (0..4).map(|e| run.engine(e).migrations_in).sum();
        assert!(migrated_in >= 1, "at least one migration completed");
    }

    #[test]
    fn engine_loads_reflect_delivered_work() {
        let deployment = Deployment::new([linear_schema(1, 3, &[0])]);
        let mut run = CentralRun::new(deployment, 1, 2);
        run.start_instance(SchemaId(1), vec![(1, Value::Int(1))]);
        run.run();
        let loads = run.engine_loads();
        assert_eq!(loads.len(), 2);
        assert!(loads.iter().any(|l| l.delivered_msgs > 0));
        assert!(loads.iter().all(|l| l.live_instances == 0), "all terminal");
    }
}
