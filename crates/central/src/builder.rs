//! Building centralized/parallel deployments on the simulator, with the
//! same driver surface as `crew-distributed`'s `DistRun`.

use crate::appagent::AppAgent;
use crate::engine::Engine;
use crate::msg::CentralMsg;
use crate::topology::Topology;
use crew_exec::Deployment;
use crew_model::{AgentId, InstanceId, ItemKey, SchemaId, Value};
use crew_simnet::{NodeId, Simulation};
use crew_storage::InstanceStatus;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A centralized (`engines == 1`) or parallel deployment bound to a
/// simulator.
pub struct CentralRun {
    pub sim: Simulation<CentralMsg>,
    pub topo: Topology,
    pub deployment: Arc<Deployment>,
    next_serial: u32,
    started: Vec<InstanceId>,
}

impl CentralRun {
    pub fn new(deployment: Deployment, agents: u32, engines: u32) -> Self {
        let deployment = Arc::new(deployment);
        let topo = Topology::new(agents, engines);
        let mut sim = Simulation::new(deployment.seed);
        for _ in 0..agents {
            sim.add_node(AppAgent::new(
                deployment.registry.clone(),
                deployment.plan.clone(),
                deployment.seed,
            ));
        }
        for e in 0..engines {
            sim.add_node(Engine::new(e, deployment.clone(), topo));
        }
        CentralRun {
            sim,
            topo,
            deployment,
            next_serial: 1,
            started: Vec::new(),
        }
    }

    /// Start an instance through its owner engine's administrative
    /// interface.
    pub fn start_instance(&mut self, schema: SchemaId, inputs: Vec<(u16, Value)>) -> InstanceId {
        let instance = InstanceId::new(schema, self.next_serial);
        self.next_serial += 1;
        let inputs = inputs
            .into_iter()
            .map(|(slot, v)| (ItemKey::input(slot), v))
            .collect();
        let owner = self.topo.owner_engine(instance);
        self.sim.send_external(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowStart { instance, inputs },
        );
        self.started.push(instance);
        instance
    }

    /// Start an instance at a specific virtual time (open-loop arrival
    /// processes in the throughput harness).
    pub fn start_instance_at(
        &mut self,
        schema: SchemaId,
        inputs: Vec<(u16, Value)>,
        at: u64,
    ) -> InstanceId {
        let instance = InstanceId::new(schema, self.next_serial);
        self.next_serial += 1;
        let inputs = inputs
            .into_iter()
            .map(|(slot, v)| (ItemKey::input(slot), v))
            .collect();
        let owner = self.topo.owner_engine(instance);
        self.sim.send_external_at(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowStart { instance, inputs },
            at,
        );
        self.started.push(instance);
        instance
    }

    /// Inject a user abort.
    pub fn abort_instance(&mut self, instance: InstanceId) {
        let owner = self.topo.owner_engine(instance);
        self.sim.send_external(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowAbort { instance },
        );
    }

    /// Inject a user abort at a specific virtual time (mid-flight).
    pub fn abort_instance_at(&mut self, instance: InstanceId, at: u64) {
        let owner = self.topo.owner_engine(instance);
        self.sim.send_external_at(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowAbort { instance },
            at,
        );
    }

    /// Inject a user input change at a specific virtual time.
    pub fn change_inputs_at(
        &mut self,
        instance: InstanceId,
        new_inputs: Vec<(u16, Value)>,
        at: u64,
    ) {
        let owner = self.topo.owner_engine(instance);
        let new_inputs = new_inputs
            .into_iter()
            .map(|(slot, v)| (ItemKey::input(slot), v))
            .collect();
        self.sim.send_external_at(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowChangeInputs {
                instance,
                new_inputs,
            },
            at,
        );
    }

    /// Inject a user input change.
    pub fn change_inputs(&mut self, instance: InstanceId, new_inputs: Vec<(u16, Value)>) {
        let owner = self.topo.owner_engine(instance);
        let new_inputs = new_inputs
            .into_iter()
            .map(|(slot, v)| (ItemKey::input(slot), v))
            .collect();
        self.sim.send_external(
            self.topo.engine_node(owner),
            CentralMsg::WorkflowChangeInputs {
                instance,
                new_inputs,
            },
        );
    }

    /// Run to quiescence.
    pub fn run(&mut self) -> u64 {
        self.sim.run()
    }

    /// The engine owning `instance`.
    pub fn owner_engine_of(&self, instance: InstanceId) -> &Engine {
        let owner = self.topo.owner_engine(instance);
        self.sim
            .node_as::<Engine>(self.topo.engine_node(owner))
            .expect("engine node")
    }

    /// Engine by index.
    pub fn engine(&self, index: u32) -> &Engine {
        self.sim
            .node_as::<Engine>(self.topo.engine_node(index))
            .expect("engine node")
    }

    /// Agent by id.
    pub fn agent(&self, agent: AgentId) -> &AppAgent {
        self.sim
            .node_as::<AppAgent>(self.topo.agent_node(agent))
            .expect("agent node")
    }

    /// Statuses of all started instances, folded across engines.
    pub fn statuses(&self) -> BTreeMap<InstanceId, InstanceStatus> {
        let mut out = BTreeMap::new();
        for e in 0..self.topo.engines {
            for (&i, &s) in &self.engine(e).statuses {
                out.insert(i, s);
            }
        }
        out
    }

    /// Virtual tick at which each instance first reached a terminal
    /// status, folded across engines.
    pub fn completion_times(&self) -> BTreeMap<InstanceId, u64> {
        let mut out = BTreeMap::new();
        for e in 0..self.topo.engines {
            for (&i, &t) in &self.engine(e).terminal_times {
                out.entry(i).or_insert(t);
            }
        }
        out
    }

    pub fn started_instances(&self) -> &[InstanceId] {
        &self.started
    }

    /// Engine node ids (for load aggregation).
    pub fn engine_nodes(&self) -> Vec<NodeId> {
        self.topo.engine_nodes().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaBuilder;
    use crew_simnet::Mechanism;

    fn linear_schema(id: u32, steps: u32, agents: &[u32]) -> crew_model::WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(id), format!("wf{id}")).inputs(1);
        let ids: Vec<_> = (0..steps)
            .map(|i| b.add_step(format!("S{}", i + 1), "passthrough"))
            .collect();
        for w in ids.windows(2) {
            b.seq(w[0], w[1]);
        }
        for (i, s) in ids.iter().enumerate() {
            let a = agents[i % agents.len()];
            b.configure(*s, |d| d.eligible_agents = vec![AgentId(a)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn sequential_workflow_commits_centrally() {
        let deployment = Deployment::new([linear_schema(1, 4, &[0, 1])]);
        let mut run = CentralRun::new(deployment, 2, 1);
        let inst = run.start_instance(SchemaId(1), vec![(1, Value::Int(5))]);
        run.run();
        assert_eq!(run.statuses().get(&inst), Some(&InstanceStatus::Committed));
        // Normal messages: per step a=1 → ExecRequest + ExecResult = 2·s.
        assert_eq!(run.sim.metrics.messages(Mechanism::Normal), 8);
    }

    #[test]
    fn parallel_engines_partition_instances() {
        let deployment = Deployment::new([linear_schema(1, 3, &[0])]);
        let mut run = CentralRun::new(deployment, 1, 4);
        let instances: Vec<InstanceId> = (0..8)
            .map(|_| run.start_instance(SchemaId(1), vec![(1, Value::Int(1))]))
            .collect();
        run.run();
        let statuses = run.statuses();
        for i in &instances {
            assert_eq!(statuses.get(i), Some(&InstanceStatus::Committed), "{i}");
        }
        // More than one engine did work.
        let engines_with_work = (0..4)
            .filter(|&e| !run.engine(e).statuses.is_empty())
            .count();
        assert!(engines_with_work > 1);
    }
}
