//! # crew-central
//!
//! The centralized workflow control architecture (§2, Figure 1) and — via
//! the `engines > 1` topology — the parallel architecture of §6 (Figure
//! 6b): full-state engines navigating by rules, dispatching step programs
//! to stateless application agents through a scatter-gather that matches
//! the paper's `2·s·a` message model, with every recovery and coordination
//! mechanism handled engine-locally (centralized) or via per-requirement
//! manager engines (parallel).

#![warn(missing_docs)]
#![allow(missing_docs)] // selective field docs in protocol enums

pub mod appagent;
pub mod builder;
pub mod codec;
pub mod engine;
pub mod msg;
pub mod tags;
pub mod topology;

pub use appagent::AppAgent;
pub use builder::CentralRun;
pub use engine::Engine;
pub use msg::{CentralMsg, CoordMsg};
pub use topology::{PlacementStrategy, Topology};
