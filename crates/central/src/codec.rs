//! Binary codec for [`CentralMsg`], so centralized/parallel traffic can
//! ride the simulator's WAL-backed reliable channels (the durable outbox
//! needs to persist message payloads across fail-stop crashes).

use crate::msg::{CentralMsg, CoordMsg};
use bytes::{Bytes, BytesMut};
use crew_storage::{CodecError, Decode, Encode};

impl Encode for CoordMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CoordMsg::RoFirstDone {
                req,
                claimant,
                partner,
            } => {
                0u8.encode(buf);
                req.encode(buf);
                claimant.encode(buf);
                partner.encode(buf);
            }
            CoordMsg::RoDecision {
                req,
                a,
                b,
                leader_side,
            } => {
                1u8.encode(buf);
                req.encode(buf);
                a.encode(buf);
                b.encode(buf);
                leader_side.encode(buf);
            }
            CoordMsg::RoRelease { req, k, lagging } => {
                2u8.encode(buf);
                req.encode(buf);
                (*k as u64).encode(buf);
                lagging.encode(buf);
            }
            CoordMsg::MutexAcquire {
                req,
                instance,
                step,
            } => {
                3u8.encode(buf);
                req.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            CoordMsg::MutexGrant {
                req,
                instance,
                step,
            } => {
                4u8.encode(buf);
                req.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            CoordMsg::MutexRelease {
                req,
                instance,
                step,
            } => {
                5u8.encode(buf);
                req.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            CoordMsg::RollbackDep { instance, origin } => {
                6u8.encode(buf);
                instance.encode(buf);
                origin.encode(buf);
            }
        }
    }
}

impl Decode for CoordMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            0 => CoordMsg::RoFirstDone {
                req: Decode::decode(buf)?,
                claimant: Decode::decode(buf)?,
                partner: Decode::decode(buf)?,
            },
            1 => CoordMsg::RoDecision {
                req: Decode::decode(buf)?,
                a: Decode::decode(buf)?,
                b: Decode::decode(buf)?,
                leader_side: Decode::decode(buf)?,
            },
            2 => CoordMsg::RoRelease {
                req: Decode::decode(buf)?,
                k: u64::decode(buf)? as usize,
                lagging: Decode::decode(buf)?,
            },
            3 => CoordMsg::MutexAcquire {
                req: Decode::decode(buf)?,
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            4 => CoordMsg::MutexGrant {
                req: Decode::decode(buf)?,
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            5 => CoordMsg::MutexRelease {
                req: Decode::decode(buf)?,
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            6 => CoordMsg::RollbackDep {
                instance: Decode::decode(buf)?,
                origin: Decode::decode(buf)?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    context: "CoordMsg",
                    tag,
                })
            }
        })
    }
}

impl Encode for CentralMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CentralMsg::WorkflowStart { instance, inputs } => {
                0u8.encode(buf);
                instance.encode(buf);
                inputs.encode(buf);
            }
            CentralMsg::WorkflowChangeInputs {
                instance,
                new_inputs,
            } => {
                1u8.encode(buf);
                instance.encode(buf);
                new_inputs.encode(buf);
            }
            CentralMsg::WorkflowAbort { instance } => {
                2u8.encode(buf);
                instance.encode(buf);
            }
            CentralMsg::WorkflowStatus { instance } => {
                3u8.encode(buf);
                instance.encode(buf);
            }
            CentralMsg::ExecRequest {
                instance,
                step,
                program,
                inputs,
                attempt,
                cost,
            } => {
                4u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                program.encode(buf);
                inputs.encode(buf);
                attempt.encode(buf);
                cost.encode(buf);
            }
            CentralMsg::StateProbe { token } => {
                5u8.encode(buf);
                token.encode(buf);
            }
            CentralMsg::CompensateRequest {
                instance,
                step,
                program,
                partial,
                for_abort,
            } => {
                6u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                program.encode(buf);
                partial.encode(buf);
                for_abort.encode(buf);
            }
            CentralMsg::ExecResult {
                instance,
                step,
                attempt,
                outputs,
                error,
            } => {
                7u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                attempt.encode(buf);
                outputs.encode(buf);
                error.encode(buf);
            }
            CentralMsg::StateProbeReply { token, load } => {
                8u8.encode(buf);
                token.encode(buf);
                load.encode(buf);
            }
            CentralMsg::CompensateResult {
                instance,
                step,
                for_abort,
            } => {
                9u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                for_abort.encode(buf);
            }
            CentralMsg::Coord(c) => {
                10u8.encode(buf);
                c.encode(buf);
            }
            CentralMsg::ChildStart {
                child,
                inputs,
                parent,
                parent_step,
            } => {
                11u8.encode(buf);
                child.encode(buf);
                inputs.encode(buf);
                parent.encode(buf);
                parent_step.encode(buf);
            }
            CentralMsg::ChildDone {
                parent,
                parent_step,
                outputs,
            } => {
                12u8.encode(buf);
                parent.encode(buf);
                parent_step.encode(buf);
                outputs.encode(buf);
            }
        }
    }
}

impl Decode for CentralMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            0 => CentralMsg::WorkflowStart {
                instance: Decode::decode(buf)?,
                inputs: Decode::decode(buf)?,
            },
            1 => CentralMsg::WorkflowChangeInputs {
                instance: Decode::decode(buf)?,
                new_inputs: Decode::decode(buf)?,
            },
            2 => CentralMsg::WorkflowAbort {
                instance: Decode::decode(buf)?,
            },
            3 => CentralMsg::WorkflowStatus {
                instance: Decode::decode(buf)?,
            },
            4 => CentralMsg::ExecRequest {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                program: Decode::decode(buf)?,
                inputs: Decode::decode(buf)?,
                attempt: Decode::decode(buf)?,
                cost: Decode::decode(buf)?,
            },
            5 => CentralMsg::StateProbe {
                token: Decode::decode(buf)?,
            },
            6 => CentralMsg::CompensateRequest {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                program: Decode::decode(buf)?,
                partial: Decode::decode(buf)?,
                for_abort: Decode::decode(buf)?,
            },
            7 => CentralMsg::ExecResult {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                attempt: Decode::decode(buf)?,
                outputs: Decode::decode(buf)?,
                error: Decode::decode(buf)?,
            },
            8 => CentralMsg::StateProbeReply {
                token: Decode::decode(buf)?,
                load: Decode::decode(buf)?,
            },
            9 => CentralMsg::CompensateResult {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                for_abort: Decode::decode(buf)?,
            },
            10 => CentralMsg::Coord(CoordMsg::decode(buf)?),
            11 => CentralMsg::ChildStart {
                child: Decode::decode(buf)?,
                inputs: Decode::decode(buf)?,
                parent: Decode::decode(buf)?,
                parent_step: Decode::decode(buf)?,
            },
            12 => CentralMsg::ChildDone {
                parent: Decode::decode(buf)?,
                parent_step: Decode::decode(buf)?,
                outputs: Decode::decode(buf)?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    context: "CentralMsg",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Buf;
    use crew_model::{InstanceId, ItemKey, SchemaId, StepId, Value};

    fn inst(n: u32) -> InstanceId {
        InstanceId::new(SchemaId(2), n)
    }

    fn round_trip(msg: CentralMsg) {
        let bytes = msg.to_bytes();
        let mut buf = bytes.clone();
        let back = CentralMsg::decode(&mut buf).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(buf.remaining(), 0, "no trailing bytes");
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(CentralMsg::WorkflowStart {
            instance: inst(1),
            inputs: vec![
                (ItemKey::input(0), Value::Int(7)),
                (ItemKey::input(1), Value::Bool(true)),
            ],
        });
        round_trip(CentralMsg::WorkflowChangeInputs {
            instance: inst(2),
            new_inputs: vec![(ItemKey::output(StepId(3), 0), Value::Str("x".into()))],
        });
        round_trip(CentralMsg::WorkflowAbort { instance: inst(3) });
        round_trip(CentralMsg::WorkflowStatus { instance: inst(4) });
        round_trip(CentralMsg::ExecRequest {
            instance: inst(5),
            step: StepId(2),
            program: "passthrough".into(),
            inputs: vec![Some(Value::Float(0.5)), None],
            attempt: 2,
            cost: 99,
        });
        round_trip(CentralMsg::StateProbe { token: u64::MAX });
        round_trip(CentralMsg::CompensateRequest {
            instance: inst(6),
            step: StepId(1),
            program: Some("undo".into()),
            partial: true,
            for_abort: false,
        });
        round_trip(CentralMsg::ExecResult {
            instance: inst(7),
            step: StepId(3),
            attempt: 1,
            outputs: Some(vec![Value::Int(1)]),
            error: None,
        });
        round_trip(CentralMsg::ExecResult {
            instance: inst(7),
            step: StepId(3),
            attempt: 2,
            outputs: None,
            error: Some("boom".into()),
        });
        round_trip(CentralMsg::StateProbeReply {
            token: 4,
            load: 1000,
        });
        round_trip(CentralMsg::CompensateResult {
            instance: inst(8),
            step: StepId(4),
            for_abort: true,
        });
        round_trip(CentralMsg::ChildStart {
            child: inst(9),
            inputs: vec![],
            parent: inst(1),
            parent_step: StepId(5),
        });
        round_trip(CentralMsg::ChildDone {
            parent: inst(1),
            parent_step: StepId(5),
            outputs: vec![Value::Bool(false)],
        });
    }

    #[test]
    fn coord_variants_round_trip() {
        for c in [
            CoordMsg::RoFirstDone {
                req: 1,
                claimant: inst(1),
                partner: inst(2),
            },
            CoordMsg::RoDecision {
                req: 2,
                a: inst(1),
                b: inst(2),
                leader_side: 1,
            },
            CoordMsg::RoRelease {
                req: 3,
                k: 4,
                lagging: inst(2),
            },
            CoordMsg::MutexAcquire {
                req: 4,
                instance: inst(3),
                step: StepId(1),
            },
            CoordMsg::MutexGrant {
                req: 5,
                instance: inst(3),
                step: StepId(1),
            },
            CoordMsg::MutexRelease {
                req: 6,
                instance: inst(3),
                step: StepId(1),
            },
            CoordMsg::RollbackDep {
                instance: inst(4),
                origin: StepId(2),
            },
        ] {
            round_trip(CentralMsg::Coord(c));
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = Bytes::from_static(&[200u8]);
        assert!(matches!(
            CentralMsg::decode(&mut buf),
            Err(CodecError::BadTag {
                context: "CentralMsg",
                tag: 200
            })
        ));
    }
}
