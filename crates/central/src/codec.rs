//! Binary codec for [`CentralMsg`], so centralized/parallel traffic can
//! ride the simulator's WAL-backed reliable channels (the durable outbox
//! needs to persist message payloads across fail-stop crashes).
//!
//! Wire discriminants are allocated centrally in [`crate::tags`].

use crate::msg::{CentralMsg, CoordMsg};
use crate::tags::{central, coord};
use bytes::{Bytes, BytesMut};
use crew_storage::{CodecError, Decode, Encode};

impl Encode for CoordMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CoordMsg::RoFirstDone {
                req,
                claimant,
                partner,
            } => {
                coord::RO_FIRST_DONE.encode(buf);
                req.encode(buf);
                claimant.encode(buf);
                partner.encode(buf);
            }
            CoordMsg::RoDecision {
                req,
                a,
                b,
                leader_side,
            } => {
                coord::RO_DECISION.encode(buf);
                req.encode(buf);
                a.encode(buf);
                b.encode(buf);
                leader_side.encode(buf);
            }
            CoordMsg::RoRelease { req, k, lagging } => {
                coord::RO_RELEASE.encode(buf);
                req.encode(buf);
                (*k as u64).encode(buf);
                lagging.encode(buf);
            }
            CoordMsg::MutexAcquire {
                req,
                instance,
                step,
            } => {
                coord::MUTEX_ACQUIRE.encode(buf);
                req.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            CoordMsg::MutexGrant {
                req,
                instance,
                step,
            } => {
                coord::MUTEX_GRANT.encode(buf);
                req.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            CoordMsg::MutexRelease {
                req,
                instance,
                step,
            } => {
                coord::MUTEX_RELEASE.encode(buf);
                req.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            CoordMsg::RollbackDep { instance, origin } => {
                coord::ROLLBACK_DEP.encode(buf);
                instance.encode(buf);
                origin.encode(buf);
            }
        }
    }
}

impl Decode for CoordMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            coord::RO_FIRST_DONE => CoordMsg::RoFirstDone {
                req: Decode::decode(buf)?,
                claimant: Decode::decode(buf)?,
                partner: Decode::decode(buf)?,
            },
            coord::RO_DECISION => CoordMsg::RoDecision {
                req: Decode::decode(buf)?,
                a: Decode::decode(buf)?,
                b: Decode::decode(buf)?,
                leader_side: Decode::decode(buf)?,
            },
            coord::RO_RELEASE => CoordMsg::RoRelease {
                req: Decode::decode(buf)?,
                k: u64::decode(buf)? as usize,
                lagging: Decode::decode(buf)?,
            },
            coord::MUTEX_ACQUIRE => CoordMsg::MutexAcquire {
                req: Decode::decode(buf)?,
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            coord::MUTEX_GRANT => CoordMsg::MutexGrant {
                req: Decode::decode(buf)?,
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            coord::MUTEX_RELEASE => CoordMsg::MutexRelease {
                req: Decode::decode(buf)?,
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            coord::ROLLBACK_DEP => CoordMsg::RollbackDep {
                instance: Decode::decode(buf)?,
                origin: Decode::decode(buf)?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    context: "CoordMsg",
                    tag,
                })
            }
        })
    }
}

impl Encode for CentralMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CentralMsg::WorkflowStart { instance, inputs } => {
                central::WORKFLOW_START.encode(buf);
                instance.encode(buf);
                inputs.encode(buf);
            }
            CentralMsg::WorkflowChangeInputs {
                instance,
                new_inputs,
            } => {
                central::WORKFLOW_CHANGE_INPUTS.encode(buf);
                instance.encode(buf);
                new_inputs.encode(buf);
            }
            CentralMsg::WorkflowAbort { instance } => {
                central::WORKFLOW_ABORT.encode(buf);
                instance.encode(buf);
            }
            CentralMsg::WorkflowStatus { instance } => {
                central::WORKFLOW_STATUS.encode(buf);
                instance.encode(buf);
            }
            CentralMsg::ExecRequest {
                instance,
                step,
                program,
                inputs,
                attempt,
                cost,
            } => {
                central::EXEC_REQUEST.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                program.encode(buf);
                inputs.encode(buf);
                attempt.encode(buf);
                cost.encode(buf);
            }
            CentralMsg::StateProbe { token } => {
                central::STATE_PROBE.encode(buf);
                token.encode(buf);
            }
            CentralMsg::CompensateRequest {
                instance,
                step,
                program,
                partial,
                for_abort,
            } => {
                central::COMPENSATE_REQUEST.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                program.encode(buf);
                partial.encode(buf);
                for_abort.encode(buf);
            }
            CentralMsg::ExecResult {
                instance,
                step,
                attempt,
                outputs,
                error,
            } => {
                central::EXEC_RESULT.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                attempt.encode(buf);
                outputs.encode(buf);
                error.encode(buf);
            }
            CentralMsg::StateProbeReply { token, load } => {
                central::STATE_PROBE_REPLY.encode(buf);
                token.encode(buf);
                load.encode(buf);
            }
            CentralMsg::CompensateResult {
                instance,
                step,
                for_abort,
            } => {
                central::COMPENSATE_RESULT.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                for_abort.encode(buf);
            }
            CentralMsg::Coord(c) => {
                central::COORD.encode(buf);
                c.encode(buf);
            }
            CentralMsg::ChildStart {
                child,
                inputs,
                parent,
                parent_step,
            } => {
                central::CHILD_START.encode(buf);
                child.encode(buf);
                inputs.encode(buf);
                parent.encode(buf);
                parent_step.encode(buf);
            }
            CentralMsg::ChildDone {
                parent,
                parent_step,
                outputs,
            } => {
                central::CHILD_DONE.encode(buf);
                parent.encode(buf);
                parent_step.encode(buf);
                outputs.encode(buf);
            }
            CentralMsg::MigrateRequest { instance, target } => {
                central::MIGRATE_REQUEST.encode(buf);
                instance.encode(buf);
                target.encode(buf);
            }
            CentralMsg::MigrateState { instance, records } => {
                central::MIGRATE_STATE.encode(buf);
                instance.encode(buf);
                (records.len() as u32).encode(buf);
                for (from, payload) in records {
                    from.encode(buf);
                    payload.encode(buf);
                }
            }
            CentralMsg::MigrateAck { instance } => {
                central::MIGRATE_ACK.encode(buf);
                instance.encode(buf);
            }
            CentralMsg::OwnerChanged { instance, owner } => {
                central::OWNER_CHANGED.encode(buf);
                instance.encode(buf);
                owner.encode(buf);
            }
        }
    }
}

impl Decode for CentralMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            central::WORKFLOW_START => CentralMsg::WorkflowStart {
                instance: Decode::decode(buf)?,
                inputs: Decode::decode(buf)?,
            },
            central::WORKFLOW_CHANGE_INPUTS => CentralMsg::WorkflowChangeInputs {
                instance: Decode::decode(buf)?,
                new_inputs: Decode::decode(buf)?,
            },
            central::WORKFLOW_ABORT => CentralMsg::WorkflowAbort {
                instance: Decode::decode(buf)?,
            },
            central::WORKFLOW_STATUS => CentralMsg::WorkflowStatus {
                instance: Decode::decode(buf)?,
            },
            central::EXEC_REQUEST => CentralMsg::ExecRequest {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                program: Decode::decode(buf)?,
                inputs: Decode::decode(buf)?,
                attempt: Decode::decode(buf)?,
                cost: Decode::decode(buf)?,
            },
            central::STATE_PROBE => CentralMsg::StateProbe {
                token: Decode::decode(buf)?,
            },
            central::COMPENSATE_REQUEST => CentralMsg::CompensateRequest {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                program: Decode::decode(buf)?,
                partial: Decode::decode(buf)?,
                for_abort: Decode::decode(buf)?,
            },
            central::EXEC_RESULT => CentralMsg::ExecResult {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                attempt: Decode::decode(buf)?,
                outputs: Decode::decode(buf)?,
                error: Decode::decode(buf)?,
            },
            central::STATE_PROBE_REPLY => CentralMsg::StateProbeReply {
                token: Decode::decode(buf)?,
                load: Decode::decode(buf)?,
            },
            central::COMPENSATE_RESULT => CentralMsg::CompensateResult {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                for_abort: Decode::decode(buf)?,
            },
            central::COORD => CentralMsg::Coord(CoordMsg::decode(buf)?),
            central::CHILD_START => CentralMsg::ChildStart {
                child: Decode::decode(buf)?,
                inputs: Decode::decode(buf)?,
                parent: Decode::decode(buf)?,
                parent_step: Decode::decode(buf)?,
            },
            central::CHILD_DONE => CentralMsg::ChildDone {
                parent: Decode::decode(buf)?,
                parent_step: Decode::decode(buf)?,
                outputs: Decode::decode(buf)?,
            },
            central::MIGRATE_REQUEST => CentralMsg::MigrateRequest {
                instance: Decode::decode(buf)?,
                target: Decode::decode(buf)?,
            },
            central::MIGRATE_STATE => {
                let instance = Decode::decode(buf)?;
                let n = u32::decode(buf)? as usize;
                let mut records = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    records.push((u32::decode(buf)?, Vec::<u8>::decode(buf)?));
                }
                CentralMsg::MigrateState { instance, records }
            }
            central::MIGRATE_ACK => CentralMsg::MigrateAck {
                instance: Decode::decode(buf)?,
            },
            central::OWNER_CHANGED => CentralMsg::OwnerChanged {
                instance: Decode::decode(buf)?,
                owner: Decode::decode(buf)?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    context: "CentralMsg",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Buf;
    use crew_model::{InstanceId, ItemKey, SchemaId, StepId, Value};
    use proptest::prelude::*;

    fn inst(n: u32) -> InstanceId {
        InstanceId::new(SchemaId(2), n)
    }

    fn round_trip(msg: CentralMsg) {
        let bytes = msg.to_bytes();
        let mut buf = bytes.clone();
        let back = CentralMsg::decode(&mut buf).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(buf.remaining(), 0, "no trailing bytes");
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(CentralMsg::WorkflowStart {
            instance: inst(1),
            inputs: vec![
                (ItemKey::input(0), Value::Int(7)),
                (ItemKey::input(1), Value::Bool(true)),
            ],
        });
        round_trip(CentralMsg::WorkflowChangeInputs {
            instance: inst(2),
            new_inputs: vec![(ItemKey::output(StepId(3), 0), Value::Str("x".into()))],
        });
        round_trip(CentralMsg::WorkflowAbort { instance: inst(3) });
        round_trip(CentralMsg::WorkflowStatus { instance: inst(4) });
        round_trip(CentralMsg::ExecRequest {
            instance: inst(5),
            step: StepId(2),
            program: "passthrough".into(),
            inputs: vec![Some(Value::Float(0.5)), None],
            attempt: 2,
            cost: 99,
        });
        round_trip(CentralMsg::StateProbe { token: u64::MAX });
        round_trip(CentralMsg::CompensateRequest {
            instance: inst(6),
            step: StepId(1),
            program: Some("undo".into()),
            partial: true,
            for_abort: false,
        });
        round_trip(CentralMsg::ExecResult {
            instance: inst(7),
            step: StepId(3),
            attempt: 1,
            outputs: Some(vec![Value::Int(1)]),
            error: None,
        });
        round_trip(CentralMsg::ExecResult {
            instance: inst(7),
            step: StepId(3),
            attempt: 2,
            outputs: None,
            error: Some("boom".into()),
        });
        round_trip(CentralMsg::StateProbeReply {
            token: 4,
            load: 1000,
        });
        round_trip(CentralMsg::CompensateResult {
            instance: inst(8),
            step: StepId(4),
            for_abort: true,
        });
        round_trip(CentralMsg::ChildStart {
            child: inst(9),
            inputs: vec![],
            parent: inst(1),
            parent_step: StepId(5),
        });
        round_trip(CentralMsg::ChildDone {
            parent: inst(1),
            parent_step: StepId(5),
            outputs: vec![Value::Bool(false)],
        });
        round_trip(CentralMsg::MigrateRequest {
            instance: inst(10),
            target: 7,
        });
        round_trip(CentralMsg::MigrateState {
            instance: inst(10),
            records: vec![(3, vec![1, 2, 3]), (u32::MAX, vec![])],
        });
        round_trip(CentralMsg::MigrateAck { instance: inst(10) });
        round_trip(CentralMsg::OwnerChanged {
            instance: inst(10),
            owner: 3,
        });
    }

    #[test]
    fn coord_variants_round_trip() {
        for c in [
            CoordMsg::RoFirstDone {
                req: 1,
                claimant: inst(1),
                partner: inst(2),
            },
            CoordMsg::RoDecision {
                req: 2,
                a: inst(1),
                b: inst(2),
                leader_side: 1,
            },
            CoordMsg::RoRelease {
                req: 3,
                k: 4,
                lagging: inst(2),
            },
            CoordMsg::MutexAcquire {
                req: 4,
                instance: inst(3),
                step: StepId(1),
            },
            CoordMsg::MutexGrant {
                req: 5,
                instance: inst(3),
                step: StepId(1),
            },
            CoordMsg::MutexRelease {
                req: 6,
                instance: inst(3),
                step: StepId(1),
            },
            CoordMsg::RollbackDep {
                instance: inst(4),
                origin: StepId(2),
            },
        ] {
            round_trip(CentralMsg::Coord(c));
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = Bytes::from_static(&[200u8]);
        assert!(matches!(
            CentralMsg::decode(&mut buf),
            Err(CodecError::BadTag {
                context: "CentralMsg",
                tag: 200
            })
        ));
    }

    proptest! {
        /// Migration messages round-trip for arbitrary identities and
        /// record slices (the payloads are opaque bytes on the wire).
        #[test]
        fn migration_messages_round_trip(
            schema in 0u32..64,
            serial in 0u32..1_000_000,
            target in 0u32..1024,
            records in proptest::collection::vec(
                (0u32..4096, proptest::collection::vec(proptest::prelude::any::<u8>(), 0..48)),
                0..12,
            ),
        ) {
            let instance = InstanceId::new(SchemaId(schema), serial);
            round_trip(CentralMsg::MigrateRequest { instance, target });
            round_trip(CentralMsg::MigrateState { instance, records: records.clone() });
            round_trip(CentralMsg::MigrateAck { instance });
            round_trip(CentralMsg::OwnerChanged { instance, owner: target });
        }
    }
}
