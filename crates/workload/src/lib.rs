//! # crew-workload
//!
//! Workload generation for the CREW experiments: a seeded random schema
//! [generator](gen) over the Table 3 structural space, the hand-built
//! [scenario schemas](scenarios) from the paper's motivating examples
//! (order processing / travel booking / claim processing with nesting and
//! loops), and the [deployment assembly](bench_setup) that turns a Table 3
//! parameter point into a runnable deployment with coordination
//! requirements and failure plans.

#![warn(missing_docs)]

pub mod bench_setup;
pub mod gen;
pub mod scenarios;

pub use bench_setup::{build_deployment, link_instances, SetupParams};
pub use gen::{generate, GenConfig};
pub use scenarios::{
    claim_processing, fraud_check, order_processing, register_programs, travel_booking,
    CLAIM_SCHEMA, FRAUD_SCHEMA, ORDER_SCHEMA, TRAVEL_SCHEMA,
};
