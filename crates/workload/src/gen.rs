//! Random workflow schema generation over the Table 3 parameter ranges.
//!
//! The generator emits structurally valid schemas mixing the paper's
//! control structures — sequences, AND-splits/joins, XOR-splits/joins —
//! with compensation programs, compensation dependent sets and rollback
//! specs sprinkled per configuration. Generation is seeded and
//! deterministic.

use crew_exec::hash;
use crew_model::{
    BackoffKind, BreakerPolicy, CmpOp, Expr, ItemKey, RetryPolicy, SchemaBuilder, SchemaId, StepId,
    StepKind, WorkflowPolicy, WorkflowSchema,
};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Target step count (the paper's `s`; the generator lands exactly on
    /// it).
    pub steps: u32,
    /// Probability that a block is parallel (AND) rather than sequential.
    pub parallel_prob: f64,
    /// Probability that a block is an if-then-else (XOR).
    pub xor_prob: f64,
    /// Fraction of steps given a compensation program.
    pub compensatable_frac: f64,
    /// Put roughly this many steps into compensation dependent sets.
    pub comp_set_steps: u32,
    /// Rollback depth (the paper's `r`): on a step failure, roll back this
    /// many blocks along the backbone (0 = retry in place, no specs).
    pub rollback_depth: u32,
    /// Fraction of steps given a random failure policy. Policies are valid
    /// by construction: whatever this draws, the schema stays free of
    /// crew-lint policy-soundness errors.
    pub policy_frac: f64,
    /// Seed for the structural draws.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            steps: 15,
            parallel_prob: 0.25,
            xor_prob: 0.25,
            compensatable_frac: 0.6,
            comp_set_steps: 3,
            rollback_depth: 0,
            policy_frac: 0.0,
            seed: 0,
        }
    }
}

/// Generate one random schema with id `id`.
///
/// Layout: a linear backbone of "blocks"; each block is a single step, an
/// AND-split diamond (2 branches, 1 step each, AND-join), or an XOR
/// diamond conditioned on the workflow's first input. Blocks are chained
/// sequentially, so the step count is controlled exactly.
pub fn generate(id: SchemaId, cfg: &GenConfig) -> WorkflowSchema {
    let mut b = SchemaBuilder::new(id, format!("gen-{}", id.0)).inputs(2);
    let draw = |salt: u64, p: f64| hash::draw(cfg.seed, &[id.0 as u64, salt], p);

    let mut remaining = cfg.steps.max(1);
    let mut tail: Option<StepId> = None;
    let mut block = 0u64;
    let mut all_steps: Vec<StepId> = Vec::new();
    // XOR branch steps: a rollback that re-decides the split abandons the
    // branch not retaken, so these must stay compensatable whenever
    // rollback specs are emitted (crew-lint's compensation-soundness pass).
    let mut xor_branch_steps: Vec<StepId> = Vec::new();
    // Backbone tails: the sequential spine every later step descends from
    // (rollback origins are drawn from here so they are always ancestors).
    let mut backbone: Vec<StepId> = Vec::new();
    // (step, block index) for rollback spec assignment.
    let mut block_of: Vec<(StepId, usize)> = Vec::new();

    while remaining > 0 {
        block += 1;
        // A diamond consumes 4 steps (split head, two branch steps, join);
        // only place one when it fits and the draw says so.
        let want_diamond = remaining >= 4
            && (draw(block * 2, cfg.parallel_prob) || draw(block * 2 + 1, cfg.xor_prob));
        if want_diamond {
            let is_xor = draw(block * 2 + 1, cfg.xor_prob) && !draw(block * 2, cfg.parallel_prob);
            let head = b.add_step(format!("B{block}h"), "stamp");
            let left = b.add_step(format!("B{block}l"), "stamp");
            let right = b.add_step(format!("B{block}r"), "stamp");
            let join = b.add_step(format!("B{block}j"), "stamp");
            if let Some(t) = tail {
                b.seq(t, head);
            }
            if is_xor {
                let cond = Expr::cmp(CmpOp::Gt, Expr::item(ItemKey::input(1)), Expr::lit(10));
                b.xor_split(head, [(left, Some(cond)), (right, None)]);
                b.xor_join([left, right], join);
                xor_branch_steps.extend([left, right]);
            } else {
                b.and_split(head, [left, right]);
                b.and_join([left, right], join);
            }
            all_steps.extend([head, left, right, join]);
            let blk = backbone.len();
            for s in [head, left, right, join] {
                block_of.push((s, blk));
            }
            backbone.push(join);
            tail = Some(join);
            remaining -= 4;
        } else {
            let s = b.add_step(format!("B{block}"), "stamp");
            if let Some(t) = tail {
                b.seq(t, s);
            }
            all_steps.push(s);
            block_of.push((s, backbone.len()));
            backbone.push(s);
            tail = Some(s);
            remaining -= 1;
        }
    }

    // Compensation programs + kinds.
    for (i, &s) in all_steps.iter().enumerate() {
        let comp = hash::draw(
            cfg.seed,
            &[id.0 as u64, 0xC0, i as u64],
            cfg.compensatable_frac,
        );
        b.configure(s, |d| {
            if comp {
                d.compensation_program = Some("passthrough".into());
            }
            d.kind = if i % 3 == 0 {
                StepKind::Query
            } else {
                StepKind::Update
            };
            d.cost = 50 + (i as u64 % 5) * 25;
        });
    }

    // Rollback specs: a failure at any step past the first block rolls
    // back `rollback_depth` blocks along the backbone (the paper's `r`).
    if cfg.rollback_depth > 0 {
        // Branch switches on re-decided XOR splits compensate the abandoned
        // branch, so its update steps need a real undo regardless of the
        // compensatable_frac draw.
        for &s in &xor_branch_steps {
            b.configure(s, |d| {
                if d.kind == StepKind::Update && d.compensation_program.is_none() {
                    d.compensation_program = Some("passthrough".into());
                }
            });
        }
        let start = all_steps[0];
        for &(step, blk) in &block_of {
            if step == start {
                continue;
            }
            let origin = if blk >= cfg.rollback_depth as usize {
                backbone[blk - cfg.rollback_depth as usize]
            } else {
                start
            };
            if origin != step {
                b.on_failure_rollback_to(step, origin);
            }
        }
    }

    // One compensation dependent set over a prefix of compensatable steps.
    let mut comp_set_members: Vec<StepId> = Vec::new();
    if cfg.comp_set_steps >= 2 {
        let members: Vec<StepId> = all_steps
            .iter()
            .copied()
            .take(cfg.comp_set_steps as usize)
            .collect();
        if members.len() >= 2 {
            // Members must be compensatable for the chain to do real work.
            for &m in &members {
                b.configure(m, |d| {
                    if d.compensation_program.is_none() {
                        d.compensation_program = Some("passthrough".into());
                    }
                });
            }
            comp_set_members = members.clone();
            b.compensation_set(members);
        }
    }

    // Failure policies: sprinkle random but valid-by-construction policies.
    // Validity rules mirror crew-lint's policy-soundness pass: retried
    // non-idempotent non-compensatable update steps become idempotent,
    // unbounded retries always dead-letter, retried compensation-set
    // members force a workflow-level failure budget, dead_letter never
    // appears without retry, and bounded max ≤ 4 with base ≤ 20 keeps
    // every backoff schedule far below the run horizon.
    if cfg.policy_frac > 0.0 {
        let mut needs_failure_budget = false;
        for (i, &s) in all_steps.iter().enumerate() {
            if !hash::draw(cfg.seed, &[id.0 as u64, 0xF0, i as u64], cfg.policy_frac) {
                continue;
            }
            let word = |salt: u64| hash::combine(cfg.seed, &[id.0 as u64, salt, i as u64]);
            let with_retry = hash::draw(cfg.seed, &[id.0 as u64, 0xF1, i as u64], 0.75);
            let unbounded =
                with_retry && hash::draw(cfg.seed, &[id.0 as u64, 0xF2, i as u64], 0.15);
            let idem_draw = hash::draw(cfg.seed, &[id.0 as u64, 0xF3, i as u64], 0.3);
            let dl_draw = hash::draw(cfg.seed, &[id.0 as u64, 0xF4, i as u64], 0.2);
            let with_breaker = hash::draw(cfg.seed, &[id.0 as u64, 0xF5, i as u64], 0.25);
            b.configure(s, |d| {
                if with_retry {
                    let mut r = if unbounded {
                        RetryPolicy::unbounded()
                    } else {
                        RetryPolicy::bounded(1 + (word(0xA1) % 4) as u32)
                    };
                    r.backoff = match word(0xA2) % 3 {
                        0 => BackoffKind::Fixed,
                        1 => BackoffKind::Linear,
                        _ => BackoffKind::Exponential,
                    };
                    r.base = 1 + word(0xA3) % 20;
                    r.jitter = word(0xA4) % 3;
                    d.policy.retry = Some(r);
                    d.policy.dead_letter = unbounded || dl_draw;
                    d.policy.idempotent = idem_draw
                        || (d.kind == StepKind::Update && d.compensation_program.is_none());
                }
                if with_breaker {
                    d.policy.breaker = Some(BreakerPolicy {
                        threshold: 1 + (word(0xA5) % 5) as u32,
                        cooldown: 50 + word(0xA6) % 451,
                    });
                }
            });
            if with_retry && comp_set_members.contains(&s) {
                needs_failure_budget = true;
            }
        }
        if needs_failure_budget {
            b.workflow_policy(WorkflowPolicy {
                max_failures: Some(4),
                dead_letter: false,
            });
        }
    }

    b.build().expect("generated schemas are structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exact_step_counts() {
        for steps in [5u32, 10, 15, 25] {
            let cfg = GenConfig {
                steps,
                ..GenConfig::default()
            };
            let s = generate(SchemaId(1), &cfg);
            assert_eq!(s.step_count() as u32, steps, "steps={steps}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = generate(SchemaId(3), &cfg);
        let b = generate(SchemaId(3), &cfg);
        assert_eq!(a, b);
        let c = generate(SchemaId(3), &GenConfig { seed: 99, ..cfg });
        // Different seed ⇒ (almost surely) different structure.
        assert!(a != c || a.step_count() == c.step_count());
    }

    #[test]
    fn contains_mixed_structures_at_high_probs() {
        let cfg = GenConfig {
            steps: 25,
            parallel_prob: 0.9,
            xor_prob: 0.9,
            ..GenConfig::default()
        };
        let s = generate(SchemaId(2), &cfg);
        let has_split = s.steps().any(|d| s.forward_outgoing(d.id).count() > 1);
        assert!(has_split, "expected at least one split");
    }

    #[test]
    fn pure_sequential_when_probs_zero() {
        let cfg = GenConfig {
            steps: 10,
            parallel_prob: 0.0,
            xor_prob: 0.0,
            ..GenConfig::default()
        };
        let s = generate(SchemaId(4), &cfg);
        for d in s.steps() {
            assert!(s.forward_outgoing(d.id).count() <= 1);
        }
        assert_eq!(s.terminal_steps().len(), 1);
    }

    #[test]
    fn policies_are_valid_by_construction() {
        for seed in 0..20u64 {
            let cfg = GenConfig {
                steps: 20,
                policy_frac: 1.0,
                compensatable_frac: 0.3,
                seed,
                ..GenConfig::default()
            };
            let s = generate(SchemaId(6), &cfg);
            let with_policy = s.steps().filter(|d| !d.policy.is_empty()).count();
            assert!(with_policy > 0, "seed={seed}: no policies emitted");
            for d in s.steps() {
                if let Some(r) = &d.policy.retry {
                    match r.max {
                        None => assert!(d.policy.dead_letter, "unbounded retry must dead-letter"),
                        Some(m) => assert!(m <= 4, "bounded max stays small"),
                    }
                    assert!(r.base <= 20 && r.jitter <= 2, "backoff fits horizon");
                    if d.kind == StepKind::Update && !d.is_compensatable() {
                        assert!(d.policy.idempotent, "retried bare update is idempotent");
                    }
                    if s.compensation_sets
                        .iter()
                        .any(|c| c.members.contains(&d.id))
                    {
                        assert!(
                            s.policy.max_failures.is_some(),
                            "retried comp-set member needs a workflow failure budget"
                        );
                    }
                } else {
                    assert!(!d.policy.dead_letter, "dead_letter never appears bare");
                }
            }
        }
    }

    #[test]
    fn compensation_set_members_are_compensatable() {
        let s = generate(SchemaId(5), &GenConfig::default());
        for set in &s.compensation_sets {
            for &m in &set.members {
                assert!(s.expect_step(m).is_compensatable());
            }
        }
    }
}
