//! Deployment assembly for the §6 experiments.
//!
//! Turns a point of the Table 3 parameter space into a runnable
//! [`Deployment`]: `c` generated schemas of `s` steps, eligibility lists of
//! `a` agents over a pool of `z`, failure probabilities, and — when the
//! point asks for them — coordination requirements covering `me`/`ro`/`rd`
//! steps per schema.

use crate::gen::{generate, GenConfig};
use crew_exec::{Deployment, FailurePlan};
use crew_model::{
    AgentId, CoordinationSpec, InstanceId, MutualExclusion, RelativeOrder, RollbackDependency,
    SchemaId, SchemaStep, StepId, WorkflowSchema,
};

/// Experiment-facing parameter point (integer view of the Table 3 space).
#[derive(Debug, Clone, Copy)]
pub struct SetupParams {
    /// Steps per workflow (`s`).
    pub s: u32,
    /// Number of schemas (`c`).
    pub c: u32,
    /// Agents (`z`).
    pub z: u32,
    /// Eligible agents per step (`a`).
    pub a: u32,
    /// Steps per schema under mutual exclusion (`me`).
    pub me: u32,
    /// Steps per schema under relative ordering (`ro`).
    pub ro: u32,
    /// Steps per schema with rollback dependencies (`rd`).
    pub rd: u32,
    /// Rollback depth on step failure (the paper's `r`).
    pub r: u32,
    /// Failure probabilities.
    pub pf: f64,
    /// Probability of workflow input change (`pi`).
    pub pi: f64,
    /// Probability of workflow abort (`pa`).
    pub pa: f64,
    /// Probability of step re-execution (`pr`).
    pub pr: f64,
    /// Run seed.
    pub seed: u64,
}

impl Default for SetupParams {
    fn default() -> Self {
        // The paper's mean point (Table 3): s=15, c=20, z=50, a=2,
        // me=ro=2, rd=1, pf=0.1, pi=pa=0.025, pr=0.25.
        SetupParams {
            s: 15,
            c: 20,
            z: 50,
            a: 2,
            me: 2,
            ro: 2,
            rd: 1,
            r: 5,
            pf: 0.1,
            pi: 0.025,
            pa: 0.025,
            pr: 0.25,
            seed: 42,
        }
    }
}

impl SetupParams {
    /// A light point for unit/integration tests.
    pub fn small() -> Self {
        SetupParams {
            s: 6,
            c: 2,
            z: 6,
            a: 2,
            me: 0,
            ro: 0,
            rd: 0,
            r: 0,
            pf: 0.0,
            pi: 0.0,
            pa: 0.0,
            pr: 0.0,
            seed: 7,
        }
    }
}

/// Assign `a` eligible agents per step over a pool of `z` (round-robin
/// with a per-step hash base, giving even coverage).
fn assign_agents(schema: &mut WorkflowSchema, z: u32, a: u32, salt: u64) {
    let step_ids: Vec<StepId> = schema.steps().map(|d| d.id).collect();
    for step in step_ids {
        let base = crew_exec::hash::combine(salt, &[step.0 as u64]) % z as u64;
        let eligible: Vec<AgentId> = (0..a.min(z))
            .map(|i| AgentId(((base + i as u64) % z as u64) as u32))
            .collect();
        schema.set_eligible_agents(step, eligible);
    }
}

/// Build the deployment for a parameter point. Sequential schemas (the
/// generator's split probabilities are configurable through `structured`)
/// keep the measured message counts directly comparable to the closed
/// forms, which assume `s` executed steps per instance.
pub fn build_deployment(p: &SetupParams, structured: bool) -> Deployment {
    let (parallel_prob, xor_prob) = if structured { (0.25, 0.25) } else { (0.0, 0.0) };
    let schemas: Vec<WorkflowSchema> = (1..=p.c)
        .map(|i| {
            let cfg = GenConfig {
                steps: p.s,
                parallel_prob,
                xor_prob,
                compensatable_frac: 0.6,
                comp_set_steps: 0,
                rollback_depth: p.r,
                policy_frac: 0.0,
                seed: p.seed,
            };
            let mut s = generate(SchemaId(i), &cfg);
            assign_agents(&mut s, p.z, p.a, p.seed ^ i as u64);
            s
        })
        .collect();

    let mut deployment = Deployment::new(schemas);
    deployment.seed = p.seed;
    deployment.plan = FailurePlan::probabilistic(p.seed, p.pf, p.pi, p.pa, p.pr);
    deployment.coordination = coordination_for(p, &deployment);
    deployment
}

/// Coordination requirements covering `me`/`ro`/`rd` steps of each schema,
/// pairing consecutive schemas (1↔2, 3↔4, …).
fn coordination_for(p: &SetupParams, deployment: &Deployment) -> CoordinationSpec {
    let mut spec = CoordinationSpec::default();
    if p.me == 0 && p.ro == 0 && p.rd == 0 {
        return spec;
    }
    let mut req = 0u32;
    let ids: Vec<SchemaId> = deployment.schemas.keys().copied().collect();
    for pair in ids.chunks(2) {
        let [sa, sb] = pair else { continue };
        let a_steps: Vec<StepId> = deployment.schemas[sa].topo_order().to_vec();
        let b_steps: Vec<StepId> = deployment.schemas[sb].topo_order().to_vec();
        // Mutual exclusion: me steps of each schema share resources.
        for k in 0..p.me.min(a_steps.len() as u32).min(b_steps.len() as u32) {
            spec.mutual_exclusions.push(MutualExclusion {
                id: req,
                resource: format!("res-{req}"),
                members: vec![
                    SchemaStep::new(*sa, a_steps[k as usize]),
                    SchemaStep::new(*sb, b_steps[k as usize]),
                ],
            });
            req += 1;
        }
        // Relative ordering: ro consecutive conflicting pairs.
        let ro_n = p.ro.min(a_steps.len() as u32).min(b_steps.len() as u32);
        if ro_n >= 2 {
            spec.relative_orders.push(RelativeOrder {
                id: req,
                conflict: format!("conflict-{req}"),
                pairs: (0..ro_n)
                    .map(|k| {
                        (
                            SchemaStep::new(*sa, a_steps[k as usize]),
                            SchemaStep::new(*sb, b_steps[k as usize]),
                        )
                    })
                    .collect(),
            });
            req += 1;
        }
        // Rollback dependencies.
        for k in 0..p.rd.min(a_steps.len() as u32) {
            spec.rollback_dependencies.push(RollbackDependency {
                id: req,
                source: SchemaStep::new(*sa, a_steps[k as usize]),
                dependent_schema: *sb,
                dependent_origin: b_steps[0],
            });
            req += 1;
        }
    }
    spec
}

/// Link consecutive instances of paired schemas for the relative-order
/// requirements (instance k of schema 2j−1 with instance k of schema 2j).
pub fn link_instances(deployment: &mut Deployment, instances: &[InstanceId]) {
    let mut by_schema: std::collections::BTreeMap<SchemaId, Vec<InstanceId>> =
        std::collections::BTreeMap::new();
    for &i in instances {
        by_schema.entry(i.schema).or_default().push(i);
    }
    let ids: Vec<SchemaId> = by_schema.keys().copied().collect();
    for pair in ids.chunks(2) {
        let [sa, sb] = pair else { continue };
        let a = &by_schema[sa];
        let b = &by_schema[sb];
        for (x, y) in a.iter().zip(b.iter()) {
            deployment.ro_links.link(*x, *y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_c_schemas_with_s_steps() {
        let p = SetupParams {
            s: 8,
            c: 4,
            z: 10,
            a: 2,
            ..SetupParams::small()
        };
        let d = build_deployment(&p, false);
        assert_eq!(d.schemas.len(), 4);
        for s in d.schemas.values() {
            assert_eq!(s.step_count(), 8);
            for def in s.steps() {
                assert_eq!(def.eligible_agents.len(), 2);
                for a in &def.eligible_agents {
                    assert!(a.0 < 10);
                }
            }
        }
        assert!(d.agent_pool_size() <= 10);
    }

    #[test]
    fn coordination_injected_per_pair() {
        let p = SetupParams {
            me: 2,
            ro: 2,
            rd: 1,
            c: 4,
            ..SetupParams::default()
        };
        let d = build_deployment(&p, false);
        // 2 schema pairs × (2 mutex + 1 relative order + 1 rbdep).
        assert_eq!(d.coordination.mutual_exclusions.len(), 4);
        assert_eq!(d.coordination.relative_orders.len(), 2);
        assert_eq!(d.coordination.rollback_dependencies.len(), 2);
    }

    #[test]
    fn no_coordination_when_zeroed() {
        let d = build_deployment(&SetupParams::small(), false);
        assert!(d.coordination.is_empty());
    }

    #[test]
    fn linking_pairs_instances() {
        let p = SetupParams {
            c: 2,
            ..SetupParams::small()
        };
        let mut d = build_deployment(&p, false);
        let a = InstanceId::new(SchemaId(1), 1);
        let b = InstanceId::new(SchemaId(2), 2);
        link_instances(&mut d, &[a, b]);
        assert_eq!(d.ro_links.partners_of(a), vec![b]);
    }
}
