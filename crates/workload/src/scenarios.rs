//! Hand-built scenario schemas exercising the paper's motivating examples.
//!
//! - [`order_processing`]: the §3 order-fulfilment workflow whose
//!   conflicting steps motivate *relative ordering* (Figure 2) — orders
//!   must consume shared parts in arrival order.
//! - [`travel_booking`]: parallel flight/hotel/car reservations with
//!   compensation (the classic saga shape) plus an if-then-else upgrade
//!   branch — the Figure 3 rollback/branch-switch scenario.
//! - [`claim_processing`]: an insurance claim flow with a nested
//!   fraud-check workflow and a loop for document resubmission.
//!
//! All three use programs registered by [`register_programs`], which
//! simulate inventory/booking/claims resource managers deterministically.

use crew_exec::{FnProgram, ProgramCtx, ProgramRegistry, StepFailure};
use crew_model::{
    CmpOp, CompensationKind, Expr, InputBinding, ItemKey, ReexecPolicy, SchemaBuilder, SchemaId,
    StepKind, Value, WorkflowSchema,
};

/// Schema id conventions for the scenario suite.
pub const ORDER_SCHEMA: SchemaId = SchemaId(1);
/// Travel booking schema id.
pub const TRAVEL_SCHEMA: SchemaId = SchemaId(2);
/// Claim processing (parent) schema id.
pub const CLAIM_SCHEMA: SchemaId = SchemaId(3);
/// Fraud check (nested child of claims) schema id.
pub const FRAUD_SCHEMA: SchemaId = SchemaId(4);

/// Register the scenario programs into `registry`.
pub fn register_programs(registry: &mut ProgramRegistry) {
    // Inventory check: in-stock iff requested quantity (input 0) <= 100.
    registry.register(
        "inv.check",
        FnProgram(|ctx: &ProgramCtx| {
            let qty = ctx.int_input(0, 0);
            Ok(vec![Value::Bool(qty <= 100), Value::Int(qty)])
        }),
    );
    // Inventory reserve: emits a reservation token derived from the order.
    registry.register(
        "inv.reserve",
        FnProgram(|ctx: &ProgramCtx| {
            let qty = ctx.int_input(0, 0);
            Ok(vec![
                Value::Str(format!("rsv-{}-{}", ctx.instance.serial, ctx.attempt)),
                Value::Int(qty),
            ])
        }),
    );
    registry.register("inv.release", FnProgram(|_: &ProgramCtx| Ok(vec![])));
    // Payment: fails when the amount (input 0) is negative.
    registry.register(
        "pay.charge",
        FnProgram(|ctx: &ProgramCtx| {
            let amount = ctx.int_input(0, 0);
            if amount < 0 {
                return Err(StepFailure::new("negative amount"));
            }
            Ok(vec![
                Value::Str(format!("chg-{}", ctx.instance.serial)),
                Value::Int(amount),
            ])
        }),
    );
    registry.register("pay.refund", FnProgram(|_: &ProgramCtx| Ok(vec![])));
    // Shipping.
    registry.register(
        "ship.dispatch",
        FnProgram(|ctx: &ProgramCtx| Ok(vec![Value::Str(format!("shp-{}", ctx.instance.serial))])),
    );
    // Bookings: each emits a confirmation code; price returned as output 2.
    for (name, base) in [
        ("book.flight", 400i64),
        ("book.hotel", 150),
        ("book.car", 60),
    ] {
        registry.register(
            name,
            FnProgram(move |ctx: &ProgramCtx| {
                let days = ctx.int_input(0, 1).max(1);
                Ok(vec![
                    Value::Str(format!("cnf-{}-{}", ctx.instance.serial, ctx.attempt)),
                    Value::Int(base * days),
                ])
            }),
        );
    }
    for name in ["cancel.flight", "cancel.hotel", "cancel.car"] {
        registry.register(name, FnProgram(|_: &ProgramCtx| Ok(vec![])));
    }
    // Itinerary totals the three booking prices.
    registry.register(
        "itinerary.total",
        FnProgram(|ctx: &ProgramCtx| {
            let total: i64 = (0..ctx.inputs.len()).map(|i| ctx.int_input(i, 0)).sum();
            Ok(vec![Value::Int(total)])
        }),
    );
    // Claims.
    registry.register(
        "claim.intake",
        FnProgram(|ctx: &ProgramCtx| {
            let amount = ctx.int_input(0, 0);
            Ok(vec![Value::Int(amount), Value::Bool(amount > 5000)])
        }),
    );
    registry.register(
        "claim.assess",
        FnProgram(|ctx: &ProgramCtx| {
            let amount = ctx.int_input(0, 0);
            // Documents complete after the second visit.
            Ok(vec![
                Value::Bool(ctx.attempt >= 1),
                Value::Int(amount * 9 / 10),
            ])
        }),
    );
    registry.register(
        "claim.payout",
        FnProgram(|ctx: &ProgramCtx| Ok(vec![Value::Int(ctx.int_input(0, 0))])),
    );
    registry.register("claim.reclaim", FnProgram(|_: &ProgramCtx| Ok(vec![])));
    registry.register(
        "fraud.screen",
        FnProgram(|ctx: &ProgramCtx| {
            let amount = ctx.int_input(0, 0);
            Ok(vec![Value::Bool(amount % 1000 == 777)])
        }),
    );
    registry.register(
        "fraud.report",
        FnProgram(|_: &ProgramCtx| Ok(vec![Value::Str("clean".into())])),
    );
}

/// Order processing: CheckStock → ReserveParts → ChargePayment → Dispatch.
///
/// Inputs: `WF.I1` = quantity, `WF.I2` = amount. `ReserveParts` and
/// `Dispatch` are the conflicting steps relative-ordering binds across
/// concurrent orders (they touch the shared parts bin / loading dock).
pub fn order_processing() -> WorkflowSchema {
    let mut b = SchemaBuilder::new(ORDER_SCHEMA, "OrderProcessing").inputs(2);
    let check = b.add_step("CheckStock", "inv.check");
    let reserve = b.add_step("ReserveParts", "inv.reserve");
    let charge = b.add_step("ChargePayment", "pay.charge");
    let dispatch = b.add_step("Dispatch", "ship.dispatch");
    b.seq(check, reserve)
        .seq(reserve, charge)
        .seq(charge, dispatch);
    b.read(check, ItemKey::input(1));
    b.read(reserve, ItemKey::input(1));
    b.read(charge, ItemKey::input(2));
    b.configure(check, |d| d.kind = StepKind::Query);
    b.configure(reserve, |d| {
        d.compensation_program = Some("inv.release".into());
        d.output_slots = 2;
    });
    b.configure(charge, |d| {
        d.compensation_program = Some("pay.refund".into());
        d.output_slots = 2;
    });
    // Reservation and payment undo in reverse order if either re-executes.
    b.compensation_set([reserve, charge]);
    b.on_failure_rollback_to(charge, reserve);
    b.build().expect("order schema is valid")
}

/// Travel booking (Figure 3 shape): Quote → AND(Flight, Hotel, Car) →
/// Total → XOR(PremiumInsurance | BasicInsurance) → Confirm.
///
/// Inputs: `WF.I1` = trip days. Total > 800 takes the premium branch; a
/// rollback that changes the total can switch branches, exercising
/// `CompensateThread`.
pub fn travel_booking() -> WorkflowSchema {
    let mut b = SchemaBuilder::new(TRAVEL_SCHEMA, "TravelBooking").inputs(1);
    let quote = b.add_step("Quote", "passthrough");
    let flight = b.add_step("BookFlight", "book.flight");
    let hotel = b.add_step("BookHotel", "book.hotel");
    let car = b.add_step("BookCar", "book.car");
    let total = b.add_step("Total", "itinerary.total");
    let premium = b.add_step("PremiumInsurance", "stamp");
    let basic = b.add_step("BasicInsurance", "stamp");
    let confirm = b.add_step("Confirm", "stamp");
    b.read(quote, ItemKey::input(1));
    b.and_split(quote, [flight, hotel, car]);
    for s in [flight, hotel, car] {
        b.read(s, ItemKey::input(1));
        b.configure(s, |d| d.output_slots = 2);
    }
    b.configure(flight, |d| {
        d.compensation_program = Some("cancel.flight".into())
    });
    b.configure(hotel, |d| {
        d.compensation_program = Some("cancel.hotel".into())
    });
    b.configure(car, |d| d.compensation_program = Some("cancel.car".into()));
    b.and_join([flight, hotel, car], total);
    for (s, slot) in [(flight, 2), (hotel, 2), (car, 2)] {
        b.read(total, ItemKey::output(s, slot));
    }
    let premium_cond = Expr::cmp(
        CmpOp::Gt,
        Expr::item(ItemKey::output(total, 1)),
        Expr::lit(800),
    );
    b.xor_split(total, [(premium, Some(premium_cond)), (basic, None)]);
    b.xor_join([premium, basic], confirm);
    // OCR policies: bookings reuse their previous confirmations when the
    // trip length is unchanged; cancellations are partial.
    for s in [flight, hotel, car] {
        b.configure(s, |d| {
            d.reexec = ReexecPolicy::IfInputsChanged;
            d.compensation_kind = CompensationKind::Partial;
        });
    }
    b.on_failure_rollback_to(total, quote);
    b.build().expect("travel schema is valid")
}

/// Claim processing with a nested fraud-check workflow and an assessment
/// resubmission loop.
///
/// Inputs: `WF.I1` = claim amount. Intake → FraudCheck (nested) → Assess
/// (loops until documents complete) → Payout.
pub fn claim_processing() -> WorkflowSchema {
    let mut b = SchemaBuilder::new(CLAIM_SCHEMA, "ClaimProcessing").inputs(1);
    let intake = b.add_step("Intake", "claim.intake");
    let fraud = b.add_nested("FraudCheck", FRAUD_SCHEMA);
    let assess = b.add_step("Assess", "claim.assess");
    let payout = b.add_step("Payout", "claim.payout");
    b.read(intake, ItemKey::input(1));
    b.configure(intake, |d| d.output_slots = 2);
    b.configure(fraud, |d| {
        d.inputs = vec![InputBinding {
            source: ItemKey::output(intake, 1),
        }];
        d.output_slots = 1;
    });
    b.read(assess, ItemKey::output(intake, 1));
    b.configure(assess, |d| d.output_slots = 2);
    b.read(payout, ItemKey::output(assess, 2));
    b.configure(payout, |d| {
        d.compensation_program = Some("claim.reclaim".into());
    });
    b.seq(intake, fraud).seq(fraud, assess).seq(assess, payout);
    // Loop: re-assess while documents are incomplete (output 1 false).
    let docs_incomplete = Expr::eq(Expr::item(ItemKey::output(assess, 1)), Expr::lit(false));
    b.loop_back(assess, assess, docs_incomplete);
    b.build().expect("claim schema is valid")
}

/// The nested fraud-check child workflow: Screen → Report.
pub fn fraud_check() -> WorkflowSchema {
    let mut b = SchemaBuilder::new(FRAUD_SCHEMA, "FraudCheck").inputs(1);
    let screen = b.add_step("Screen", "fraud.screen");
    let report = b.add_step("Report", "fraud.report");
    b.read(screen, ItemKey::input(1));
    b.seq(screen, report);
    b.configure(screen, |d| d.kind = StepKind::Query);
    b.configure(report, |d| d.kind = StepKind::Query);
    b.build().expect("fraud schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_schemas_validate() {
        assert_eq!(order_processing().step_count(), 4);
        assert_eq!(travel_booking().step_count(), 8);
        assert_eq!(claim_processing().step_count(), 4);
        assert_eq!(fraud_check().step_count(), 2);
    }

    #[test]
    fn programs_cover_every_step() {
        let mut reg = ProgramRegistry::with_builtins();
        register_programs(&mut reg);
        for schema in [
            order_processing(),
            travel_booking(),
            claim_processing(),
            fraud_check(),
        ] {
            for def in schema.steps() {
                if def.program != crew_model::NESTED_PROGRAM {
                    assert!(
                        reg.get(&def.program).is_some(),
                        "missing program {:?} for {} of {}",
                        def.program,
                        def.id,
                        schema.name
                    );
                }
                if let Some(c) = &def.compensation_program {
                    assert!(reg.get(c).is_some(), "missing compensation {c:?}");
                }
            }
        }
    }

    #[test]
    fn travel_has_figure3_shape() {
        let s = travel_booking();
        // An XOR split at Total with a confluence at Confirm.
        let total = s.steps().find(|d| d.name == "Total").unwrap().id;
        assert_eq!(s.split_kind(total), Some(crew_model::SplitKind::Xor));
        assert!(s.confluence_of(total).is_some());
        // Terminal is Confirm only.
        assert_eq!(s.terminal_steps().len(), 1);
    }

    #[test]
    fn claim_loop_and_nesting_declared() {
        let s = claim_processing();
        assert!(s.arcs().iter().any(|a| a.loop_back));
        assert_eq!(s.nested.len(), 1);
    }
}
