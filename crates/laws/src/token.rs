//! Lexer for the LAWS workflow specification language.
//!
//! The paper builds on "a workflow specification language called LAWS
//! \[that\] allows the specification of failure handling and coordinated
//! execution requirements" (§1). Its grammar is unpublished (it lives in
//! the PhD thesis), so `crew-laws` defines a small declarative surface
//! covering everything the paper attributes to LAWS; see the crate docs
//! for the grammar.

use std::fmt;

/// Source position (1-based line/column) for diagnostics.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds (names are the documentation).
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals & identifiers
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // Punctuation
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Semi,
    Arrow, // ->
    Dot,
    // Operators
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v) => write!(f, "float {v}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its position.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub pos: Pos,
}

/// Lexing errors.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub pos: Pos,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `source`. Comments run `//` to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else {
            out.push(Token { tok: Tok::Eof, pos });
            return Ok(out);
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                bump!();
                match chars.peek() {
                    Some('/') => {
                        // Line comment.
                        while let Some(&n) = chars.peek() {
                            if n == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    _ => out.push(Token {
                        tok: Tok::Slash,
                        pos,
                    }),
                }
            }
            '{' => {
                bump!();
                out.push(Token {
                    tok: Tok::LBrace,
                    pos,
                });
            }
            '}' => {
                bump!();
                out.push(Token {
                    tok: Tok::RBrace,
                    pos,
                });
            }
            '(' => {
                bump!();
                out.push(Token {
                    tok: Tok::LParen,
                    pos,
                });
            }
            ')' => {
                bump!();
                out.push(Token {
                    tok: Tok::RParen,
                    pos,
                });
            }
            ',' => {
                bump!();
                out.push(Token {
                    tok: Tok::Comma,
                    pos,
                });
            }
            ';' => {
                bump!();
                out.push(Token {
                    tok: Tok::Semi,
                    pos,
                });
            }
            '.' => {
                bump!();
                out.push(Token { tok: Tok::Dot, pos });
            }
            '+' => {
                bump!();
                out.push(Token {
                    tok: Tok::Plus,
                    pos,
                });
            }
            '*' => {
                bump!();
                out.push(Token {
                    tok: Tok::Star,
                    pos,
                });
            }
            '-' => {
                bump!();
                if chars.peek() == Some(&'>') {
                    bump!();
                    out.push(Token {
                        tok: Tok::Arrow,
                        pos,
                    });
                } else {
                    out.push(Token {
                        tok: Tok::Minus,
                        pos,
                    });
                }
            }
            '=' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Token {
                        tok: Tok::EqEq,
                        pos,
                    });
                } else {
                    return Err(LexError {
                        pos,
                        message: "expected `==`".into(),
                    });
                }
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Token {
                        tok: Tok::NotEq,
                        pos,
                    });
                } else {
                    out.push(Token {
                        tok: Tok::Bang,
                        pos,
                    });
                }
            }
            '<' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Token { tok: Tok::Le, pos });
                } else {
                    out.push(Token { tok: Tok::Lt, pos });
                }
            }
            '>' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Token { tok: Tok::Ge, pos });
                } else {
                    out.push(Token { tok: Tok::Gt, pos });
                }
            }
            '&' => {
                bump!();
                if chars.peek() == Some(&'&') {
                    bump!();
                    out.push(Token {
                        tok: Tok::AndAnd,
                        pos,
                    });
                } else {
                    return Err(LexError {
                        pos,
                        message: "expected `&&`".into(),
                    });
                }
            }
            '|' => {
                bump!();
                if chars.peek() == Some(&'|') {
                    bump!();
                    out.push(Token {
                        tok: Tok::OrOr,
                        pos,
                    });
                } else {
                    return Err(LexError {
                        pos,
                        message: "expected `||`".into(),
                    });
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(c2 @ ('"' | '\\')) => s.push(c2),
                            other => {
                                return Err(LexError {
                                    pos,
                                    message: format!("bad escape {other:?}"),
                                })
                            }
                        },
                        Some(c2) => s.push(c2),
                        None => {
                            return Err(LexError {
                                pos,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    pos,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() {
                        text.push(n);
                        bump!();
                    } else if n == '.' {
                        // Lookahead: `1.5` is a float, `S1.O2` never starts
                        // with a digit, so a dot after digits means float
                        // only when followed by a digit.
                        let mut clone = chars.clone();
                        clone.next();
                        if clone.peek().is_some_and(|d| d.is_ascii_digit()) {
                            is_float = true;
                            text.push('.');
                            bump!();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| LexError {
                        pos,
                        message: format!("bad float literal {text:?}"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| LexError {
                        pos,
                        message: format!("bad integer literal {text:?}"),
                    })?)
                };
                out.push(Token { tok, pos });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        text.push(n);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Ident(text),
                    pos,
                });
            }
            other => {
                return Err(LexError {
                    pos,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("workflow X { } -> ; , ."),
            vec![
                Tok::Ident("workflow".into()),
                Tok::Ident("X".into()),
                Tok::LBrace,
                Tok::RBrace,
                Tok::Arrow,
                Tok::Semi,
                Tok::Comma,
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_and_literals() {
        assert_eq!(
            toks(r#"== != < <= > >= + - * / && || ! 42 1.5 "hi\n""#),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Int(42),
                Tok::Float(1.5),
                Tok::Str("hi\n".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // comment\n b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn dotted_item_refs_lex_as_parts() {
        // `S1.O2` lexes as Ident, Dot, Ident — the parser reassembles.
        assert_eq!(
            toks("S1.O2"),
            vec![
                Tok::Ident("S1".into()),
                Tok::Dot,
                Tok::Ident("O2".into()),
                Tok::Eof
            ]
        );
        // but 1.5 stays a float and `1.x` splits.
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5), Tok::Eof]);
    }

    #[test]
    fn positions_tracked() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors_reported_with_position() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.pos, Pos { line: 1, col: 3 });
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a = b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }
}
