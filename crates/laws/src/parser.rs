//! Recursive-descent parser for LAWS.
//!
//! Grammar (see the crate docs for the narrative version):
//!
//! ```text
//! spec      := (workflow | coordination)* EOF
//! workflow  := "workflow" IDENT "(" "id" INT ")" "{" wfitem* "}"
//! wfitem    := "inputs" INT ";" | step | flow | parallel | choice | loop
//!            | compset | onfailure | wfpolicy
//! step      := "step" IDENT "{" stepitem* "}"
//! wfpolicy  := "policy" "{" ("max_failures" INT ";" | "dead_letter" ";")* "}"
//! steppolicy := "policy" "{" policyitem* "}"
//! policyitem := "retry" "(" ("unbounded" | INT)
//!                 ("," ("fixed"|"linear"|"exponential") INT)?
//!                 ("," "jitter" INT)? ")" ";"
//!             | "idempotent" ";"
//!             | "breaker" "(" "threshold" INT "," "cooldown" INT ")" ";"
//!             | "dead_letter" ";"
//! flow      := "flow" IDENT "->" IDENT ";"
//! parallel  := "parallel" IDENT "->" "{" IDENT ("," IDENT)* "}" "->" IDENT ";"
//! choice    := "choice" IDENT "->" "{" branch ("," branch)* "}" "->" IDENT ";"
//! branch    := IDENT ("when" expr | "otherwise")
//! loop      := "loop" IDENT ("->" IDENT)? "while" expr ";"
//! compset   := "compensation" "set" "{" IDENT ("," IDENT)* "}" ";"
//! onfailure := "on" "failure" "of" IDENT "rollback" "to" IDENT ("retry" INT)? ";"
//! coordination := "coordination" "{" coorditem* "}"
//! coorditem := "mutex" STR "{" qref ("," qref)* "}" ";"
//!            | "order" STR "(" qref "before" qref ")" ("," "(" qref "before" qref ")")* ";"
//!            | "rollback" qref "forces" IDENT "to" IDENT ";"
//! ```

use crate::ast::*;
use crate::token::{lex, Pos, Tok, Token};
use std::fmt;

/// Parse errors with positions.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub pos: Pos,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

/// Parse a LAWS source text.
pub fn parse(source: &str) -> Result<Spec, ParseError> {
    let tokens = lex(source).map_err(|e| ParseError {
        pos: e.pos,
        message: e.message,
    })?;
    let mut p = Parser { tokens, at: 0 };
    p.spec()
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.at < self.tokens.len() - 1 {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.peek().pos,
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, ParseError> {
        if self.peek().tok == tok {
            Ok(self.next())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek().tok))
        }
    }

    fn ident(&mut self) -> Result<(String, Pos), ParseError> {
        match self.peek().tok.clone() {
            Tok::Ident(s) => {
                let pos = self.peek().pos;
                self.next();
                Ok((s, pos))
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    /// Expect a specific keyword identifier.
    fn keyword(&mut self, kw: &str) -> Result<Pos, ParseError> {
        match self.peek().tok.clone() {
            Tok::Ident(s) if s == kw => Ok(self.next().pos),
            other => self.err(format!("expected `{kw}`, found {other}")),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        match self.peek().tok {
            Tok::Int(v) => {
                self.next();
                Ok(v)
            }
            ref other => self.err(format!("expected integer, found {other}")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.peek().tok.clone() {
            Tok::Str(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected string literal, found {other}")),
        }
    }

    // ---- top level ---------------------------------------------------------

    fn spec(&mut self) -> Result<Spec, ParseError> {
        let mut spec = Spec::default();
        loop {
            match &self.peek().tok {
                Tok::Eof => return Ok(spec),
                Tok::Ident(s) if s == "workflow" => spec.workflows.push(self.workflow()?),
                Tok::Ident(s) if s == "coordination" => {
                    self.next();
                    self.expect(Tok::LBrace)?;
                    while self.peek().tok != Tok::RBrace {
                        spec.coordination.push(self.coord_item()?);
                    }
                    self.expect(Tok::RBrace)?;
                }
                other => {
                    return self.err(format!(
                        "expected `workflow` or `coordination`, found {other}"
                    ))
                }
            }
        }
    }

    fn workflow(&mut self) -> Result<WorkflowDecl, ParseError> {
        let pos = self.keyword("workflow")?;
        let (name, _) = self.ident()?;
        self.expect(Tok::LParen)?;
        self.keyword("id")?;
        let id = self.int()? as u32;
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let mut decl = WorkflowDecl {
            name,
            id,
            inputs: 0,
            steps: Vec::new(),
            items: Vec::new(),
            policy: None,
            pos,
        };
        while self.peek().tok != Tok::RBrace {
            match &self.peek().tok {
                Tok::Ident(s) => match s.as_str() {
                    "inputs" => {
                        self.next();
                        decl.inputs = self.int()? as u16;
                        self.expect(Tok::Semi)?;
                    }
                    "step" => decl.steps.push(self.step()?),
                    "flow" => {
                        let pos = self.next().pos;
                        let (from, _) = self.ident()?;
                        self.expect(Tok::Arrow)?;
                        let (to, _) = self.ident()?;
                        self.expect(Tok::Semi)?;
                        decl.items.push(FlowItem::Seq { from, to, pos });
                    }
                    "parallel" => {
                        let pos = self.next().pos;
                        let (from, _) = self.ident()?;
                        self.expect(Tok::Arrow)?;
                        self.expect(Tok::LBrace)?;
                        let mut branches = vec![self.ident()?.0];
                        while self.peek().tok == Tok::Comma {
                            self.next();
                            branches.push(self.ident()?.0);
                        }
                        self.expect(Tok::RBrace)?;
                        self.expect(Tok::Arrow)?;
                        let (join, _) = self.ident()?;
                        self.expect(Tok::Semi)?;
                        decl.items.push(FlowItem::Parallel {
                            from,
                            branches,
                            join,
                            pos,
                        });
                    }
                    "choice" => {
                        let pos = self.next().pos;
                        let (from, _) = self.ident()?;
                        self.expect(Tok::Arrow)?;
                        self.expect(Tok::LBrace)?;
                        let mut branches = vec![self.choice_branch()?];
                        while self.peek().tok == Tok::Comma {
                            self.next();
                            branches.push(self.choice_branch()?);
                        }
                        self.expect(Tok::RBrace)?;
                        self.expect(Tok::Arrow)?;
                        let (join, _) = self.ident()?;
                        self.expect(Tok::Semi)?;
                        decl.items.push(FlowItem::Choice {
                            from,
                            branches,
                            join,
                            pos,
                        });
                    }
                    "loop" => {
                        let pos = self.next().pos;
                        let (from, _) = self.ident()?;
                        let to = if self.peek().tok == Tok::Arrow {
                            self.next();
                            self.ident()?.0
                        } else {
                            from.clone()
                        };
                        self.keyword("while")?;
                        let while_ = self.expr()?;
                        self.expect(Tok::Semi)?;
                        decl.items.push(FlowItem::Loop {
                            from,
                            to,
                            while_,
                            pos,
                        });
                    }
                    "compensation" => {
                        let pos = self.next().pos;
                        self.keyword("set")?;
                        self.expect(Tok::LBrace)?;
                        let mut members = vec![self.ident()?.0];
                        while self.peek().tok == Tok::Comma {
                            self.next();
                            members.push(self.ident()?.0);
                        }
                        self.expect(Tok::RBrace)?;
                        self.expect(Tok::Semi)?;
                        decl.items.push(FlowItem::CompSet { members, pos });
                    }
                    "on" => {
                        let pos = self.next().pos;
                        self.keyword("failure")?;
                        self.keyword("of")?;
                        let (failing, _) = self.ident()?;
                        self.keyword("rollback")?;
                        self.keyword("to")?;
                        let (origin, _) = self.ident()?;
                        let retries = if self.is_keyword("retry") {
                            self.next();
                            Some(self.int()? as u32)
                        } else {
                            None
                        };
                        self.expect(Tok::Semi)?;
                        decl.items.push(FlowItem::OnFailure {
                            failing,
                            origin,
                            retries,
                            pos,
                        });
                    }
                    "policy" => {
                        let pos = self.next().pos;
                        if decl.policy.is_some() {
                            return Err(ParseError {
                                pos,
                                message: "duplicate workflow policy block".into(),
                            });
                        }
                        decl.policy = Some(self.wf_policy(pos)?);
                    }
                    other => return self.err(format!("unexpected workflow item `{other}`")),
                },
                other => return self.err(format!("unexpected token {other}")),
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(decl)
    }

    fn choice_branch(&mut self) -> Result<(String, Option<ExprAst>), ParseError> {
        let (name, _) = self.ident()?;
        if self.is_keyword("when") {
            self.next();
            Ok((name, Some(self.expr()?)))
        } else if self.is_keyword("otherwise") {
            self.next();
            Ok((name, None))
        } else {
            self.err("expected `when <expr>` or `otherwise` after branch name")
        }
    }

    fn step(&mut self) -> Result<StepDecl, ParseError> {
        let pos = self.keyword("step")?;
        let (name, _) = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut decl = StepDecl {
            name,
            program: None,
            nested: None,
            compensate: None,
            query: false,
            reads: Vec::new(),
            outputs: 1,
            cost: 100,
            agents: Vec::new(),
            reexec: None,
            policy: None,
            pos,
        };
        while self.peek().tok != Tok::RBrace {
            let (kw, kw_pos) = self.ident()?;
            match kw.as_str() {
                "program" => {
                    decl.program = Some(self.string()?);
                    self.expect(Tok::Semi)?;
                }
                "calls" => {
                    self.keyword("workflow")?;
                    decl.nested = Some(self.ident()?.0);
                    self.expect(Tok::Semi)?;
                }
                "compensate" => {
                    let prog = self.string()?;
                    let partial = if self.is_keyword("partial") {
                        self.next();
                        true
                    } else {
                        false
                    };
                    decl.compensate = Some((prog, partial));
                    self.expect(Tok::Semi)?;
                }
                "kind" => {
                    let (k, p2) = self.ident()?;
                    decl.query = match k.as_str() {
                        "query" => true,
                        "update" => false,
                        other => {
                            return Err(ParseError {
                                pos: p2,
                                message: format!("kind must be query|update, got `{other}`"),
                            })
                        }
                    };
                    self.expect(Tok::Semi)?;
                }
                "reads" => {
                    decl.reads.push(self.item_ref()?);
                    while self.peek().tok == Tok::Comma {
                        self.next();
                        decl.reads.push(self.item_ref()?);
                    }
                    self.expect(Tok::Semi)?;
                }
                "outputs" => {
                    decl.outputs = self.int()? as u16;
                    self.expect(Tok::Semi)?;
                }
                "cost" => {
                    decl.cost = self.int()? as u64;
                    self.expect(Tok::Semi)?;
                }
                "agents" => {
                    decl.agents.push(self.int()? as u32);
                    while self.peek().tok == Tok::Comma {
                        self.next();
                        decl.agents.push(self.int()? as u32);
                    }
                    self.expect(Tok::Semi)?;
                }
                "reexecute" => {
                    let r = if self.is_keyword("always") {
                        self.next();
                        ReexecDecl::Always
                    } else if self.is_keyword("never") {
                        self.next();
                        ReexecDecl::Never
                    } else if self.is_keyword("when") {
                        self.next();
                        if self.is_keyword("inputs_changed") {
                            self.next();
                            ReexecDecl::InputsChanged
                        } else {
                            ReexecDecl::When(self.expr()?)
                        }
                    } else {
                        return Err(ParseError {
                            pos: kw_pos,
                            message: "reexecute expects always|never|when ...".into(),
                        });
                    };
                    decl.reexec = Some(r);
                    self.expect(Tok::Semi)?;
                }
                "policy" => {
                    if decl.policy.is_some() {
                        return Err(ParseError {
                            pos: kw_pos,
                            message: "duplicate step policy block".into(),
                        });
                    }
                    decl.policy = Some(self.step_policy(kw_pos)?);
                }
                other => {
                    return Err(ParseError {
                        pos: kw_pos,
                        message: format!("unexpected step item `{other}`"),
                    })
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(decl)
    }

    /// `policy { (max_failures INT ";" | dead_letter ";")* }` — the
    /// `policy` keyword has already been consumed at `pos`.
    fn wf_policy(&mut self, pos: Pos) -> Result<WfPolicyDecl, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut decl = WfPolicyDecl {
            max_failures: None,
            dead_letter: false,
            pos,
        };
        while self.peek().tok != Tok::RBrace {
            let (kw, kw_pos) = self.ident()?;
            match kw.as_str() {
                "max_failures" => {
                    decl.max_failures = Some(self.int()? as u32);
                    self.expect(Tok::Semi)?;
                }
                "dead_letter" => {
                    decl.dead_letter = true;
                    self.expect(Tok::Semi)?;
                }
                other => {
                    return Err(ParseError {
                        pos: kw_pos,
                        message: format!("unexpected workflow policy item `{other}`"),
                    })
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(decl)
    }

    /// `policy { policyitem* }` — the `policy` keyword has already been
    /// consumed at `pos`.
    fn step_policy(&mut self, pos: Pos) -> Result<PolicyDecl, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut decl = PolicyDecl {
            retry: None,
            idempotent: false,
            breaker: None,
            dead_letter: false,
            pos,
        };
        while self.peek().tok != Tok::RBrace {
            let (kw, kw_pos) = self.ident()?;
            match kw.as_str() {
                "retry" => {
                    decl.retry = Some(self.retry_decl(kw_pos)?);
                    self.expect(Tok::Semi)?;
                }
                "idempotent" => {
                    decl.idempotent = true;
                    self.expect(Tok::Semi)?;
                }
                "breaker" => {
                    self.expect(Tok::LParen)?;
                    self.keyword("threshold")?;
                    let threshold = self.int()? as u32;
                    self.expect(Tok::Comma)?;
                    self.keyword("cooldown")?;
                    let cooldown = self.int()? as u64;
                    self.expect(Tok::RParen)?;
                    self.expect(Tok::Semi)?;
                    decl.breaker = Some((threshold, cooldown));
                }
                "dead_letter" => {
                    decl.dead_letter = true;
                    self.expect(Tok::Semi)?;
                }
                other => {
                    return Err(ParseError {
                        pos: kw_pos,
                        message: format!("unexpected policy item `{other}`"),
                    })
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(decl)
    }

    /// `retry "(" ("unbounded" | INT) ("," backoff INT)? ("," "jitter" INT)? ")"`
    fn retry_decl(&mut self, pos: Pos) -> Result<RetryDecl, ParseError> {
        self.expect(Tok::LParen)?;
        let max = if self.is_keyword("unbounded") {
            self.next();
            None
        } else {
            Some(self.int()? as u32)
        };
        let mut decl = RetryDecl {
            max,
            backoff: None,
            jitter: None,
            pos,
        };
        while self.peek().tok == Tok::Comma {
            self.next();
            let (kw, kw_pos) = self.ident()?;
            let kind = match kw.as_str() {
                "fixed" => Some(BackoffKindAst::Fixed),
                "linear" => Some(BackoffKindAst::Linear),
                "exponential" => Some(BackoffKindAst::Exponential),
                "jitter" => None,
                other => {
                    return Err(ParseError {
                        pos: kw_pos,
                        message: format!(
                            "expected fixed|linear|exponential|jitter, found `{other}`"
                        ),
                    })
                }
            };
            let value = self.int()? as u64;
            match kind {
                Some(k) => decl.backoff = Some((k, value)),
                None => decl.jitter = Some(value),
            }
        }
        self.expect(Tok::RParen)?;
        Ok(decl)
    }

    fn item_ref(&mut self) -> Result<ItemRef, ParseError> {
        let (scope, pos) = self.ident()?;
        self.expect(Tok::Dot)?;
        let (slot, _) = self.ident()?;
        Ok(ItemRef { scope, slot, pos })
    }

    fn qual_ref(&mut self) -> Result<QualRef, ParseError> {
        let (workflow, pos) = self.ident()?;
        self.expect(Tok::Dot)?;
        let (step, _) = self.ident()?;
        Ok(QualRef {
            workflow,
            step,
            pos,
        })
    }

    fn coord_item(&mut self) -> Result<CoordItem, ParseError> {
        let (kw, pos) = self.ident()?;
        match kw.as_str() {
            "mutex" => {
                let resource = self.string()?;
                self.expect(Tok::LBrace)?;
                let mut members = vec![self.qual_ref()?];
                while self.peek().tok == Tok::Comma {
                    self.next();
                    members.push(self.qual_ref()?);
                }
                self.expect(Tok::RBrace)?;
                self.expect(Tok::Semi)?;
                Ok(CoordItem::Mutex {
                    resource,
                    members,
                    pos,
                })
            }
            "order" => {
                let conflict = self.string()?;
                let mut pairs = vec![self.order_pair()?];
                while self.peek().tok == Tok::Comma {
                    self.next();
                    pairs.push(self.order_pair()?);
                }
                self.expect(Tok::Semi)?;
                Ok(CoordItem::Order {
                    conflict,
                    pairs,
                    pos,
                })
            }
            "rollback" => {
                let source = self.qual_ref()?;
                self.keyword("forces")?;
                let (dependent, _) = self.ident()?;
                self.keyword("to")?;
                let (origin, _) = self.ident()?;
                self.expect(Tok::Semi)?;
                Ok(CoordItem::Rollback {
                    source,
                    dependent,
                    origin,
                    pos,
                })
            }
            other => Err(ParseError {
                pos,
                message: format!("expected mutex|order|rollback, found `{other}`"),
            }),
        }
    }

    fn order_pair(&mut self) -> Result<(QualRef, QualRef), ParseError> {
        self.expect(Tok::LParen)?;
        let a = self.qual_ref()?;
        self.keyword("before")?;
        let b = self.qual_ref()?;
        self.expect(Tok::RParen)?;
        Ok((a, b))
    }

    // ---- expressions ---------------------------------------------------------

    fn expr(&mut self) -> Result<ExprAst, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek().tok == Tok::OrOr {
            self.next();
            let rhs = self.and_expr()?;
            lhs = ExprAst::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek().tok == Tok::AndAnd {
            self.next();
            let rhs = self.cmp_expr()?;
            lhs = ExprAst::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<ExprAst, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().tok {
            Tok::EqEq => CmpOpAst::Eq,
            Tok::NotEq => CmpOpAst::Ne,
            Tok::Lt => CmpOpAst::Lt,
            Tok::Le => CmpOpAst::Le,
            Tok::Gt => CmpOpAst::Gt,
            Tok::Ge => CmpOpAst::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(ExprAst::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => ArithOpAst::Add,
                Tok::Minus => ArithOpAst::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = ExprAst::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => ArithOpAst::Mul,
                Tok::Slash => ArithOpAst::Div,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.unary_expr()?;
            lhs = ExprAst::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<ExprAst, ParseError> {
        match self.peek().tok {
            Tok::Bang => {
                self.next();
                Ok(ExprAst::Not(Box::new(self.unary_expr()?)))
            }
            Tok::Minus => {
                self.next();
                Ok(ExprAst::Neg(Box::new(self.unary_expr()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<ExprAst, ParseError> {
        match self.peek().tok.clone() {
            Tok::Int(v) => {
                self.next();
                Ok(ExprAst::Int(v))
            }
            Tok::Float(v) => {
                self.next();
                Ok(ExprAst::Float(v))
            }
            Tok::Str(s) => {
                self.next();
                Ok(ExprAst::Str(s))
            }
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(s) => match s.as_str() {
                "true" => {
                    self.next();
                    Ok(ExprAst::Bool(true))
                }
                "false" => {
                    self.next();
                    Ok(ExprAst::Bool(false))
                }
                "defined" => {
                    self.next();
                    self.expect(Tok::LParen)?;
                    let item = self.item_ref()?;
                    self.expect(Tok::RParen)?;
                    Ok(ExprAst::Defined(item))
                }
                _ => Ok(ExprAst::Item(self.item_ref()?)),
            },
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_workflow() {
        let spec = parse(
            r#"
            workflow Hello (id 1) {
                inputs 1;
                step A { program "passthrough"; }
                step B { program "sum"; reads WF.I1, A.O1; }
                flow A -> B;
            }
            "#,
        )
        .unwrap();
        assert_eq!(spec.workflows.len(), 1);
        let wf = &spec.workflows[0];
        assert_eq!(wf.name, "Hello");
        assert_eq!(wf.id, 1);
        assert_eq!(wf.inputs, 1);
        assert_eq!(wf.steps.len(), 2);
        assert_eq!(wf.steps[1].reads.len(), 2);
        assert!(matches!(wf.items[0], FlowItem::Seq { .. }));
    }

    #[test]
    fn parses_structures_and_recovery() {
        let spec = parse(
            r#"
            workflow T (id 2) {
                inputs 1;
                step A { program "p"; }
                step B { program "p"; compensate "u" partial; kind query; }
                step C { program "p"; outputs 2; cost 250; agents 0, 3; }
                step D { program "p"; reexecute when inputs_changed; }
                step E { program "p"; reexecute always; }
                step N { calls workflow Child; }
                parallel A -> { B, C } -> D;
                choice D -> { E when C.O2 > 10, N otherwise } -> A2;
                step A2 { program "p"; reexecute never; }
                loop E while WF.I1 < 3;
                loop A2 -> D while A2.O1 == false;
                compensation set { B, C };
                on failure of D rollback to A retry 5;
            }
            "#,
        )
        .unwrap();
        let wf = &spec.workflows[0];
        assert_eq!(wf.steps.len(), 7);
        assert!(wf.steps.iter().any(|s| s.nested == Some("Child".into())));
        assert!(wf
            .items
            .iter()
            .any(|i| matches!(i, FlowItem::Parallel { branches, .. } if branches.len() == 2)));
        assert!(wf.items.iter().any(|i| matches!(
            i,
            FlowItem::OnFailure {
                retries: Some(5),
                ..
            }
        )));
        assert_eq!(
            wf.items
                .iter()
                .filter(|i| matches!(i, FlowItem::Loop { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn parses_coordination_block() {
        let spec = parse(
            r#"
            coordination {
                mutex "booth" { WF1.S2, WF2.S3 };
                order "parts" (WF1.S2 before WF2.S2), (WF1.S4 before WF2.S4);
                rollback WF1.S2 forces WF2 to S1;
            }
            "#,
        )
        .unwrap();
        assert_eq!(spec.coordination.len(), 3);
        assert!(matches!(
            &spec.coordination[1],
            CoordItem::Order { pairs, .. } if pairs.len() == 2
        ));
    }

    #[test]
    fn expression_precedence() {
        let spec = parse(
            r#"
            workflow E (id 1) {
                inputs 2;
                step A { program "p"; }
                step B { program "p"; }
                choice A -> { B when WF.I1 + 2 * WF.I2 > 10 && !defined(A.O1), A2 otherwise } -> C;
                step A2 { program "p"; }
                step C { program "p"; }
            }
            "#,
        )
        .unwrap();
        let FlowItem::Choice { branches, .. } = &spec.workflows[0].items[0] else {
            panic!("expected choice");
        };
        let cond = branches[0].1.as_ref().unwrap();
        // Shape: And(Cmp(Gt, Add(I1, Mul(2, I2)), 10), Not(Defined(A.O1)))
        let ExprAst::And(l, r) = cond else {
            panic!("top is &&: {cond:?}")
        };
        assert!(matches!(**l, ExprAst::Cmp(CmpOpAst::Gt, _, _)));
        assert!(matches!(**r, ExprAst::Not(_)));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("workflow X { }").unwrap_err();
        assert!(err.message.contains("expected `(`"), "{}", err.message);
        let err = parse("workflow X (id 1) { step A { bogus 1; } }").unwrap_err();
        assert!(
            err.message.contains("unexpected step item"),
            "{}",
            err.message
        );
        let err = parse("nonsense").unwrap_err();
        assert!(
            err.message.contains("expected `workflow`"),
            "{}",
            err.message
        );
        let err = parse("coordination { order \"x\" (A.B after C.D); }").unwrap_err();
        assert!(err.message.contains("before"), "{}", err.message);
    }

    #[test]
    fn parses_policy_blocks() {
        let spec = parse(
            r#"
            workflow P (id 1) {
                inputs 1;
                policy { max_failures 4; dead_letter; }
                step A {
                    program "p";
                    policy { retry(3, exponential 10, jitter 2); idempotent; }
                }
                step B {
                    program "p";
                    policy {
                        retry(unbounded);
                        breaker(threshold 2, cooldown 500);
                        dead_letter;
                    }
                }
                flow A -> B;
            }
            "#,
        )
        .unwrap();
        let wf = &spec.workflows[0];
        let wfp = wf.policy.as_ref().unwrap();
        assert_eq!(wfp.max_failures, Some(4));
        assert!(wfp.dead_letter);
        let a = wf.steps[0].policy.as_ref().unwrap();
        let ra = a.retry.as_ref().unwrap();
        assert_eq!(ra.max, Some(3));
        assert_eq!(ra.backoff, Some((BackoffKindAst::Exponential, 10)));
        assert_eq!(ra.jitter, Some(2));
        assert!(a.idempotent);
        assert!(!a.dead_letter);
        let b = wf.steps[1].policy.as_ref().unwrap();
        assert_eq!(b.retry.as_ref().unwrap().max, None);
        assert_eq!(b.breaker, Some((2, 500)));
        assert!(b.dead_letter);
    }

    #[test]
    fn policy_errors_are_reported() {
        let err = parse(
            r#"workflow P (id 1) { step A { program "p"; policy { retry(2); } policy { } } }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate step policy"), "{err}");
        let err = parse(r#"workflow P (id 1) { step A { program "p"; policy { backoff 3; } } }"#)
            .unwrap_err();
        assert!(err.message.contains("unexpected policy item"), "{err}");
        let err = parse(r#"workflow P (id 1) { policy { retry(2); } }"#).unwrap_err();
        assert!(
            err.message.contains("unexpected workflow policy item"),
            "{err}"
        );
    }

    #[test]
    fn empty_spec_ok() {
        assert_eq!(parse("").unwrap(), Spec::default());
        assert_eq!(parse("// only a comment").unwrap(), Spec::default());
    }
}
