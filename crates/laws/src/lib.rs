//! # crew-laws
//!
//! The LAWS workflow specification language. The paper's enactment
//! pipeline starts from LAWS: "a workflow specification language ...
//! \[that\] allows the specification of failure handling and coordinated
//! execution requirements. Requirements expressed in LAWS are converted
//! into rules" (§1, §3). The original grammar is unpublished, so this
//! crate defines a small declarative DSL covering everything the paper
//! attributes to LAWS and compiles it to `crew-model` schemas +
//! coordination specs (which then compile to rules via `crew-rules`).
//!
//! ## Example
//!
//! ```
//! let spec = crew_laws::parse_and_compile(r#"
//!     workflow Greeter (id 1) {
//!         inputs 1;
//!         step Hello { program "passthrough"; reads WF.I1; }
//!         step World { program "sum"; reads Hello.O1; }
//!         flow Hello -> World;
//!     }
//! "#).unwrap();
//! assert_eq!(spec.schemas.len(), 1);
//! assert_eq!(spec.schemas[0].step_count(), 2);
//! ```
//!
//! ## Surface
//!
//! - `workflow Name (id N) { ... }` — steps, control flow
//!   (`flow`/`parallel`/`choice`/`loop`), `compensation set { ... }`,
//!   `on failure of S rollback to T [retry N]`, and an optional
//!   `policy { max_failures N; dead_letter; }` block.
//! - `step Name { program "p"; compensate "u" [partial]; kind query;
//!   reads WF.I1, Other.O2; outputs N; cost N; agents 0, 1;
//!   reexecute always|never|when inputs_changed|when <expr>; }` or
//!   `calls workflow Child;` for nested workflows. Steps may carry a
//!   failure-policy block: `policy { retry(unbounded|N [, fixed|linear|
//!   exponential N] [, jitter N]); idempotent; breaker(threshold N,
//!   cooldown N); dead_letter; }`.
//! - `coordination { mutex "res" { WF.Step, ... }; order "conflict"
//!   (A.X before B.Y), ...; rollback A.X forces B to Y; }`.

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod parser;
pub mod token;

pub use compile::{compile, CompileError, CompiledSpec};
pub use parser::{parse, ParseError};

/// One-step convenience: parse then compile.
pub fn parse_and_compile(source: &str) -> Result<CompiledSpec, LawsError> {
    let spec = parse(source).map_err(LawsError::Parse)?;
    compile(&spec).map_err(LawsError::Compile)
}

/// [`parse_and_compile`] plus the `crew-lint` analyzer: fails with
/// [`LawsError::Lint`] when the spec carries Error-level findings
/// (compensation unsoundness, coordination deadlock, non-terminating
/// rule templates, data hazards, failure-policy unsoundness). Warn-level
/// diagnostics are kept on the
/// returned spec's lint report but do not fail compilation.
pub fn parse_and_compile_strict(source: &str) -> Result<CompiledSpec, LawsError> {
    let spec = parse_and_compile(source)?;
    let diags = spec.lint();
    if crew_lint::is_clean(&diags) {
        Ok(spec)
    } else {
        Err(LawsError::Lint(diags))
    }
}

/// Either phase's error.
#[derive(Debug, Clone, PartialEq)]
pub enum LawsError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Name resolution / structural validation failed.
    Compile(CompileError),
    /// Strict mode: the spec compiled but the analyzer found Error-level
    /// problems. All diagnostics (including Warns) are carried along.
    Lint(Vec<crew_lint::Diagnostic>),
}

impl std::fmt::Display for LawsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LawsError::Parse(e) => write!(f, "{e}"),
            LawsError::Compile(e) => write!(f, "{e}"),
            LawsError::Lint(diags) => {
                let n = crew_lint::errors(diags).count();
                write!(f, "spec failed lint with {n} error(s):")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for LawsError {}
