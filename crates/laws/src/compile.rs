//! Compiling LAWS ASTs to `crew-model` schemas and coordination specs.
//!
//! Name resolution happens here: step names become [`StepId`]s, item
//! references (`WF.I1`, `StepName.O2`) become [`ItemKey`]s, and workflow
//! names in the coordination block resolve across workflow declarations.
//! Structural validation is delegated to [`SchemaBuilder::build`], so LAWS
//! specs get exactly the same rigor as programmatically built schemas.

use crate::ast::*;
use crate::token::Pos;
use crew_lint::{CoordKind, Span, SpanTable};
use crew_model::{
    CompensationKind, CoordinationSpec, Expr, InputBinding, ItemKey, MutualExclusion, ReexecPolicy,
    RelativeOrder, RollbackDependency, SchemaBuilder, SchemaError, SchemaId, SchemaStep, StepId,
    StepKind, WorkflowSchema,
};
use std::collections::BTreeMap;
use std::fmt;

/// Compilation errors with positions where available.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    pub pos: Option<Pos>,
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "compile error at {p}: {}", self.message),
            None => write!(f, "compile error: {}", self.message),
        }
    }
}

impl std::error::Error for CompileError {}

fn err<T>(pos: Pos, message: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        pos: Some(pos),
        message: message.into(),
    })
}

/// The compiled output of a LAWS spec.
#[derive(Debug, Clone)]
pub struct CompiledSpec {
    /// Validated schemas, in declaration order.
    pub schemas: Vec<WorkflowSchema>,
    /// Coordination requirements resolved across the schemas.
    pub coordination: CoordinationSpec,
    /// Source positions of compiled entities, for lint diagnostics.
    pub spans: SpanTable,
}

impl CompiledSpec {
    /// Run the `crew-lint` analyzer over this spec, with diagnostics
    /// carrying LAWS source positions.
    pub fn lint(&self) -> Vec<crew_lint::Diagnostic> {
        crew_lint::lint_with_spans(&self.schemas, &self.coordination, &self.spans)
    }
}

fn span(pos: Pos) -> Span {
    Span {
        line: pos.line,
        col: pos.col,
    }
}

/// Compile a parsed [`Spec`].
pub fn compile(spec: &Spec) -> Result<CompiledSpec, CompileError> {
    // Workflow name → schema id (for nested references + coordination).
    let mut wf_ids: BTreeMap<&str, SchemaId> = BTreeMap::new();
    for wf in &spec.workflows {
        if wf_ids.insert(&wf.name, SchemaId(wf.id)).is_some() {
            return err(wf.pos, format!("duplicate workflow name `{}`", wf.name));
        }
    }
    // Duplicate-id check.
    {
        let mut seen = BTreeMap::new();
        for wf in &spec.workflows {
            if let Some(prev) = seen.insert(wf.id, &wf.name) {
                return err(
                    wf.pos,
                    format!(
                        "workflow id {} used by both `{prev}` and `{}`",
                        wf.id, wf.name
                    ),
                );
            }
        }
    }

    let mut schemas = Vec::new();
    let mut spans = SpanTable::default();
    // (workflow name → (step name → id)) for coordination resolution.
    let mut step_maps: BTreeMap<&str, BTreeMap<&str, StepId>> = BTreeMap::new();

    for wf in &spec.workflows {
        let (schema, steps) = compile_workflow(wf, &wf_ids)?;
        spans.record_workflow(schema.id, span(wf.pos));
        for step in &wf.steps {
            let id = steps[step.name.as_str()];
            spans.record_step(schema.id, id, span(step.pos));
            if let Some(p) = &step.policy {
                spans.record_step_policy(schema.id, id, span(p.pos));
            }
        }
        step_maps.insert(&wf.name, steps);
        schemas.push(schema);
    }

    let coordination = compile_coordination(&spec.coordination, &wf_ids, &step_maps, &mut spans)?;
    Ok(CompiledSpec {
        schemas,
        coordination,
        spans,
    })
}

fn compile_workflow<'a>(
    wf: &'a WorkflowDecl,
    wf_ids: &BTreeMap<&str, SchemaId>,
) -> Result<(WorkflowSchema, BTreeMap<&'a str, StepId>), CompileError> {
    let mut b = SchemaBuilder::new(SchemaId(wf.id), wf.name.clone()).inputs(wf.inputs);
    if let Some(p) = &wf.policy {
        b.workflow_policy(crew_model::WorkflowPolicy {
            max_failures: p.max_failures,
            dead_letter: p.dead_letter,
        });
    }
    let mut ids: BTreeMap<&str, StepId> = BTreeMap::new();

    // Pass 1: declare steps.
    for step in &wf.steps {
        if ids.contains_key(step.name.as_str()) {
            return err(step.pos, format!("duplicate step name `{}`", step.name));
        }
        let id = match (&step.program, &step.nested) {
            (Some(_), Some(_)) => {
                return err(
                    step.pos,
                    format!(
                        "step `{}` has both `program` and `calls workflow`",
                        step.name
                    ),
                )
            }
            (Some(p), None) => b.add_step(&step.name, p.clone()),
            (None, Some(child)) => {
                let Some(&child_id) = wf_ids.get(child.as_str()) else {
                    return err(step.pos, format!("unknown nested workflow `{child}`"));
                };
                b.add_nested(&step.name, child_id)
            }
            (None, None) => {
                return err(
                    step.pos,
                    format!("step `{}` needs `program` or `calls workflow`", step.name),
                )
            }
        };
        ids.insert(&step.name, id);
    }

    // Pass 2: configure steps (needs all names for item refs).
    for step in &wf.steps {
        let id = ids[step.name.as_str()];
        let reads = step
            .reads
            .iter()
            .map(|r| resolve_item(r, &ids))
            .collect::<Result<Vec<_>, _>>()?;
        let reexec = match &step.reexec {
            None => None,
            Some(ReexecDecl::Always) => Some(ReexecPolicy::Always),
            Some(ReexecDecl::Never) => Some(ReexecPolicy::Never),
            Some(ReexecDecl::InputsChanged) => Some(ReexecPolicy::IfInputsChanged),
            Some(ReexecDecl::When(e)) => Some(ReexecPolicy::When(resolve_expr(e, &ids)?)),
        };
        let policy = step.policy.as_ref().map(compile_step_policy);
        b.configure(id, |d| {
            d.kind = if step.query {
                StepKind::Query
            } else {
                StepKind::Update
            };
            d.inputs = reads
                .into_iter()
                .map(|source| InputBinding { source })
                .collect();
            d.output_slots = step.outputs;
            d.cost = step.cost;
            if let Some((prog, partial)) = &step.compensate {
                d.compensation_program = Some(prog.clone());
                d.compensation_kind = if *partial {
                    CompensationKind::Partial
                } else {
                    CompensationKind::Complete
                };
            }
            if let Some(r) = reexec {
                d.reexec = r;
            }
            if let Some(p) = policy {
                d.policy = p;
            }
            d.eligible_agents = step
                .agents
                .iter()
                .map(|&a| crew_model::AgentId(a))
                .collect();
        });
    }

    // Pass 3: flow items.
    let lookup = |name: &str, pos: Pos, ids: &BTreeMap<&str, StepId>| {
        ids.get(name).copied().ok_or_else(|| CompileError {
            pos: Some(pos),
            message: format!("unknown step `{name}` in workflow `{}`", wf.name),
        })
    };
    for item in &wf.items {
        match item {
            FlowItem::Seq { from, to, pos } => {
                let f = lookup(from, *pos, &ids)?;
                let t = lookup(to, *pos, &ids)?;
                b.seq(f, t);
            }
            FlowItem::Parallel {
                from,
                branches,
                join,
                pos,
            } => {
                let f = lookup(from, *pos, &ids)?;
                let heads = branches
                    .iter()
                    .map(|n| lookup(n, *pos, &ids))
                    .collect::<Result<Vec<_>, _>>()?;
                let j = lookup(join, *pos, &ids)?;
                b.and_split(f, heads.clone());
                b.and_join(heads, j);
            }
            FlowItem::Choice {
                from,
                branches,
                join,
                pos,
            } => {
                let f = lookup(from, *pos, &ids)?;
                let mut arcs = Vec::new();
                for (name, cond) in branches {
                    let head = lookup(name, *pos, &ids)?;
                    let guard = match cond {
                        Some(e) => Some(resolve_expr(e, &ids)?),
                        None => None,
                    };
                    arcs.push((head, guard));
                }
                let heads: Vec<StepId> = arcs.iter().map(|(h, _)| *h).collect();
                let j = lookup(join, *pos, &ids)?;
                b.xor_split(f, arcs);
                b.xor_join(heads, j);
            }
            FlowItem::Loop {
                from,
                to,
                while_,
                pos,
            } => {
                let f = lookup(from, *pos, &ids)?;
                let t = lookup(to, *pos, &ids)?;
                b.loop_back(f, t, resolve_expr(while_, &ids)?);
            }
            FlowItem::CompSet { members, pos } => {
                let m = members
                    .iter()
                    .map(|n| lookup(n, *pos, &ids))
                    .collect::<Result<Vec<_>, _>>()?;
                b.compensation_set(m);
            }
            FlowItem::OnFailure {
                failing,
                origin,
                retries,
                pos,
            } => {
                let f = lookup(failing, *pos, &ids)?;
                let o = lookup(origin, *pos, &ids)?;
                match retries {
                    Some(n) => {
                        b.on_failure_rollback_to_with_attempts(f, o, *n);
                    }
                    None => {
                        b.on_failure_rollback_to(f, o);
                    }
                }
            }
        }
    }

    let schema = b.build().map_err(|e: SchemaError| CompileError {
        pos: Some(wf.pos),
        message: format!("workflow `{}`: {e}", wf.name),
    })?;
    Ok((schema, ids))
}

/// Translate a parsed step policy block into the model type, applying the
/// surface defaults (fixed backoff with zero base, zero jitter).
fn compile_step_policy(p: &PolicyDecl) -> crew_model::StepPolicy {
    crew_model::StepPolicy {
        retry: p.retry.as_ref().map(|r| {
            let (backoff, base) = match r.backoff {
                Some((BackoffKindAst::Fixed, b)) => (crew_model::BackoffKind::Fixed, b),
                Some((BackoffKindAst::Linear, b)) => (crew_model::BackoffKind::Linear, b),
                Some((BackoffKindAst::Exponential, b)) => (crew_model::BackoffKind::Exponential, b),
                None => (crew_model::BackoffKind::Fixed, 0),
            };
            crew_model::RetryPolicy {
                max: r.max,
                backoff,
                base,
                jitter: r.jitter.unwrap_or(0),
            }
        }),
        idempotent: p.idempotent,
        breaker: p
            .breaker
            .map(|(threshold, cooldown)| crew_model::BreakerPolicy {
                threshold,
                cooldown,
            }),
        dead_letter: p.dead_letter,
    }
}

/// Resolve `WF.I<n>` / `<Step>.O<n>` item references.
fn resolve_item(r: &ItemRef, ids: &BTreeMap<&str, StepId>) -> Result<ItemKey, CompileError> {
    let slot_num = |s: &str, prefix: char| -> Option<u16> {
        s.strip_prefix(prefix).and_then(|n| n.parse().ok())
    };
    if r.scope == "WF" {
        match slot_num(&r.slot, 'I') {
            Some(n) => Ok(ItemKey::input(n)),
            None => err(
                r.pos,
                format!("workflow items are WF.I<n>, got `WF.{}`", r.slot),
            ),
        }
    } else {
        let Some(&step) = ids.get(r.scope.as_str()) else {
            return err(
                r.pos,
                format!("unknown step `{}` in item reference", r.scope),
            );
        };
        match slot_num(&r.slot, 'O') {
            Some(n) => Ok(ItemKey::output(step, n)),
            None => err(
                r.pos,
                format!("step outputs are <Step>.O<n>, got `{}.{}`", r.scope, r.slot),
            ),
        }
    }
}

fn resolve_expr(e: &ExprAst, ids: &BTreeMap<&str, StepId>) -> Result<Expr, CompileError> {
    Ok(match e {
        ExprAst::Int(v) => Expr::lit(*v),
        ExprAst::Float(v) => Expr::lit(*v),
        ExprAst::Str(s) => Expr::lit(s.as_str()),
        ExprAst::Bool(b) => Expr::lit(*b),
        ExprAst::Item(r) => Expr::item(resolve_item(r, ids)?),
        ExprAst::Defined(r) => Expr::Defined(resolve_item(r, ids)?),
        ExprAst::Cmp(op, l, r) => {
            let op = match op {
                CmpOpAst::Eq => crew_model::CmpOp::Eq,
                CmpOpAst::Ne => crew_model::CmpOp::Ne,
                CmpOpAst::Lt => crew_model::CmpOp::Lt,
                CmpOpAst::Le => crew_model::CmpOp::Le,
                CmpOpAst::Gt => crew_model::CmpOp::Gt,
                CmpOpAst::Ge => crew_model::CmpOp::Ge,
            };
            Expr::cmp(op, resolve_expr(l, ids)?, resolve_expr(r, ids)?)
        }
        ExprAst::Arith(op, l, r) => {
            let op = match op {
                ArithOpAst::Add => crew_model::ArithOp::Add,
                ArithOpAst::Sub => crew_model::ArithOp::Sub,
                ArithOpAst::Mul => crew_model::ArithOp::Mul,
                ArithOpAst::Div => crew_model::ArithOp::Div,
            };
            Expr::arith(op, resolve_expr(l, ids)?, resolve_expr(r, ids)?)
        }
        ExprAst::And(l, r) => Expr::and(resolve_expr(l, ids)?, resolve_expr(r, ids)?),
        ExprAst::Or(l, r) => Expr::or(resolve_expr(l, ids)?, resolve_expr(r, ids)?),
        ExprAst::Not(inner) => Expr::not(resolve_expr(inner, ids)?),
        ExprAst::Neg(inner) => Expr::arith(
            crew_model::ArithOp::Sub,
            Expr::lit(0),
            resolve_expr(inner, ids)?,
        ),
    })
}

fn compile_coordination(
    items: &[CoordItem],
    wf_ids: &BTreeMap<&str, SchemaId>,
    step_maps: &BTreeMap<&str, BTreeMap<&str, StepId>>,
    spans: &mut SpanTable,
) -> Result<CoordinationSpec, CompileError> {
    let resolve = |q: &QualRef| -> Result<SchemaStep, CompileError> {
        let Some(&schema) = wf_ids.get(q.workflow.as_str()) else {
            return err(q.pos, format!("unknown workflow `{}`", q.workflow));
        };
        let Some(&step) = step_maps
            .get(q.workflow.as_str())
            .and_then(|m| m.get(q.step.as_str()))
        else {
            return err(
                q.pos,
                format!("workflow `{}` has no step `{}`", q.workflow, q.step),
            );
        };
        Ok(SchemaStep::new(schema, step))
    };

    let mut spec = CoordinationSpec::default();
    let mut next_id = 0u32;
    for item in items {
        match item {
            CoordItem::Mutex {
                resource,
                members,
                pos,
            } => {
                spec.mutual_exclusions.push(MutualExclusion {
                    id: next_id,
                    resource: resource.clone(),
                    members: members.iter().map(&resolve).collect::<Result<_, _>>()?,
                });
                spans.record_coord(CoordKind::Mutex, next_id, span(*pos));
                next_id += 1;
            }
            CoordItem::Order {
                conflict,
                pairs,
                pos,
            } => {
                spec.relative_orders.push(RelativeOrder {
                    id: next_id,
                    conflict: conflict.clone(),
                    pairs: pairs
                        .iter()
                        .map(|(a, b)| Ok((resolve(a)?, resolve(b)?)))
                        .collect::<Result<_, CompileError>>()?,
                });
                spans.record_coord(CoordKind::Order, next_id, span(*pos));
                next_id += 1;
            }
            CoordItem::Rollback {
                source,
                dependent,
                origin,
                pos,
            } => {
                let src = resolve(source)?;
                let Some(&dep_schema) = wf_ids.get(dependent.as_str()) else {
                    return err(*pos, format!("unknown workflow `{dependent}`"));
                };
                let Some(&dep_origin) = step_maps
                    .get(dependent.as_str())
                    .and_then(|m| m.get(origin.as_str()))
                else {
                    return err(
                        *pos,
                        format!("workflow `{dependent}` has no step `{origin}`"),
                    );
                };
                spec.rollback_dependencies.push(RollbackDependency {
                    id: next_id,
                    source: src,
                    dependent_schema: dep_schema,
                    dependent_origin: dep_origin,
                });
                spans.record_coord(CoordKind::RollbackDep, next_id, span(*pos));
                next_id += 1;
            }
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Result<CompiledSpec, CompileError> {
        compile(&parse(src).expect("parse"))
    }

    const ORDER_SRC: &str = r#"
        workflow OrderProcessing (id 1) {
            inputs 2;
            step CheckStock {
                program "inv.check";
                kind query;
                reads WF.I1;
                outputs 2;
            }
            step ReserveParts {
                program "inv.reserve";
                compensate "inv.release";
                reads WF.I1;
                outputs 2;
                reexecute when inputs_changed;
            }
            step ChargePayment {
                program "pay.charge";
                compensate "pay.refund" partial;
                reads WF.I2;
                outputs 2;
            }
            step Dispatch { program "ship.dispatch"; }
            flow CheckStock -> ReserveParts;
            flow ReserveParts -> ChargePayment;
            flow ChargePayment -> Dispatch;
            compensation set { ReserveParts, ChargePayment };
            on failure of ChargePayment rollback to ReserveParts retry 4;
        }
    "#;

    #[test]
    fn compiles_order_processing() {
        let out = compile_src(ORDER_SRC).unwrap();
        assert_eq!(out.schemas.len(), 1);
        let s = &out.schemas[0];
        assert_eq!(s.id, SchemaId(1));
        assert_eq!(s.step_count(), 4);
        assert_eq!(s.compensation_sets.len(), 1);
        let spec = s.rollback_spec_for(StepId(3)).expect("rollback spec");
        assert_eq!(spec.origin, StepId(2));
        assert_eq!(spec.max_attempts, 4);
        let charge = s.expect_step(StepId(3));
        assert_eq!(charge.compensation_kind, CompensationKind::Partial);
        assert_eq!(charge.input_keys(), vec![ItemKey::input(2)]);
        let check = s.expect_step(StepId(1));
        assert_eq!(check.kind, StepKind::Query);
    }

    #[test]
    fn compiles_structures_and_nesting() {
        let out = compile_src(
            r#"
            workflow Child (id 9) {
                inputs 1;
                step Only { program "p"; reads WF.I1; }
            }
            workflow Parent (id 2) {
                inputs 1;
                step Start { program "p"; outputs 1; }
                step L { program "p"; }
                step R { program "p"; }
                step Join { program "p"; }
                step Sub { calls workflow Child; reads Start.O1; }
                step Fin { program "p"; }
                parallel Start -> { L, R } -> Join;
                flow Join -> Sub;
                flow Sub -> Fin;
                loop Fin -> Join while Fin.O1 == false;
            }
            "#,
        )
        .unwrap();
        assert_eq!(out.schemas.len(), 2);
        let parent = out.schemas.iter().find(|s| s.id == SchemaId(2)).unwrap();
        assert_eq!(parent.nested.len(), 1);
        assert!(parent.arcs().iter().any(|a| a.loop_back));
        assert_eq!(
            parent.split_kind(StepId(1)),
            Some(crew_model::SplitKind::And)
        );
    }

    #[test]
    fn compiles_coordination() {
        let out = compile_src(&format!(
            "{ORDER_SRC}
            workflow Restock (id 2) {{
                inputs 1;
                step Pick {{ program \"p\"; }}
                step Stage {{ program \"p\"; }}
                flow Pick -> Stage;
            }}
            coordination {{
                mutex \"dock\" {{ OrderProcessing.Dispatch, Restock.Stage }};
                order \"parts\" (OrderProcessing.ReserveParts before Restock.Pick),
                               (OrderProcessing.Dispatch before Restock.Stage);
                rollback OrderProcessing.ReserveParts forces Restock to Pick;
            }}"
        ))
        .unwrap();
        assert_eq!(out.coordination.mutual_exclusions.len(), 1);
        assert_eq!(out.coordination.relative_orders.len(), 1);
        assert_eq!(out.coordination.relative_orders[0].pairs.len(), 2);
        assert_eq!(out.coordination.rollback_dependencies.len(), 1);
    }

    #[test]
    fn strict_mode_accepts_clean_spec() {
        crate::parse_and_compile_strict(ORDER_SRC).expect("order spec lints clean");
    }

    #[test]
    fn strict_mode_rejects_error_findings_with_spans() {
        // `while true` never lets the loop exit: LoopNeverExits (Error).
        let err = crate::parse_and_compile_strict(
            "workflow W (id 1) {
                inputs 1;
                step A { program \"p\"; }
                step B { program \"p\"; }
                flow A -> B;
                loop B -> A while true;
            }",
        )
        .unwrap_err();
        let crate::LawsError::Lint(diags) = err else {
            panic!("expected lint failure, got {err}");
        };
        let d = diags
            .iter()
            .find(|d| d.id == crew_lint::LintId::LoopNeverExits)
            .expect("loop-never-exits diagnostic");
        // The diagnostic lands on the loop head step `A`, declared line 3.
        assert_eq!(d.span.map(|s| s.line), Some(3), "{d}");
    }

    #[test]
    fn lint_report_keeps_warns_without_failing_strict() {
        // Two parallel branches run the same update program: a Warn, not
        // an Error, so strict mode still accepts the spec.
        let spec = crate::parse_and_compile_strict(
            "workflow W (id 1) {
                inputs 1;
                step A { program \"p\"; }
                step L { program \"stamp\"; }
                step R { program \"stamp\"; }
                step J { program \"p\"; }
                parallel A -> { L, R } -> J;
            }",
        )
        .expect("warns do not fail strict mode");
        let diags = spec.lint();
        assert!(diags
            .iter()
            .any(|d| d.id == crew_lint::LintId::ConcurrentWriteConflict));
        assert!(crew_lint::is_clean(&diags));
    }

    #[test]
    fn name_resolution_errors() {
        let e = compile_src("workflow W (id 1) { step A { program \"p\"; } flow A -> Nope; }")
            .unwrap_err();
        assert!(e.message.contains("unknown step `Nope`"), "{e}");

        let e =
            compile_src("workflow W (id 1) { step A { program \"p\"; reads B.O1; } }").unwrap_err();
        assert!(e.message.contains("unknown step `B`"), "{e}");

        let e = compile_src("workflow W (id 1) { step A { calls workflow Ghost; } }").unwrap_err();
        assert!(e.message.contains("unknown nested workflow"), "{e}");

        let e = compile_src("coordination { mutex \"x\" { W.A }; }").unwrap_err();
        assert!(e.message.contains("unknown workflow `W`"), "{e}");
    }

    #[test]
    fn structural_errors_surface_from_builder() {
        // Cycle through forward arcs.
        let e = compile_src(
            "workflow W (id 1) {
                step A { program \"p\"; }
                step B { program \"p\"; }
                flow A -> B; flow B -> A;
            }",
        )
        .unwrap_err();
        assert!(
            e.message.contains("cycle") || e.message.contains("start step"),
            "{e}"
        );
    }

    #[test]
    fn duplicate_names_and_ids_rejected() {
        let e = compile_src(
            "workflow W (id 1) { step A { program \"p\"; } }
             workflow W (id 2) { step A { program \"p\"; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate workflow name"), "{e}");

        let e = compile_src(
            "workflow W (id 1) { step A { program \"p\"; } }
             workflow X (id 1) { step A { program \"p\"; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("workflow id 1"), "{e}");

        let e = compile_src(
            "workflow W (id 1) { step A { program \"p\"; } step A { program \"q\"; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate step name"), "{e}");
    }

    #[test]
    fn bad_item_slots_rejected() {
        let e = compile_src("workflow W (id 1) { step A { program \"p\"; reads WF.X1; } }")
            .unwrap_err();
        assert!(e.message.contains("WF.I<n>"), "{e}");

        let e = compile_src(
            "workflow W (id 1) { inputs 1;
                step A { program \"p\"; }
                step B { program \"p\"; reads A.I1; }
                flow A -> B; }",
        )
        .unwrap_err();
        assert!(e.message.contains("O<n>"), "{e}");
    }
}
