//! Abstract syntax of LAWS specifications.
//!
//! The AST mirrors the surface grammar one-to-one; field and variant
//! names follow the grammar, so per-field docs are suppressed.
#![allow(missing_docs)]

use crate::token::Pos;

/// A complete parsed specification.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    pub workflows: Vec<WorkflowDecl>,
    pub coordination: Vec<CoordItem>,
}

/// `workflow Name (id N) { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowDecl {
    pub name: String,
    pub id: u32,
    pub inputs: u16,
    pub steps: Vec<StepDecl>,
    pub items: Vec<FlowItem>,
    /// `policy { max_failures N; dead_letter; }`
    pub policy: Option<WfPolicyDecl>,
    pub pos: Pos,
}

/// `step Name { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct StepDecl {
    pub name: String,
    /// `program "name";` — exclusive with `calls workflow`.
    pub program: Option<String>,
    /// `calls workflow Child;` — a nested workflow step.
    pub nested: Option<String>,
    /// `compensate "name" [partial];`
    pub compensate: Option<(String, bool)>,
    /// `kind query|update;` (default update)
    pub query: bool,
    /// `reads <itemref>, ...;`
    pub reads: Vec<ItemRef>,
    /// `outputs N;` (default 1)
    pub outputs: u16,
    /// `cost N;` (default 100)
    pub cost: u64,
    /// `agents N, ...;` eligible agent indices.
    pub agents: Vec<u32>,
    /// `reexecute always|never|when inputs_changed|when <expr>;`
    pub reexec: Option<ReexecDecl>,
    /// `policy { retry(...); idempotent; breaker(...); dead_letter; }`
    pub policy: Option<PolicyDecl>,
    pub pos: Pos,
}

/// `policy { ... }` inside a step body.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDecl {
    /// `retry(unbounded|N [, fixed|linear|exponential N] [, jitter N]);`
    pub retry: Option<RetryDecl>,
    /// `idempotent;`
    pub idempotent: bool,
    /// `breaker(threshold N, cooldown N);`
    pub breaker: Option<(u32, u64)>,
    /// `dead_letter;`
    pub dead_letter: bool,
    pub pos: Pos,
}

/// The argument list of a `retry(...)` policy item.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryDecl {
    /// `None` = `unbounded`.
    pub max: Option<u32>,
    /// Backoff shape and base delay in ticks.
    pub backoff: Option<(BackoffKindAst, u64)>,
    pub jitter: Option<u64>,
    pub pos: Pos,
}

/// Backoff schedule shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffKindAst {
    Fixed,
    Linear,
    Exponential,
}

/// `policy { ... }` inside a workflow body.
#[derive(Debug, Clone, PartialEq)]
pub struct WfPolicyDecl {
    /// `max_failures N;`
    pub max_failures: Option<u32>,
    /// `dead_letter;`
    pub dead_letter: bool,
    pub pos: Pos,
}

/// The re-execution policy surface.
#[derive(Debug, Clone, PartialEq)]
pub enum ReexecDecl {
    Always,
    Never,
    InputsChanged,
    When(ExprAst),
}

/// A data item reference: `WF.I1` or `StepName.O2`.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemRef {
    /// `"WF"` or a step name.
    pub scope: String,
    /// `I<n>` or `O<n>`.
    pub slot: String,
    pub pos: Pos,
}

/// Flow/recovery declarations inside a workflow body.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowItem {
    /// `flow A -> B;`
    Seq { from: String, to: String, pos: Pos },
    /// `parallel A -> { B, C } -> D;`
    Parallel {
        from: String,
        branches: Vec<String>,
        join: String,
        pos: Pos,
    },
    /// `choice A -> { B when e, C otherwise } -> D;`
    Choice {
        from: String,
        branches: Vec<(String, Option<ExprAst>)>,
        join: String,
        pos: Pos,
    },
    /// `loop A while e;` (self-loop) or `loop A -> B while e;` (back-edge
    /// from A to upstream B).
    Loop {
        from: String,
        to: String,
        while_: ExprAst,
        pos: Pos,
    },
    /// `compensation set { A, B };`
    CompSet { members: Vec<String>, pos: Pos },
    /// `on failure of A rollback to B [retry N];`
    OnFailure {
        failing: String,
        origin: String,
        retries: Option<u32>,
        pos: Pos,
    },
}

/// Coordination-block declarations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordItem {
    /// `mutex "res" { WF.Step, WF2.Step };`
    Mutex {
        resource: String,
        members: Vec<QualRef>,
        pos: Pos,
    },
    /// `order "conflict" (A.X before B.Y), (A.X2 before B.Y2);`
    Order {
        conflict: String,
        pairs: Vec<(QualRef, QualRef)>,
        pos: Pos,
    },
    /// `rollback A.X forces B to Y;`
    Rollback {
        source: QualRef,
        dependent: String,
        origin: String,
        pos: Pos,
    },
}

/// `WorkflowName.StepName`
#[derive(Debug, Clone, PartialEq)]
pub struct QualRef {
    pub workflow: String,
    pub step: String,
    pub pos: Pos,
}

/// Expression AST (compiled to `crew_model::Expr`).
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Item(ItemRef),
    Defined(ItemRef),
    Cmp(CmpOpAst, Box<ExprAst>, Box<ExprAst>),
    Arith(ArithOpAst, Box<ExprAst>, Box<ExprAst>),
    And(Box<ExprAst>, Box<ExprAst>),
    Or(Box<ExprAst>, Box<ExprAst>),
    Not(Box<ExprAst>),
    Neg(Box<ExprAst>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOpAst {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOpAst {
    Add,
    Sub,
    Mul,
    Div,
}
