//! End-to-end tests for the `crew-lint` binary: exit-code contract and the
//! stable `--format json` schema.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_crew-lint"))
}

fn write_spec(name: &str, source: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crew-lint-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, source).unwrap();
    path
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

const CLEAN: &str = r#"workflow Ok (id 1) {
    inputs 1;
    step A { program "p"; }
    step B { program "p"; }
    flow A -> B;
}
"#;

// `policy { retry(unbounded); }` opens on line 4: the span the JSON
// diagnostics must carry.
const UNSOUND: &str = r#"workflow Bad (id 1) {
    inputs 1;
    step A {
        program "p";
        policy { retry(unbounded); idempotent; }
    }
    step B { program "p"; }
    flow A -> B;
}
"#;

#[test]
fn clean_spec_exits_zero() {
    let path = write_spec("clean.laws", CLEAN);
    let out = bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("clean"));
}

#[test]
fn error_finding_exits_one() {
    let path = write_spec("unsound.laws", UNSOUND);
    let out = bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("unbounded-retry-without-dead-letter"));
}

#[test]
fn unparseable_spec_exits_two() {
    let path = write_spec("broken.laws", "workflow Broken {{{");
    let out = bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_file_exits_two() {
    let out = bin().arg("/nonexistent/nope.laws").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn no_args_is_usage_error() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_format_emits_stable_schema() {
    let path = write_spec("unsound-json.laws", UNSOUND);
    let out = bin()
        .args(["--format", "json"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "json keeps the exit contract");
    let text = stdout(&out);
    // Shape: one array of target objects with diagnostic objects inside.
    assert!(text.trim_start().starts_with('['), "array root: {text}");
    assert!(text.trim_end().ends_with(']'), "array root: {text}");
    assert!(text.contains("\"target\": "), "{text}");
    assert!(text.contains("\"errors\": 1"), "{text}");
    assert!(text.contains("\"warnings\": 0"), "{text}");
    assert!(
        text.contains("\"id\": \"unbounded-retry-without-dead-letter\""),
        "{text}"
    );
    assert!(text.contains("\"severity\": \"error\""), "{text}");
    assert!(
        text.contains("\"span\": {\"line\": 5, \"col\": "),
        "policy-block span expected: {text}"
    );
    assert!(text.contains("\"message\": "), "{text}");
    // No human-format noise on stdout in json mode.
    assert!(!text.contains("error(s)"), "{text}");
}

#[test]
fn json_format_clean_target_has_empty_diagnostics() {
    let path = write_spec("clean-json.laws", CLEAN);
    let out = bin()
        .args(["--format", "json"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("\"diagnostics\": []"), "{text}");
    assert!(text.contains("\"errors\": 0"), "{text}");
}

#[test]
fn json_escapes_target_strings() {
    // The target path lands in the JSON document verbatim; a quote in the
    // filename must come back escaped so the document stays well-formed.
    let path = write_spec("we\"ird.laws", CLEAN);
    let out = bin()
        .args(["--format", "json"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("we\\\"ird.laws"), "{text}");
}

#[test]
fn json_covers_builtin_targets() {
    let out = bin()
        .args(["--format", "json", "--builtin"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(
        text.contains("\"target\": \"builtin:order_processing\""),
        "{text}"
    );
    assert!(
        text.contains("\"target\": \"builtin:gen(seed=0,r=0)\""),
        "{text}"
    );
}

#[test]
fn bad_format_value_is_usage_error() {
    let out = bin().args(["--format", "yaml", "x.laws"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
