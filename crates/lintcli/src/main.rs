//! `crew-lint` — static verifier CLI for LAWS specs and built-in corpora.
//!
//! ```text
//! crew-lint [--deny-warnings] [--builtin] [FILE.laws ...]
//! ```
//!
//! Lints each `.laws` file (parse → compile → analyze, diagnostics carry
//! source positions) and, with `--builtin`, the workload scenario schemas
//! and a sweep of generated schemas. Exit status: 0 when every target is
//! free of Error-level diagnostics (and of Warns under `--deny-warnings`),
//! 1 when any finding fails the run, 2 on usage/IO/compile failures.

use crew_lint::{lint, Diagnostic};
use crew_model::{CoordinationSpec, SchemaId, WorkflowSchema};
use crew_workload::{
    claim_processing, fraud_check, generate, order_processing, travel_booking, GenConfig,
};
use std::process::ExitCode;

struct Options {
    deny_warnings: bool,
    builtin: bool,
    files: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!("usage: crew-lint [--deny-warnings] [--builtin] [FILE.laws ...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut opts = Options {
        deny_warnings: false,
        builtin: false,
        files: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--builtin" => opts.builtin = true,
            "--help" | "-h" => {
                return usage();
            }
            _ if arg.starts_with('-') => {
                eprintln!("crew-lint: unknown flag `{arg}`");
                return usage();
            }
            _ => opts.files.push(arg),
        }
    }
    if !opts.builtin && opts.files.is_empty() {
        return usage();
    }

    let mut failed = false;
    let mut broken = false;

    for file in &opts.files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("crew-lint: {file}: {e}");
                broken = true;
                continue;
            }
        };
        match crew_laws::parse_and_compile(&source) {
            Ok(spec) => {
                failed |= report(file, &spec.lint(), opts.deny_warnings);
            }
            Err(e) => {
                eprintln!("crew-lint: {file}: {e}");
                broken = true;
            }
        }
    }

    if opts.builtin {
        for (name, schemas, coordination) in builtin_targets() {
            failed |= report(&name, &lint(&schemas, &coordination), opts.deny_warnings);
        }
    }

    if broken {
        ExitCode::from(2)
    } else if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Print a target's diagnostics; true when the target fails the run.
fn report(target: &str, diags: &[Diagnostic], deny_warnings: bool) -> bool {
    let errors = crew_lint::errors(diags).count();
    let warns = diags.len() - errors;
    if diags.is_empty() {
        println!("{target}: clean");
        return false;
    }
    println!("{target}: {errors} error(s), {warns} warning(s)");
    for d in diags {
        println!("  {d}");
    }
    errors > 0 || (deny_warnings && warns > 0)
}

/// The built-in corpus: the four scenario schemas (claim nests fraud, so
/// they lint as one group) plus a seeded sweep of generated schemas across
/// the structure and rollback parameter space.
fn builtin_targets() -> Vec<(String, Vec<WorkflowSchema>, CoordinationSpec)> {
    let mut out = vec![
        (
            "builtin:order_processing".to_owned(),
            vec![order_processing()],
            CoordinationSpec::default(),
        ),
        (
            "builtin:travel_booking".to_owned(),
            vec![travel_booking()],
            CoordinationSpec::default(),
        ),
        (
            "builtin:claim_processing".to_owned(),
            vec![claim_processing(), fraud_check()],
            CoordinationSpec::default(),
        ),
    ];
    for seed in 0..4u64 {
        for rollback_depth in [0u32, 1, 2] {
            let cfg = GenConfig {
                steps: 18,
                parallel_prob: 0.35,
                xor_prob: 0.35,
                compensatable_frac: 0.5,
                rollback_depth,
                seed,
                ..GenConfig::default()
            };
            out.push((
                format!("builtin:gen(seed={seed},r={rollback_depth})"),
                vec![generate(SchemaId(100 + seed as u32), &cfg)],
                CoordinationSpec::default(),
            ));
        }
    }
    out
}
