//! `crew-lint` — static verifier CLI for LAWS specs and built-in corpora.
//!
//! ```text
//! crew-lint [--deny-warnings] [--builtin] [--format text|json] [FILE.laws ...]
//! ```
//!
//! Lints each `.laws` file (parse → compile → analyze, diagnostics carry
//! source positions) and, with `--builtin`, the workload scenario schemas
//! and a sweep of generated schemas. Exit status: 0 when every target is
//! free of Error-level diagnostics (and of Warns under `--deny-warnings`),
//! 1 when any finding fails the run, 2 on usage/IO/compile failures.
//!
//! `--format json` emits one JSON document on stdout — an array of target
//! objects, each `{"target", "errors", "warnings", "diagnostics": [{"id",
//! "severity", "span": {"line", "col"} | null, "message"}]}` — a stable
//! schema for CI and editor tooling. IO/compile failures still go to
//! stderr and exit 2 either way.

use crew_lint::{lint, Diagnostic, Severity};
use crew_model::{CoordinationSpec, SchemaId, WorkflowSchema};
use crew_workload::{
    claim_processing, fraud_check, generate, order_processing, travel_booking, GenConfig,
};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Options {
    deny_warnings: bool,
    builtin: bool,
    format: Format,
    files: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: crew-lint [--deny-warnings] [--builtin] [--format text|json] [FILE.laws ...]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut opts = Options {
        deny_warnings: false,
        builtin: false,
        format: Format::Text,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--builtin" => opts.builtin = true,
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some(other) => {
                    eprintln!("crew-lint: unknown format `{other}`");
                    return usage();
                }
                None => {
                    eprintln!("crew-lint: --format needs a value");
                    return usage();
                }
            },
            "--help" | "-h" => {
                return usage();
            }
            _ if arg.starts_with('-') => {
                eprintln!("crew-lint: unknown flag `{arg}`");
                return usage();
            }
            _ => opts.files.push(arg),
        }
    }
    if !opts.builtin && opts.files.is_empty() {
        return usage();
    }

    let mut failed = false;
    let mut broken = false;
    let mut results: Vec<(String, Vec<Diagnostic>)> = Vec::new();

    for file in &opts.files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("crew-lint: {file}: {e}");
                broken = true;
                continue;
            }
        };
        match crew_laws::parse_and_compile(&source) {
            Ok(spec) => results.push((file.clone(), spec.lint())),
            Err(e) => {
                eprintln!("crew-lint: {file}: {e}");
                broken = true;
            }
        }
    }

    if opts.builtin {
        for (name, schemas, coordination) in builtin_targets() {
            results.push((name, lint(&schemas, &coordination)));
        }
    }

    for (target, diags) in &results {
        let errors = crew_lint::errors(diags).count();
        let warns = diags.len() - errors;
        failed |= errors > 0 || (opts.deny_warnings && warns > 0);
        if opts.format == Format::Text {
            report(target, diags, errors, warns);
        }
    }
    if opts.format == Format::Json {
        println!("{}", render_json(&results));
    }

    if broken {
        ExitCode::from(2)
    } else if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Print a target's diagnostics in the human-readable format.
fn report(target: &str, diags: &[Diagnostic], errors: usize, warns: usize) {
    if diags.is_empty() {
        println!("{target}: clean");
        return;
    }
    println!("{target}: {errors} error(s), {warns} warning(s)");
    for d in diags {
        println!("  {d}");
    }
}

/// Render every target's findings as one JSON array (stable schema).
fn render_json(results: &[(String, Vec<Diagnostic>)]) -> String {
    let mut out = String::from("[");
    for (i, (target, diags)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let errors = crew_lint::errors(diags).count();
        out.push_str("\n  {\"target\": ");
        json_string(target, &mut out);
        out.push_str(&format!(
            ", \"errors\": {errors}, \"warnings\": {}, \"diagnostics\": [",
            diags.len() - errors
        ));
        for (j, d) in diags.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"id\": ");
            json_string(&d.id.to_string(), &mut out);
            out.push_str(", \"severity\": ");
            json_string(
                match d.severity {
                    Severity::Error => "error",
                    Severity::Warn => "warn",
                },
                &mut out,
            );
            out.push_str(", \"span\": ");
            match d.span {
                Some(s) => out.push_str(&format!("{{\"line\": {}, \"col\": {}}}", s.line, s.col)),
                None => out.push_str("null"),
            }
            out.push_str(", \"message\": ");
            json_string(&d.message, &mut out);
            out.push('}');
        }
        if !diags.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]}");
    }
    if !results.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Append `s` as a JSON string literal (RFC 8259 escaping).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The built-in corpus: the four scenario schemas (claim nests fraud, so
/// they lint as one group) plus a seeded sweep of generated schemas across
/// the structure and rollback parameter space.
fn builtin_targets() -> Vec<(String, Vec<WorkflowSchema>, CoordinationSpec)> {
    let mut out = vec![
        (
            "builtin:order_processing".to_owned(),
            vec![order_processing()],
            CoordinationSpec::default(),
        ),
        (
            "builtin:travel_booking".to_owned(),
            vec![travel_booking()],
            CoordinationSpec::default(),
        ),
        (
            "builtin:claim_processing".to_owned(),
            vec![claim_processing(), fraud_check()],
            CoordinationSpec::default(),
        ),
    ];
    for seed in 0..4u64 {
        for rollback_depth in [0u32, 1, 2] {
            let cfg = GenConfig {
                steps: 18,
                parallel_prob: 0.35,
                xor_prob: 0.35,
                compensatable_frac: 0.5,
                rollback_depth,
                policy_frac: 0.3,
                seed,
                ..GenConfig::default()
            };
            out.push((
                format!("builtin:gen(seed={seed},r={rollback_depth})"),
                vec![generate(SchemaId(100 + seed as u32), &cfg)],
                CoordinationSpec::default(),
            ));
        }
    }
    out
}
