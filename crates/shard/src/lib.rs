//! # crew-shard
//!
//! Scale-out support for the parallel control architecture (§6): the
//! pieces that turn a *static* partition of instances over `e` engines
//! into a managed sharding layer.
//!
//! - [`ring`]: seeded consistent-hash placement with virtual nodes, so
//!   adding or removing an engine remaps only `~1/e` of the instance
//!   space (the static `hash mod e` assignment remaps almost all of it).
//! - [`load`]: the per-engine load sample exported by the runtime —
//!   live instances, delivered messages, WFDB write pressure.
//! - [`balancer`]: an analysis-driven policy that compares the measured
//!   load spread against the paper's §7 prediction (uniform `1/e` of the
//!   parallel-control load) and emits migration orders from the hottest
//!   to the coldest engines when the divergence exceeds a threshold.
//!
//! The crate is deliberately runtime-free: it depends on the model, the
//! hash, and the closed-form analysis, never on an engine implementation.
//! `crew-central` consumes the ring for placement; its driver consumes
//! the balancer's orders and turns them into live `MigrateRequest`s.

#![warn(missing_docs)]

pub mod balancer;
pub mod load;
pub mod ring;

pub use balancer::{plan_migrations, predicted_engine_share, BalancerConfig, MigrationOrder};
pub use load::{measured_skew, EngineLoad};
pub use ring::Ring;

pub use crew_analysis::Params;
