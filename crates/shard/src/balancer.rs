//! Analysis-driven auto-balancing policy.
//!
//! The §7 analysis predicts that parallel control spreads the navigation
//! load uniformly: each of the `e` engines carries `1/e` of the total
//! (Table 5 divides every load term by `e`). That prediction is the
//! balancer's reference point — as long as the measured per-engine
//! pressure stays within a tolerance band of uniform, the fleet matches
//! the model and migration would be pure overhead. When the measured skew
//! *diverges* from the analytic prediction (hot schemas, bursty arrival
//! mixes, a drained engine rejoining), the policy emits migration orders
//! that move instances from the hottest engines to the coldest until the
//! predicted balance is plausible again.
//!
//! The policy is pure: samples in, orders out. The runtime driver turns
//! each order into `count` live `MigrateRequest`s for concrete instances.

use crate::load::{measured_skew, EngineLoad};
use crew_analysis::{cost, Architecture, Criterion, Params, Profile};

/// One planned move: `count` instances from engine `from` to engine `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationOrder {
    /// Source engine (the hot one).
    pub from: u32,
    /// Destination engine (the cold one).
    pub to: u32,
    /// Instances to move this round.
    pub count: u32,
}

/// Balancer tuning.
#[derive(Debug, Clone, Copy)]
pub struct BalancerConfig {
    /// Trigger when measured skew (max/mean pressure) exceeds the analytic
    /// prediction (1.0, uniform) by this factor.
    pub skew_threshold: f64,
    /// Cap on instances moved per planning round, to keep hand-off traffic
    /// a bounded fraction of the fleet's work.
    pub max_moves_per_round: u32,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            skew_threshold: 1.5,
            max_moves_per_round: 8,
        }
    }
}

/// The analytic per-engine load share parallel control predicts: Table 5's
/// per-instance engine load at `p`, i.e. `1/e` of the total navigation
/// work. Exposed so drivers can report predicted-vs-measured divergence.
pub fn predicted_engine_share(p: &Params) -> f64 {
    cost(
        Architecture::Parallel,
        Profile::Normal,
        Criterion::LoadAtNode,
        p,
    )
}

/// Plan migrations for one observation round.
///
/// Returns an empty plan while the measured skew stays within
/// `cfg.skew_threshold` of the analytic uniform prediction. Otherwise
/// pairs the hottest engines with the coldest and sizes each move by the
/// instance surplus above the fleet mean.
pub fn plan_migrations(
    loads: &[EngineLoad],
    p: &Params,
    cfg: &BalancerConfig,
) -> Vec<MigrationOrder> {
    if loads.len() < 2 {
        return Vec::new();
    }
    // Divergence trigger: measured skew vs the model's uniform share. The
    // predicted share only rescales the tolerance band; uniformity itself
    // is the prediction (max/mean == 1).
    let skew = measured_skew(loads);
    if skew <= cfg.skew_threshold || predicted_engine_share(p) <= 0.0 {
        return Vec::new();
    }
    let mean_live = loads.iter().map(|l| l.live_instances).sum::<u64>() as f64 / loads.len() as f64;
    // Only engines whose backlog exceeds the mean by the full tolerance
    // factor shed. A healthy engine momentarily above the mean drains on
    // its own; migrating from it is churn that taxes the fleet (freeze,
    // hand-off traffic, ownership broadcasts) for zero steady-state gain.
    let mut hot: Vec<&EngineLoad> = loads
        .iter()
        .filter(|l| (l.live_instances as f64) > mean_live * cfg.skew_threshold)
        .collect();
    let mut cold: Vec<&EngineLoad> = loads
        .iter()
        .filter(|l| (l.live_instances as f64) < mean_live)
        .collect();
    // Hottest first / coldest first, engine index as the deterministic tie
    // break.
    hot.sort_by(|a, b| {
        b.pressure()
            .partial_cmp(&a.pressure())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.engine.cmp(&b.engine))
    });
    cold.sort_by(|a, b| {
        a.pressure()
            .partial_cmp(&b.pressure())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.engine.cmp(&b.engine))
    });
    let mut budget = cfg.max_moves_per_round;
    let mut orders = Vec::new();
    for (h, c) in hot.iter().zip(cold.iter()) {
        if budget == 0 {
            break;
        }
        let surplus = (h.live_instances as f64 - mean_live).floor() as u64;
        let deficit = (mean_live - c.live_instances as f64).ceil() as u64;
        let count = surplus.min(deficit).min(budget as u64) as u32;
        if count == 0 {
            continue;
        }
        budget -= count;
        orders.push(MigrationOrder {
            from: h.engine,
            to: c.engine,
            count,
        });
    }
    orders
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(live: &[u64]) -> Vec<EngineLoad> {
        live.iter()
            .enumerate()
            .map(|(e, &l)| EngineLoad {
                engine: e as u32,
                live_instances: l,
                ..EngineLoad::default()
            })
            .collect()
    }

    fn params() -> Params {
        Params::paper_mean()
    }

    #[test]
    fn balanced_fleet_yields_no_orders() {
        let orders = plan_migrations(&fleet(&[10, 10, 10, 10]), &params(), &Default::default());
        assert!(orders.is_empty());
    }

    #[test]
    fn mild_skew_stays_within_the_analytic_band() {
        // max/mean = 1.2: the model tolerates this without migration churn.
        let orders = plan_migrations(&fleet(&[12, 10, 9, 9]), &params(), &Default::default());
        assert!(orders.is_empty());
    }

    #[test]
    fn hot_engine_sheds_to_the_coldest() {
        let orders = plan_migrations(&fleet(&[40, 10, 10, 0]), &params(), &Default::default());
        assert_eq!(orders.len(), 1);
        let o = orders[0];
        assert_eq!(o.from, 0);
        assert_eq!(o.to, 3);
        assert!(o.count >= 1);
        assert!(o.count <= 8, "round budget respected");
    }

    #[test]
    fn orders_are_deterministic() {
        let a = plan_migrations(&fleet(&[40, 0, 10, 0]), &params(), &Default::default());
        let b = plan_migrations(&fleet(&[40, 0, 10, 0]), &params(), &Default::default());
        assert_eq!(a, b);
    }

    #[test]
    fn predicted_share_is_positive_at_paper_mean() {
        assert!(predicted_engine_share(&params()) > 0.0);
    }
}
