//! Per-engine load accounting.
//!
//! The runtime samples one [`EngineLoad`] per engine per balancing
//! interval. The fields mirror the load components of the §6/§7 analysis:
//! navigation work concentrates where live instances live, message
//! traffic follows dispatch fan-out, and WFDB write pressure follows the
//! journaling rate.

/// One engine's load sample over an observation window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineLoad {
    /// Engine index.
    pub engine: u32,
    /// Instances currently hosted and not yet terminal.
    pub live_instances: u64,
    /// Messages delivered to (handled by) the engine so far.
    pub delivered_msgs: u64,
    /// WAL records appended so far (WFDB write pressure).
    pub wal_appends: u64,
    /// Messages passed along for migrated-away instances.
    pub forwarded_msgs: u64,
    /// Instances migrated out of this engine.
    pub migrations_out: u64,
    /// Instances migrated into this engine.
    pub migrations_in: u64,
}

impl EngineLoad {
    /// The scalar the balancer ranks engines by. Live instances dominate:
    /// they are what migration can actually move; delivered traffic and
    /// write pressure break ties between equally-populated engines.
    pub fn pressure(&self) -> f64 {
        self.live_instances as f64 * 1000.0
            + self.delivered_msgs as f64
            + self.wal_appends as f64 * 0.25
    }
}

/// Max/mean pressure ratio across a fleet sample — the measured skew the
/// balancer compares against the analytic (uniform) prediction. A fleet
/// with no live work reports 1.0 (perfectly balanced).
pub fn measured_skew(loads: &[EngineLoad]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let mean = loads.iter().map(|l| l.pressure()).sum::<f64>() / loads.len() as f64;
    if mean <= f64::EPSILON {
        return 1.0;
    }
    let max = loads.iter().map(|l| l.pressure()).fold(0.0, f64::max);
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(engine: u32, live: u64) -> EngineLoad {
        EngineLoad {
            engine,
            live_instances: live,
            ..EngineLoad::default()
        }
    }

    #[test]
    fn skew_of_uniform_fleet_is_one() {
        let loads: Vec<_> = (0..4).map(|e| sample(e, 10)).collect();
        assert!((measured_skew(&loads) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_grows_with_imbalance() {
        let loads = vec![sample(0, 30), sample(1, 10), sample(2, 10), sample(3, 10)];
        assert!(measured_skew(&loads) > 1.9);
    }

    #[test]
    fn idle_fleet_reports_balanced() {
        let loads: Vec<_> = (0..4).map(|e| sample(e, 0)).collect();
        assert_eq!(measured_skew(&loads), 1.0);
        assert_eq!(measured_skew(&[]), 1.0);
    }
}
