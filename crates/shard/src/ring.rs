//! Seeded consistent-hash ring with virtual nodes.
//!
//! Placement must be (a) deterministic under the deployment seed — every
//! engine computes the same owner for the same instance with no shared
//! state, which is what lets the simulation replay bit-identically — and
//! (b) stable under fleet resizing: growing from `e` to `e + 1` engines
//! moves only the keys that land on the new engine's virtual nodes,
//! `~1/(e+1)` of the space, instead of reshuffling nearly everything the
//! way `hash mod e` does.
//!
//! The ring is a `Copy` value with a fixed slot budget so it can live
//! inside `crew-central`'s `Topology` (also `Copy`) without allocation:
//! `vnodes` per engine are clamped so `engines * vnodes <= MAX_SLOTS`.

use crew_model::InstanceId;

/// Total virtual-node budget across all engines.
pub const MAX_SLOTS: usize = 256;

/// Salt mixed into the deployment seed for ring positions, so placement
/// hashing never collides with the work-assignment hashing that shares
/// the seed.
const RING_SALT: u64 = 0x51A2_D00F;

/// Salt for hashing instance ids onto the ring.
const KEY_SALT: u64 = 0xC0FF_EE11;

/// A consistent-hash ring over `engines` engines.
#[derive(Debug, Clone, Copy)]
pub struct Ring {
    engines: u32,
    len: u16,
    /// `(position, engine)` sorted by position.
    slots: [(u64, u32); MAX_SLOTS],
}

impl Ring {
    /// Build the ring for `engines` engines with (up to) `vnodes` virtual
    /// nodes each, deterministically from `seed`.
    pub fn new(engines: u32, seed: u64, vnodes: u16) -> Self {
        assert!(engines >= 1, "at least one engine");
        assert!(
            engines as usize <= MAX_SLOTS,
            "engine count exceeds ring budget"
        );
        let per_engine = (MAX_SLOTS / engines as usize).min(vnodes.max(1) as usize);
        let mut slots = [(0u64, 0u32); MAX_SLOTS];
        let mut len = 0usize;
        for e in 0..engines {
            for v in 0..per_engine {
                let pos = crew_exec::hash::combine(seed ^ RING_SALT, &[e as u64, v as u64]);
                slots[len] = (pos, e);
                len += 1;
            }
        }
        slots[..len].sort_unstable();
        Ring {
            engines,
            len: len as u16,
            slots,
        }
    }

    /// Number of engines on the ring.
    pub fn engines(&self) -> u32 {
        self.engines
    }

    /// Virtual nodes actually placed.
    pub fn slot_count(&self) -> usize {
        self.len as usize
    }

    /// The engine owning an arbitrary key: the first virtual node at or
    /// after the key's position, wrapping at the top of the space.
    pub fn owner_of_key(&self, key: u64) -> u32 {
        let slots = &self.slots[..self.len as usize];
        let idx = slots.partition_point(|&(pos, _)| pos < key);
        if idx == slots.len() {
            slots[0].1
        } else {
            slots[idx].1
        }
    }

    /// The engine owning a workflow instance.
    pub fn owner(&self, instance: InstanceId) -> u32 {
        let key = crew_exec::hash::combine(
            KEY_SALT,
            &[instance.schema.0 as u64, instance.serial as u64],
        );
        self.owner_of_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crew_model::SchemaId;

    fn keys(n: u64) -> impl Iterator<Item = u64> {
        (0..n).map(|i| crew_exec::hash::combine(7, &[i]))
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Ring::new(8, 42, 16);
        let b = Ring::new(8, 42, 16);
        for k in keys(1000) {
            assert_eq!(a.owner_of_key(k), b.owner_of_key(k));
        }
        let c = Ring::new(8, 43, 16);
        let diverges = keys(1000).any(|k| a.owner_of_key(k) != c.owner_of_key(k));
        assert!(diverges, "a different seed lays out a different ring");
    }

    #[test]
    fn covers_all_engines_roughly_evenly() {
        let ring = Ring::new(8, 42, 16);
        let mut counts = [0u64; 8];
        for k in keys(8000) {
            counts[ring.owner_of_key(k) as usize] += 1;
        }
        for (e, &c) in counts.iter().enumerate() {
            assert!(c > 0, "engine {e} owns nothing");
            // 16 vnodes/engine keeps the spread well inside 4x of fair.
            assert!(c < 4000, "engine {e} owns {c} of 8000 keys");
        }
    }

    #[test]
    fn growth_remaps_a_bounded_fraction() {
        // The consistent-hashing contract: e -> e+1 moves ~1/(e+1) of the
        // keys; modulo placement would move ~e/(e+1) of them.
        let before = Ring::new(8, 42, 16);
        let after = Ring::new(9, 42, 16);
        let total = 10_000u64;
        let moved = keys(total)
            .filter(|&k| before.owner_of_key(k) != after.owner_of_key(k))
            .count() as u64;
        assert!(
            moved < total / 3,
            "{moved}/{total} keys moved; consistent hashing should move ~1/9"
        );
        let modulo_moved = keys(total).filter(|&k| k % 8 != k % 9).count() as u64;
        assert!(
            moved < modulo_moved / 2,
            "ring ({moved}) must beat modulo ({modulo_moved}) by a wide margin"
        );
    }

    #[test]
    fn instance_owner_is_stable_and_in_range() {
        let ring = Ring::new(4, 42, 32);
        for serial in 0..500 {
            let inst = InstanceId::new(SchemaId(2), serial);
            let e = ring.owner(inst);
            assert!(e < 4);
            assert_eq!(e, ring.owner(inst));
        }
    }

    #[test]
    fn vnode_budget_is_clamped() {
        let ring = Ring::new(200, 1, 64);
        assert!(ring.slot_count() <= MAX_SLOTS);
        assert_eq!(ring.slot_count(), 200); // 256/200 -> 1 vnode each
    }
}
