//! Property tests over schema construction and derived structures.

use crew_model::{Expr, ItemKey, SchemaBuilder, SchemaError, SchemaId, StepId};
use proptest::prelude::*;

/// Build a random layered DAG: `layers` layers of 1..=3 steps; every step
/// gets one incoming arc from a random step of the previous layer (plus
/// AND-join fan-in sometimes). Returns the builder output.
fn random_layered(
    layer_sizes: &[u8],
    joins: &[bool],
) -> Result<crew_model::WorkflowSchema, SchemaError> {
    let mut b = SchemaBuilder::new(SchemaId(1), "rand").inputs(1);
    let start = b.add_step("start", "p");
    let mut prev = vec![start];
    for (li, &n) in layer_sizes.iter().enumerate() {
        let n = n.clamp(1, 3) as usize;
        let joined = joins.get(li).copied().unwrap_or(false) && prev.len() > 1;
        let mut layer = Vec::new();
        if joined {
            // One AND-join step consuming the whole previous layer.
            let s = b.add_step(format!("L{li}J"), "p");
            b.and_join(prev.clone(), s);
            layer.push(s);
        } else if prev.len() == 1 && n > 1 {
            // Fan out from the single predecessor.
            let heads: Vec<StepId> = (0..n)
                .map(|k| b.add_step(format!("L{li}N{k}"), "p"))
                .collect();
            b.and_split(prev[0], heads.clone());
            layer = heads;
        } else {
            // One-to-one continuation of the first predecessor.
            let s = b.add_step(format!("L{li}S"), "p");
            b.seq(prev[0], s);
            // Other predecessors continue independently (open branches).
            layer.push(s);
            for p in prev.iter().skip(1) {
                let t = b.add_step(format!("L{li}T{p}"), "p");
                b.seq(*p, t);
                layer.push(t);
            }
        }
        prev = layer;
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every random layered DAG builds, and the derived structures hold
    /// their invariants: topo order respects all forward arcs, terminals
    /// have no outgoing forward arcs, ancestors are transitive along arcs,
    /// and the invalidation set of the start step is everything else.
    #[test]
    fn derived_structures_sound(
        layer_sizes in proptest::collection::vec(1u8..4, 1..5),
        joins in proptest::collection::vec(any::<bool>(), 0..5),
    ) {
        let schema = random_layered(&layer_sizes, &joins).expect("valid construction");
        // Topological order respects arcs.
        let pos: std::collections::BTreeMap<StepId, usize> = schema
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        for arc in schema.arcs() {
            if !arc.loop_back {
                prop_assert!(pos[&arc.from] < pos[&arc.to]);
                prop_assert!(schema.is_ancestor(arc.from, arc.to));
            }
        }
        // Terminals have no outgoing forward arcs and cover all sinks.
        for &t in schema.terminal_steps() {
            prop_assert_eq!(schema.forward_outgoing(t).count(), 0);
        }
        let sink_count = schema
            .steps()
            .filter(|d| schema.forward_outgoing(d.id).count() == 0)
            .count();
        prop_assert_eq!(schema.terminal_steps().len(), sink_count);
        // Rollback from the start invalidates every other step.
        let inv = schema.invalidation_set(schema.start_step());
        prop_assert_eq!(inv.len(), schema.step_count() - 1);
    }

    /// Expressions survive arbitrary nesting without stack issues at the
    /// depths workflows use, and referenced_items is exactly the leaf set.
    #[test]
    fn expr_referenced_items_exact(depth in 0usize..40, slot in 1u16..5) {
        let mut e = Expr::item(ItemKey::input(slot));
        for i in 0..depth {
            e = Expr::and(e, Expr::gt(Expr::item(ItemKey::input(slot)), Expr::lit(i as i64)));
        }
        prop_assert_eq!(e.referenced_items(), vec![ItemKey::input(slot)]);
    }
}
