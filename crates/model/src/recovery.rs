//! Recovery-related schema annotations: compensation dependent sets and
//! rollback targets.
//!
//! A *compensation dependent set* (paper §3) names steps whose compensations
//! interfere: "A compensation dependent set is to be compensated only in the
//! reverse execution order of its member steps." This is deliberately
//! different from Leymann's spheres of joint compensation — membership does
//! not force compensation, it only constrains the *order* when OCR decides
//! members must be compensated.

use crate::ids::StepId;
use std::collections::BTreeSet;

/// A set of steps whose compensations must run in reverse execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompensationSet {
    /// Stable identifier within the schema (index into the schema's list).
    pub id: u32,
    /// Member steps. A step may belong to at most one set (validated by the
    /// schema builder) — overlapping sets would give contradictory orders.
    pub members: BTreeSet<StepId>,
}

impl CompensationSet {
    /// Create a new, empty value.
    pub fn new(id: u32, members: impl IntoIterator<Item = StepId>) -> Self {
        CompensationSet {
            id,
            members: members.into_iter().collect(),
        }
    }

    /// Contains.
    pub fn contains(&self, step: StepId) -> bool {
        self.members.contains(&step)
    }
}

/// Where a workflow rolls back to when a given step fails. The paper's
/// failure-handling specification lets the designer pick the rollback
/// origin ("the failure handling specification may require the workflow to
/// partially rollback to step S2").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollbackSpec {
    /// The step whose failure triggers this rollback.
    pub failing_step: StepId,
    /// The step execution restarts from (the `OriginStep` of the
    /// `WorkflowRollback`/`HaltThread` interfaces).
    pub origin: StepId,
    /// How many times this rollback may be retried before the workflow is
    /// aborted. Guards against livelock when a step fails deterministically.
    pub max_attempts: u32,
}

impl RollbackSpec {
    /// Create a new, empty value.
    pub fn new(failing_step: StepId, origin: StepId) -> Self {
        RollbackSpec {
            failing_step,
            origin,
            max_attempts: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensation_set_membership() {
        let set = CompensationSet::new(0, [StepId(2), StepId(4)]);
        assert!(set.contains(StepId(2)));
        assert!(!set.contains(StepId(3)));
        assert_eq!(set.members.len(), 2);
    }

    #[test]
    fn rollback_spec_defaults() {
        let r = RollbackSpec::new(StepId(4), StepId(2));
        assert_eq!(r.failing_step, StepId(4));
        assert_eq!(r.origin, StepId(2));
        assert_eq!(r.max_attempts, 3);
    }
}
