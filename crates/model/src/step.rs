//! Step definitions.
//!
//! A step is the unit of work in a workflow schema: it names a *program*
//! (a black box to the WFMS), declares the data items it reads and the
//! output slots it writes, lists the agents eligible to execute it, and —
//! for recovery — an optional compensation program plus an OCR policy.

use crate::expr::Expr;
use crate::ids::{AgentId, StepId};
use crate::policy::StepPolicy;
use crate::value::ItemKey;

/// Whether the step's program changes shared resources. The paper
/// distinguishes *update* from *query* steps when recovering from a
/// predecessor-agent failure: a query step may simply be re-run at another
/// eligible agent, an update step must wait for the failed agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Update.
    Update,
    /// Query.
    Query,
}

/// How a step's effects are undone during rollback, mirroring the paper's
/// two compensation flavours (§3: "Two types of compensation are possible —
/// complete and partial").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompensationKind {
    /// Undo everything the step did; its outputs are removed from the data
    /// table and a re-execution starts from scratch.
    #[default]
    Complete,
    /// Undo only the delta relative to the new inputs; the matching
    /// re-execution is *incremental* and costs a fraction of a full run.
    Partial,
}

/// The *compensation and re-execution condition* of the OCR scheme. When a
/// rolled-back step is revisited, this policy — evaluated against the data
/// table including the inputs of the previous execution — decides the course
/// of action (paper §3 and Figure 5).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ReexecPolicy {
    /// Re-execute only when the step's declared inputs differ from those of
    /// its previous execution; otherwise the previous results are reused.
    /// This is the paper's headline case: "results from the previous
    /// execution of the steps can be re-used".
    #[default]
    IfInputsChanged,
    /// Always compensate and re-execute (Saga-like behaviour for this step).
    Always,
    /// Never re-execute on revisit: the previous results always suffice.
    Never,
    /// Custom condition over the data table: re-execute iff it is true.
    When(Expr),
}

/// Declares one input the step reads: where the value comes from in the
/// instance data table. This doubles as the schema's *data arc* information
/// (data arcs are derivable as `producer-step → this step` for every
/// `ItemKey::output` source).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InputBinding {
    /// The item in the instance data table to read.
    pub source: ItemKey,
}

/// A step definition within a workflow schema.
#[derive(Debug, Clone, PartialEq)]
pub struct StepDef {
    /// Stable identifier within its collection.
    pub id: StepId,
    /// Human-readable name ("CheckStock").
    pub name: String,
    /// Name of the program executed to perform the step. Programs are
    /// resolved by the execution substrate's program registry.
    pub program: String,
    /// Program run to compensate the step, if the step is compensatable.
    pub compensation_program: Option<String>,
    /// Update vs. query (see [`StepKind`]).
    pub kind: StepKind,
    /// Data items the step reads.
    pub inputs: Vec<InputBinding>,
    /// Number of output slots the step writes (`S<k>.O1 ..= S<k>.O<n>`).
    pub output_slots: u16,
    /// Agents eligible to execute this step (the paper's parameter `a`).
    /// Must be non-empty in a valid schema.
    pub eligible_agents: Vec<AgentId>,
    /// Abstract instruction cost of executing the program (the paper's `l`
    /// is the *navigation* load; this is the application work, reported
    /// separately by the metrics).
    pub cost: u64,
    /// Cost of complete compensation (defaults to `cost` if `None`).
    pub compensation_cost: Option<u64>,
    /// OCR policy for this step.
    pub reexec: ReexecPolicy,
    /// Compensation flavour used when this step *is* compensated.
    pub compensation_kind: CompensationKind,
    /// Failure-policy annotations (retry, breaker, dead-letter).
    pub policy: StepPolicy,
}

impl StepDef {
    /// Minimal step: a named program with defaults everywhere else. The
    /// schema builder fills in ids and eligibility.
    pub fn new(id: StepId, name: impl Into<String>, program: impl Into<String>) -> Self {
        StepDef {
            id,
            name: name.into(),
            program: program.into(),
            compensation_program: None,
            kind: StepKind::Update,
            inputs: Vec::new(),
            output_slots: 1,
            eligible_agents: Vec::new(),
            cost: 100,
            compensation_cost: None,
            reexec: ReexecPolicy::default(),
            compensation_kind: CompensationKind::default(),
            policy: StepPolicy::default(),
        }
    }

    /// The item keys this step reads, in declaration order.
    pub fn input_keys(&self) -> Vec<ItemKey> {
        self.inputs.iter().map(|b| b.source).collect()
    }

    /// The item keys this step writes.
    pub fn output_keys(&self) -> Vec<ItemKey> {
        (1..=self.output_slots)
            .map(|slot| ItemKey::output(self.id, slot))
            .collect()
    }

    /// Effective cost of compensating the step completely.
    pub fn compensation_cost(&self) -> u64 {
        self.compensation_cost.unwrap_or(self.cost)
    }

    /// True if the step declares a way to undo itself.
    pub fn is_compensatable(&self) -> bool {
        self.compensation_program.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_keys_enumerate_slots() {
        let mut s = StepDef::new(StepId(2), "Reserve", "inventory.reserve");
        s.output_slots = 2;
        let keys = s.output_keys();
        assert_eq!(
            keys,
            vec![ItemKey::output(StepId(2), 1), ItemKey::output(StepId(2), 2)]
        );
    }

    #[test]
    fn compensation_cost_defaults_to_cost() {
        let mut s = StepDef::new(StepId(1), "X", "p");
        s.cost = 250;
        assert_eq!(s.compensation_cost(), 250);
        s.compensation_cost = Some(40);
        assert_eq!(s.compensation_cost(), 40);
    }

    #[test]
    fn compensatable_iff_program_present() {
        let mut s = StepDef::new(StepId(1), "X", "p");
        assert!(!s.is_compensatable());
        s.compensation_program = Some("p.undo".into());
        assert!(s.is_compensatable());
    }

    #[test]
    fn input_keys_in_declaration_order() {
        let mut s = StepDef::new(StepId(3), "X", "p");
        s.inputs = vec![
            InputBinding {
                source: ItemKey::output(StepId(2), 1),
            },
            InputBinding {
                source: ItemKey::input(1),
            },
        ];
        assert_eq!(
            s.input_keys(),
            vec![ItemKey::output(StepId(2), 1), ItemKey::input(1)]
        );
    }
}
