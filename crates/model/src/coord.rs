//! Coordinated-execution requirements across concurrent workflows.
//!
//! The paper's high-level building blocks (§3, \[KR98\]) express
//! *mutual exclusion* and *relative ordering* of steps across workflows and
//! *rollback dependency* across workflow instances. These are schema-level
//! declarations; the run-time systems enforce them by exchanging events
//! between the rule sets of the affected instances (Figure 4) using the
//! `AddRule`/`AddEvent`/`AddPrecondition` primitives.

use crate::ids::{SchemaId, StepId};

/// Names a step of a particular schema (coordination requirements span
/// schemas, so a bare `StepId` is not enough).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchemaStep {
    /// Owning workflow schema.
    pub schema: SchemaId,
    /// The step this entry concerns.
    pub step: StepId,
}

impl SchemaStep {
    /// Create a new, empty value.
    pub fn new(schema: SchemaId, step: StepId) -> Self {
        SchemaStep { schema, step }
    }
}

impl std::fmt::Display for SchemaStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.schema, self.step)
    }
}

/// Steps that must never execute concurrently across instances. While one
/// member step of any instance is running, member steps of other instances
/// wait.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutualExclusion {
    /// Stable identifier within its collection.
    pub id: u32,
    /// A label for the shared resource ("paint-booth").
    pub resource: String,
    /// Members.
    pub members: Vec<SchemaStep>,
}

/// Relative ordering (Figure 2): once a pair of conflicting steps from two
/// instances executes in some order, every later conflicting pair must
/// preserve that order — the instance that went first is the *leading*
/// workflow, the other the *lagging* one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelativeOrder {
    /// Stable identifier within its collection.
    pub id: u32,
    /// A label for the conflict ("parts-bin").
    pub conflict: String,
    /// Ordered list of conflicting step pairs `(x_k, y_k)`. If `x_1` of
    /// instance `I` executes before `y_1` of instance `J`, then every
    /// subsequent `x_k` of `I` must execute before `y_k` of `J`. In the
    /// paper's Figure 2(a), pairs are `(S12, S23)` and `(S14, S25)`.
    pub pairs: Vec<(SchemaStep, SchemaStep)>,
}

impl RelativeOrder {
    /// Number of steps of each participant that are ordered after the first
    /// pair — the messages the protocol must deliver per lagging instance.
    pub fn follow_on_pairs(&self) -> usize {
        self.pairs.len().saturating_sub(1)
    }
}

/// Rollback dependency across instances: if the `source` workflow instance
/// rolls back past `source_step`, any concurrent `dependent` instance that
/// consumed its effects must roll back to `dependent_origin`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollbackDependency {
    /// Stable identifier within its collection.
    pub id: u32,
    /// Source.
    pub source: SchemaStep,
    /// Dependent schema.
    pub dependent_schema: SchemaId,
    /// Dependent origin.
    pub dependent_origin: StepId,
}

/// The full set of coordination requirements active in a deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoordinationSpec {
    /// Mutual exclusions.
    pub mutual_exclusions: Vec<MutualExclusion>,
    /// Relative orders.
    pub relative_orders: Vec<RelativeOrder>,
    /// Rollback dependencies.
    pub rollback_dependencies: Vec<RollbackDependency>,
}

impl CoordinationSpec {
    /// `true` when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.mutual_exclusions.is_empty()
            && self.relative_orders.is_empty()
            && self.rollback_dependencies.is_empty()
    }

    /// Count of coordination-constrained steps per schema — the paper's
    /// `me`, `ro` and `rd` parameters for a schema.
    pub fn constrained_counts(&self, schema: SchemaId) -> (usize, usize, usize) {
        let me = self
            .mutual_exclusions
            .iter()
            .flat_map(|m| &m.members)
            .filter(|s| s.schema == schema)
            .count();
        let ro = self
            .relative_orders
            .iter()
            .flat_map(|r| &r.pairs)
            .flat_map(|(a, b)| [a, b])
            .filter(|s| s.schema == schema)
            .count();
        let rd = self
            .rollback_dependencies
            .iter()
            .filter(|r| r.source.schema == schema || r.dependent_schema == schema)
            .count();
        (me, ro, rd)
    }

    /// All schemas any requirement mentions.
    pub fn schemas(&self) -> Vec<SchemaId> {
        let mut out: Vec<SchemaId> = self
            .mutual_exclusions
            .iter()
            .flat_map(|m| m.members.iter().map(|s| s.schema))
            .chain(
                self.relative_orders
                    .iter()
                    .flat_map(|r| r.pairs.iter().flat_map(|(a, b)| [a.schema, b.schema])),
            )
            .chain(
                self.rollback_dependencies
                    .iter()
                    .flat_map(|r| [r.source.schema, r.dependent_schema]),
            )
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoordinationSpec {
        // Figure 2(a): WF1 steps S12,S14 conflict with WF2 steps S23,S25.
        CoordinationSpec {
            mutual_exclusions: vec![MutualExclusion {
                id: 0,
                resource: "paint-booth".into(),
                members: vec![
                    SchemaStep::new(SchemaId(1), StepId(3)),
                    SchemaStep::new(SchemaId(2), StepId(4)),
                ],
            }],
            relative_orders: vec![RelativeOrder {
                id: 0,
                conflict: "parts".into(),
                pairs: vec![
                    (
                        SchemaStep::new(SchemaId(1), StepId(2)),
                        SchemaStep::new(SchemaId(2), StepId(3)),
                    ),
                    (
                        SchemaStep::new(SchemaId(1), StepId(4)),
                        SchemaStep::new(SchemaId(2), StepId(5)),
                    ),
                ],
            }],
            rollback_dependencies: vec![RollbackDependency {
                id: 0,
                source: SchemaStep::new(SchemaId(1), StepId(2)),
                dependent_schema: SchemaId(2),
                dependent_origin: StepId(1),
            }],
        }
    }

    #[test]
    fn constrained_counts_per_schema() {
        let spec = sample();
        let (me, ro, rd) = spec.constrained_counts(SchemaId(1));
        assert_eq!((me, ro, rd), (1, 2, 1));
        let (me2, ro2, rd2) = spec.constrained_counts(SchemaId(2));
        assert_eq!((me2, ro2, rd2), (1, 2, 1));
        let (me3, ro3, rd3) = spec.constrained_counts(SchemaId(9));
        assert_eq!((me3, ro3, rd3), (0, 0, 0));
    }

    #[test]
    fn schemas_deduped() {
        let spec = sample();
        assert_eq!(spec.schemas(), vec![SchemaId(1), SchemaId(2)]);
        assert!(!spec.is_empty());
        assert!(CoordinationSpec::default().is_empty());
    }

    #[test]
    fn follow_on_pairs_counts_messages() {
        let spec = sample();
        assert_eq!(spec.relative_orders[0].follow_on_pairs(), 1);
    }
}
