//! # crew-model
//!
//! Static workflow definitions for CREW, a reproduction of Kamath &
//! Ramamritham's work on failure handling and coordinated execution of
//! concurrent workflows (ICDE 1998 / CMPSCI TR 98-28).
//!
//! This crate holds everything a workflow *designer* produces and every
//! run-time architecture consumes:
//!
//! - strongly-typed [`ids`] for schemas, instances, steps, agents and
//!   engines;
//! - [data items and values](value) that flow between steps;
//! - the [condition expression language](expr) used on arcs, in rule guards
//!   and in OCR policies;
//! - [step definitions](step) including compensation programs and OCR
//!   re-execution policies;
//! - the [schema graph](schema) with sequential, parallel (AND),
//!   if-then-else (XOR), join, loop and nested-workflow structures, plus
//!   validation and the derived sets the protocols need;
//! - [recovery annotations](recovery): compensation dependent sets and
//!   rollback specifications;
//! - [coordinated-execution requirements](coord) across workflows: mutual
//!   exclusion, relative ordering, rollback dependencies.
//!
//! The crate is dependency-free and purely descriptive: no execution logic
//! lives here.

#![warn(missing_docs)]

pub mod coord;
pub mod expr;
pub mod ids;
pub mod policy;
pub mod recovery;
pub mod schema;
pub mod step;
pub mod value;

pub use coord::{CoordinationSpec, MutualExclusion, RelativeOrder, RollbackDependency, SchemaStep};
pub use expr::{ArithOp, CmpOp, EvalError, Expr};
pub use ids::{AgentId, EngineId, InstanceId, SchemaId, StepId, StepRef};
pub use policy::{
    BackoffKind, BreakerPolicy, RetryPolicy, StepPolicy, WorkflowPolicy, RUN_HORIZON_TICKS,
};
pub use recovery::{CompensationSet, RollbackSpec};
pub use schema::{
    validate_coordination, ControlArc, JoinKind, SchemaBuilder, SchemaError, SplitKind,
    WorkflowSchema, NESTED_PROGRAM,
};
pub use step::{CompensationKind, InputBinding, ReexecPolicy, StepDef, StepKind};
pub use value::{DataEnv, ItemKey, ItemScope, Value};
