//! Strongly-typed identifiers used throughout CREW.
//!
//! Every entity the paper names — workflow schemas ("workflow classes"),
//! workflow instances, steps, agents, engines — gets its own newtype so that
//! the compiler rules out cross-entity mixups (e.g. passing a step id where
//! an agent id is expected). All ids are small `Copy` integers; formatting
//! follows the paper's conventions (`S3`, `WF2`, instance numbers).

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw numeric value of the identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a workflow schema (a "workflow class" in the paper's
    /// terminology). A schema is the template from which instances are
    /// created.
    SchemaId,
    "WF"
);

id_type!(
    /// Identifies a step *definition* within a schema. Step ids are local to
    /// their schema; `(SchemaId, StepId)` is globally unique and
    /// `(InstanceId, StepId)` names a step execution.
    StepId,
    "S"
);

id_type!(
    /// Identifies an application agent — the node type that executes steps.
    /// In distributed control an agent additionally navigates workflows and
    /// may play the coordination/termination roles.
    AgentId,
    "A"
);

id_type!(
    /// Identifies a workflow engine in the centralized (always `E0`) and
    /// parallel architectures.
    EngineId,
    "E"
);

/// Identifies one workflow instance, globally unique across schemas.
///
/// The paper renders instances as "workflow name + instance number"
/// (e.g. `WF2` instance `4`); we carry both halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId {
    /// Schema this instance was created from.
    pub schema: SchemaId,
    /// Serial number of the instance, unique within the whole system (not
    /// merely within the schema) so logs read unambiguously.
    pub serial: u32,
}

impl InstanceId {
    /// Create a new, empty value.
    pub fn new(schema: SchemaId, serial: u32) -> Self {
        InstanceId { schema, serial }
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.schema, self.serial)
    }
}

/// A step execution within a particular instance: the unit that events,
/// compensation and OCR decisions attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StepRef {
    /// The workflow instance concerned.
    pub instance: InstanceId,
    /// The step this entry concerns.
    pub step: StepId,
}

impl StepRef {
    /// Create a new, empty value.
    pub fn new(instance: InstanceId, step: StepId) -> Self {
        StepRef { instance, step }
    }
}

impl fmt::Display for StepRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.instance, self.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_follows_paper_conventions() {
        assert_eq!(SchemaId(2).to_string(), "WF2");
        assert_eq!(StepId(3).to_string(), "S3");
        assert_eq!(AgentId(7).to_string(), "A7");
        assert_eq!(EngineId(0).to_string(), "E0");
        let inst = InstanceId::new(SchemaId(2), 4);
        assert_eq!(inst.to_string(), "WF2#4");
        assert_eq!(StepRef::new(inst, StepId(3)).to_string(), "WF2#4.S3");
    }

    #[test]
    fn ids_order_and_hash_like_their_integers() {
        assert!(StepId(1) < StepId(2));
        assert_eq!(StepId::from(5), StepId(5));
        assert_eq!(StepId(5).index(), 5);
        let a = InstanceId::new(SchemaId(1), 9);
        let b = InstanceId::new(SchemaId(1), 10);
        assert!(a < b);
    }
}
