//! Condition expressions.
//!
//! Control arcs in a workflow schema "may also have a condition associated"
//! (paper §2); OCR attaches a *compensation and re-execution condition* to a
//! step (§3); coordination rules guard firing on conditions. All of these
//! are boolean expressions over the instance's data items, so we provide one
//! small expression language with a total, error-reporting evaluator.

use crate::value::{DataEnv, ItemKey, Value};
use std::fmt;

/// Binary comparison operators.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Binary arithmetic operators.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// An expression tree. Conditions on arcs and OCR policies are `Expr`s that
/// must evaluate to a boolean.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// Reference to a data item of the evaluating instance.
    Item(ItemKey),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two numeric sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// True iff the referenced item currently has a value. Useful in OCR
    /// conditions ("previous output still present").
    Defined(ItemKey),
}

/// Why an expression failed to evaluate.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// An `Item` reference had no value in the environment.
    Undefined(ItemKey),
    /// Operand types did not fit the operator (e.g. `"abc" < 3`).
    TypeMismatch {
        op: String,
        lhs: &'static str,
        rhs: &'static str,
    },
    /// `x / 0`.
    DivisionByZero,
    /// The top-level expression did not produce a boolean where one was
    /// required.
    NotBoolean(&'static str),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Undefined(k) => write!(f, "undefined data item {k}"),
            EvalError::TypeMismatch { op, lhs, rhs } => {
                write!(f, "type mismatch: {lhs} {op} {rhs}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::NotBoolean(t) => write!(f, "condition evaluated to {t}, expected bool"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    // -- constructors ------------------------------------------------------

    /// Item.
    pub fn item(key: ItemKey) -> Expr {
        Expr::Item(key)
    }

    /// Lit.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Cmp.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Eq.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, lhs, rhs)
    }

    /// Ne.
    pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Ne, lhs, rhs)
    }

    /// Lt.
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Lt, lhs, rhs)
    }

    /// Le.
    pub fn le(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Le, lhs, rhs)
    }

    /// Gt.
    pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Gt, lhs, rhs)
    }

    /// Ge.
    pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Ge, lhs, rhs)
    }

    /// And.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::And(Box::new(lhs), Box::new(rhs))
    }

    /// Or.
    pub fn or(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Or(Box::new(lhs), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    /// Not.
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Arith.
    pub fn arith(op: ArithOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Arith(op, Box::new(lhs), Box::new(rhs))
    }

    // -- evaluation --------------------------------------------------------

    /// Evaluate to an arbitrary [`Value`].
    pub fn eval(&self, env: &DataEnv) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Item(key) => env.get(key).cloned().ok_or(EvalError::Undefined(*key)),
            Expr::Defined(key) => Ok(Value::Bool(env.get(key).is_some())),
            Expr::Cmp(op, lhs, rhs) => {
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                compare(*op, &l, &r).map(Value::Bool)
            }
            Expr::Arith(op, lhs, rhs) => {
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                arith(*op, &l, &r)
            }
            Expr::And(lhs, rhs) => {
                // Short-circuit so that `Defined(x) && x > 3` is safe.
                if !lhs.eval_bool(env)? {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(rhs.eval_bool(env)?))
            }
            Expr::Or(lhs, rhs) => {
                if lhs.eval_bool(env)? {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(rhs.eval_bool(env)?))
            }
            Expr::Not(inner) => Ok(Value::Bool(!inner.eval_bool(env)?)),
        }
    }

    /// Evaluate and require a boolean — what arc conditions and rule guards
    /// use.
    pub fn eval_bool(&self, env: &DataEnv) -> Result<bool, EvalError> {
        match self.eval(env)? {
            Value::Bool(b) => Ok(b),
            other => Err(EvalError::NotBoolean(other.type_name())),
        }
    }

    /// All data items this expression reads. Schema validation uses this to
    /// check that arc conditions only reference items produced upstream, and
    /// the distributed agent uses it to know which packet data a pending
    /// rule is waiting on.
    pub fn referenced_items(&self) -> Vec<ItemKey> {
        let mut out = Vec::new();
        self.collect_items(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_items(&self, out: &mut Vec<ItemKey>) {
        match self {
            Expr::Const(_) => {}
            Expr::Item(k) | Expr::Defined(k) => out.push(*k),
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.collect_items(out);
                r.collect_items(out);
            }
            Expr::Not(e) => e.collect_items(out),
        }
    }
}

fn compare(op: CmpOp, l: &Value, r: &Value) -> Result<bool, EvalError> {
    // Numeric comparison with int→float widening; strings and bools only
    // support equality.
    if let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) {
        return Ok(match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        });
    }
    match (l, r, op) {
        (Value::Str(a), Value::Str(b), CmpOp::Eq) => Ok(a == b),
        (Value::Str(a), Value::Str(b), CmpOp::Ne) => Ok(a != b),
        (Value::Bool(a), Value::Bool(b), CmpOp::Eq) => Ok(a == b),
        (Value::Bool(a), Value::Bool(b), CmpOp::Ne) => Ok(a != b),
        _ => Err(EvalError::TypeMismatch {
            op: op.to_string(),
            lhs: l.type_name(),
            rhs: r.type_name(),
        }),
    }
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    // Int op int stays int (exact); anything else widens to float.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            ArithOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            ArithOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            ArithOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            ArithOp::Div => {
                if *b == 0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(Value::Int(a / b))
                }
            }
        };
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(EvalError::TypeMismatch {
                op: op.to_string(),
                lhs: l.type_name(),
                rhs: r.type_name(),
            })
        }
    };
    match op {
        ArithOp::Add => Ok(Value::Float(a + b)),
        ArithOp::Sub => Ok(Value::Float(a - b)),
        ArithOp::Mul => Ok(Value::Float(a * b)),
        ArithOp::Div => {
            if b == 0.0 {
                Err(EvalError::DivisionByZero)
            } else {
                Ok(Value::Float(a / b))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => match v {
                Value::Str(s) => write!(f, "{s:?}"),
                other => write!(f, "{other}"),
            },
            Expr::Item(k) => write!(f, "{k}"),
            Expr::Defined(k) => write!(f, "defined({k})"),
            Expr::Cmp(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Arith(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::And(l, r) => write!(f, "({l} && {r})"),
            Expr::Or(l, r) => write!(f, "({l} || {r})"),
            Expr::Not(e) => write!(f, "!{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StepId;

    fn env() -> DataEnv {
        let mut e = DataEnv::new();
        e.set(ItemKey::input(1), Value::Int(90));
        e.set(ItemKey::output(StepId(1), 1), Value::Int(20));
        e.set(ItemKey::output(StepId(1), 2), Value::from("Gasket"));
        e.set(ItemKey::input(3), Value::Bool(true));
        e
    }

    #[test]
    fn comparisons() {
        let e = env();
        assert!(Expr::gt(Expr::item(ItemKey::input(1)), Expr::lit(50))
            .eval_bool(&e)
            .unwrap());
        assert!(Expr::eq(
            Expr::item(ItemKey::output(StepId(1), 2)),
            Expr::lit("Gasket")
        )
        .eval_bool(&e)
        .unwrap());
        assert!(!Expr::lt(Expr::item(ItemKey::input(1)), Expr::lit(50))
            .eval_bool(&e)
            .unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let e = env();
        let sum = Expr::arith(
            ArithOp::Add,
            Expr::item(ItemKey::input(1)),
            Expr::item(ItemKey::output(StepId(1), 1)),
        );
        assert_eq!(sum.eval(&e).unwrap(), Value::Int(110));
        let half = Expr::arith(ArithOp::Div, Expr::lit(1.0), Expr::lit(2));
        assert_eq!(half.eval(&e).unwrap(), Value::Float(0.5));
    }

    #[test]
    fn division_by_zero_reported() {
        let e = env();
        let bad = Expr::arith(ArithOp::Div, Expr::lit(1), Expr::lit(0));
        assert_eq!(bad.eval(&e), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn undefined_item_reported() {
        let e = env();
        let bad = Expr::item(ItemKey::input(99));
        assert_eq!(bad.eval(&e), Err(EvalError::Undefined(ItemKey::input(99))));
    }

    #[test]
    fn defined_and_short_circuit() {
        let e = env();
        // input 99 is undefined; short-circuit must protect the right side.
        let guarded = Expr::and(
            Expr::Defined(ItemKey::input(99)),
            Expr::gt(Expr::item(ItemKey::input(99)), Expr::lit(0)),
        );
        assert!(!guarded.eval_bool(&e).unwrap());
        let or = Expr::or(
            Expr::item(ItemKey::input(3)),
            Expr::item(ItemKey::input(99)), // would error if evaluated
        );
        assert!(or.eval_bool(&e).unwrap());
    }

    #[test]
    fn type_mismatch_reported() {
        let e = env();
        let bad = Expr::lt(Expr::item(ItemKey::output(StepId(1), 2)), Expr::lit(3));
        assert!(matches!(bad.eval(&e), Err(EvalError::TypeMismatch { .. })));
        let not_bool = Expr::lit(3);
        assert_eq!(not_bool.eval_bool(&e), Err(EvalError::NotBoolean("int")));
    }

    #[test]
    fn referenced_items_deduped_sorted() {
        let x = ItemKey::input(1);
        let y = ItemKey::output(StepId(1), 1);
        let expr = Expr::and(
            Expr::gt(Expr::item(y), Expr::item(x)),
            Expr::not(Expr::eq(Expr::item(x), Expr::lit(0))),
        );
        assert_eq!(expr.referenced_items(), vec![x, y]);
    }

    #[test]
    fn display_round_trips_shape() {
        let x = ItemKey::input(1);
        let expr = Expr::and(Expr::gt(Expr::item(x), Expr::lit(5)), Expr::Defined(x));
        assert_eq!(expr.to_string(), "((WF.I1 > 5) && defined(WF.I1))");
    }
}
