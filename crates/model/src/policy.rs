//! Failure policies: retry, circuit breaker and dead-letter annotations.
//!
//! The paper's failure handling is all-or-nothing — compensate or
//! re-execute (OCR, Figure 5). Production deployments layer bounded
//! retries with backoff, circuit breakers and dead-letter routing on top
//! of that machinery. These types carry such annotations per step
//! ([`StepPolicy`]) and per workflow ([`WorkflowPolicy`]); `crew-lint`
//! verifies their soundness statically and the run-times interpret
//! `retry(max, ...)` as in-place re-dispatch before the paper's rollback
//! protocol takes over.

/// How the delay between successive retries of one step grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackoffKind {
    /// Every retry waits the base delay.
    #[default]
    Fixed,
    /// Retry `k` waits `base * k` ticks.
    Linear,
    /// Retry `k` waits `base * 2^(k-1)` ticks.
    Exponential,
}

/// A step's retry policy: re-dispatch in place up to `max` times before
/// handing the failure to the rollback machinery (or the dead-letter
/// route, if declared).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Retry budget; `None` means unbounded (lint requires a dead-letter
    /// route in that case — an unbounded retry of a deterministic failure
    /// never terminates).
    pub max: Option<u32>,
    /// Backoff schedule shape.
    pub backoff: BackoffKind,
    /// Base delay in ticks between attempts (0 = immediate).
    pub base: u64,
    /// Worst-case extra jitter in ticks added to every retry delay.
    pub jitter: u64,
}

impl RetryPolicy {
    /// Bounded immediate retry, no backoff.
    pub fn bounded(max: u32) -> Self {
        RetryPolicy {
            max: Some(max),
            backoff: BackoffKind::Fixed,
            base: 0,
            jitter: 0,
        }
    }

    /// Unbounded immediate retry (only sound with a dead-letter route).
    pub fn unbounded() -> Self {
        RetryPolicy {
            max: None,
            backoff: BackoffKind::Fixed,
            base: 0,
            jitter: 0,
        }
    }

    /// True when the budget permits another in-place retry after the
    /// failed `attempt` (1-based): a budget of `max` allows `max`
    /// re-dispatches on top of the original execution.
    pub fn allows_retry_after(&self, attempt: u32) -> bool {
        match self.max {
            Some(max) => attempt <= max,
            None => true,
        }
    }
}

/// A circuit breaker on one step: after `threshold` consecutive failures
/// the breaker opens and the step is not dispatched again for `cooldown`
/// ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BreakerPolicy {
    /// Consecutive failures before the breaker opens.
    pub threshold: u32,
    /// Ticks the breaker stays open before a half-open probe.
    pub cooldown: u64,
}

/// Per-step failure-policy annotations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepPolicy {
    /// In-place retry before rollback.
    pub retry: Option<RetryPolicy>,
    /// The step's program may be re-run without duplicating effects, so a
    /// retry needs no compensation.
    pub idempotent: bool,
    /// Circuit breaker guarding the step's resource.
    pub breaker: Option<BreakerPolicy>,
    /// Exhausted or unbounded retries route the instance to a dead-letter
    /// queue instead of retrying forever.
    pub dead_letter: bool,
}

impl StepPolicy {
    /// True when no annotation is present (the paper's plain semantics).
    pub fn is_empty(&self) -> bool {
        self.retry.is_none() && !self.idempotent && self.breaker.is_none() && !self.dead_letter
    }
}

/// Workflow-level failure-policy annotations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct WorkflowPolicy {
    /// Set-wide failure budget: total step failures tolerated across the
    /// instance before it aborts. Required by lint when a step of a
    /// compensation dependent set carries its own retry policy.
    pub max_failures: Option<u32>,
    /// Workflow-wide dead-letter route (covers unbounded step retries).
    pub dead_letter: bool,
}

impl WorkflowPolicy {
    /// True when no annotation is present.
    pub fn is_empty(&self) -> bool {
        self.max_failures.is_none() && !self.dead_letter
    }
}

/// The bounded simulation run horizon in ticks. `crew-core` stops every
/// run at this virtual time; the lint's backoff-overflow pass checks
/// cumulative retry schedules against it.
pub const RUN_HORIZON_TICKS: u64 = 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_budget_counts_redispatches() {
        let p = RetryPolicy::bounded(2);
        assert!(p.allows_retry_after(1));
        assert!(p.allows_retry_after(2));
        assert!(!p.allows_retry_after(3));
    }

    #[test]
    fn unbounded_budget_never_exhausts() {
        let p = RetryPolicy::unbounded();
        assert!(p.allows_retry_after(1));
        assert!(p.allows_retry_after(1_000_000));
    }

    #[test]
    fn empty_policies_report_empty() {
        assert!(StepPolicy::default().is_empty());
        assert!(WorkflowPolicy::default().is_empty());
        let p = StepPolicy {
            idempotent: true,
            ..StepPolicy::default()
        };
        assert!(!p.is_empty());
        let w = WorkflowPolicy {
            max_failures: Some(3),
            ..WorkflowPolicy::default()
        };
        assert!(!w.is_empty());
    }
}
