//! Workflow data items and their values.
//!
//! The paper's workflow packets carry *data items* named like `WF.I1`
//! (workflow inputs), `S1.O2` (output 2 of step S1) — see the sample packet
//! in Figure 7. We model an item name as an [`ItemKey`] (scope + slot) and
//! values as a small dynamic [`Value`] type, since the WFMS treats step
//! programs as black boxes and only ferries their typed inputs/outputs.

use crate::ids::StepId;
use std::collections::BTreeMap;
use std::fmt;

/// Where a data item lives: workflow-level input, or a step's output slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ItemScope {
    /// A workflow input (`WF.I<n>` in the paper's packet rendering).
    WorkflowInput,
    /// An output produced by a step (`S<k>.O<n>`).
    StepOutput(StepId),
}

/// Fully-qualified name of a data item: a scope plus a slot number.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemKey {
    pub scope: ItemScope,
    pub slot: u16,
}

impl ItemKey {
    /// Workflow input slot `n` (rendered `WF.I<n>`).
    pub fn input(slot: u16) -> Self {
        ItemKey {
            scope: ItemScope::WorkflowInput,
            slot,
        }
    }

    /// Output slot `n` of `step` (rendered `S<k>.O<n>`).
    pub fn output(step: StepId, slot: u16) -> Self {
        ItemKey {
            scope: ItemScope::StepOutput(step),
            slot,
        }
    }
}

impl fmt::Display for ItemKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.scope {
            ItemScope::WorkflowInput => write!(f, "WF.I{}", self.slot),
            ItemScope::StepOutput(s) => write!(f, "{}.O{}", s, self.slot),
        }
    }
}

/// A dynamically-typed data value flowing between steps.
///
/// Business data in the paper's examples is numbers and short strings
/// (quantities, part names); we add booleans for branch conditions.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    /// Type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
        }
    }

    /// Numeric view: ints widen to floats so mixed comparisons work the way
    /// a workflow designer would expect.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// As str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The data table of one workflow instance (or the slice of it a distributed
/// agent has seen): item key → value.
///
/// Ordered map so that packet renderings and log records are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataEnv {
    items: BTreeMap<ItemKey, Value>,
}

impl DataEnv {
    /// Create a new, empty value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of `key`, if present.
    pub fn get(&self, key: &ItemKey) -> Option<&Value> {
        self.items.get(key)
    }

    /// Insert or overwrite the value of `key`.
    pub fn set(&mut self, key: ItemKey, value: Value) {
        self.items.insert(key, value);
    }

    /// Remove `key`, returning its previous value.
    pub fn remove(&mut self, key: &ItemKey) -> Option<Value> {
        self.items.remove(key)
    }

    /// Drop every output produced by `step` — used when a step is completely
    /// compensated, so stale outputs cannot feed later conditions.
    pub fn clear_step_outputs(&mut self, step: StepId) {
        self.items
            .retain(|k, _| !matches!(k.scope, ItemScope::StepOutput(s) if s == step));
    }

    /// Merge another environment into this one, later writes winning. This
    /// is how a distributed agent folds the data carried by an arriving
    /// workflow packet into its local instance table.
    pub fn merge_from(&mut self, other: &DataEnv) {
        for (k, v) in &other.items {
            self.items.insert(*k, v.clone());
        }
    }

    /// Iterate over the entries.
    pub fn iter(&self) -> impl Iterator<Item = (&ItemKey, &Value)> {
        self.items.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Snapshot of the values of `keys`, in order; `None` for missing items.
    /// Used by OCR to compare a step's current inputs against the inputs of
    /// its previous execution.
    pub fn project(&self, keys: &[ItemKey]) -> Vec<Option<Value>> {
        keys.iter().map(|k| self.items.get(k).cloned()).collect()
    }
}

impl FromIterator<(ItemKey, Value)> for DataEnv {
    fn from_iter<T: IntoIterator<Item = (ItemKey, Value)>>(iter: T) -> Self {
        DataEnv {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_keys_render_like_figure7() {
        assert_eq!(ItemKey::input(1).to_string(), "WF.I1");
        assert_eq!(ItemKey::output(StepId(2), 1).to_string(), "S2.O1");
    }

    #[test]
    fn env_set_get_merge() {
        let mut a = DataEnv::new();
        a.set(ItemKey::input(1), Value::Int(90));
        let mut b = DataEnv::new();
        b.set(ItemKey::input(1), Value::Int(91));
        b.set(ItemKey::output(StepId(1), 1), Value::from("Gasket"));
        a.merge_from(&b);
        assert_eq!(a.get(&ItemKey::input(1)), Some(&Value::Int(91)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn clear_step_outputs_only_touches_that_step() {
        let mut env = DataEnv::new();
        env.set(ItemKey::output(StepId(1), 1), Value::Int(1));
        env.set(ItemKey::output(StepId(2), 1), Value::Int(2));
        env.set(ItemKey::input(1), Value::Int(3));
        env.clear_step_outputs(StepId(1));
        assert!(env.get(&ItemKey::output(StepId(1), 1)).is_none());
        assert!(env.get(&ItemKey::output(StepId(2), 1)).is_some());
        assert!(env.get(&ItemKey::input(1)).is_some());
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::Int(7).type_name(), "int");
    }

    #[test]
    fn project_preserves_order_and_misses() {
        let mut env = DataEnv::new();
        env.set(ItemKey::input(2), Value::Int(5));
        let p = env.project(&[ItemKey::input(1), ItemKey::input(2)]);
        assert_eq!(p, vec![None, Some(Value::Int(5))]);
    }
}
