//! Workflow schemas: the directed graph of steps and control arcs.
//!
//! A schema ("workflow definition", §2) is a directed graph whose nodes are
//! steps and whose arcs carry control flow (optionally conditioned) and —
//! derivably — data flow. Supported control structures follow §4.2:
//! sequential flow, parallel branching (AND-split), if-then-else branching
//! (XOR-split with arc conditions), branch-joins at confluence steps
//! (AND/XOR joins), loops (a conditioned back-edge), and nested workflows
//! (a step that instantiates a child schema).
//!
//! Schemas are immutable after [`SchemaBuilder::build`], which also performs
//! the validation and derives the structures the run-times need: the
//! topological order, per-step ancestor sets, the terminal-step list (the
//! steps whose agents act as *termination agents*), and per-XOR-branch step
//! sets (used by the `CompensateThread` protocol when re-execution takes a
//! different branch, Figure 3).

use crate::coord::CoordinationSpec;
use crate::expr::Expr;
use crate::ids::{AgentId, SchemaId, StepId};
use crate::policy::WorkflowPolicy;
use crate::recovery::{CompensationSet, RollbackSpec};
use crate::step::{InputBinding, StepDef};
use crate::value::{ItemKey, ItemScope};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// How control fans out of a step with multiple outgoing arcs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Parallel branching: every outgoing arc is taken.
    And,
    /// If-then-else branching: arc conditions select exactly one branch.
    Xor,
}

/// How control fans into a step with multiple incoming arcs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Confluence of parallel branches: waits for *all* incoming arcs.
    And,
    /// Merge of exclusive branches: fires on *any one* incoming arc.
    Xor,
}

/// A control arc between two steps.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlArc {
    /// Sending node.
    pub from: StepId,
    /// Receiving node.
    pub to: StepId,
    /// Branch condition — required on XOR-split arcs (except a single
    /// optional `otherwise` arc with `None`), forbidden elsewhere.
    pub condition: Option<Expr>,
    /// Marks a loop back-edge: excluded from acyclicity and ordering, taken
    /// when its condition holds (the loop *continue* condition — the paper
    /// phrases it as sending the packet back "if the loop exit condition
    /// evaluates to false").
    pub loop_back: bool,
}

/// Errors detected while building/validating a schema. The `Display`
/// rendering is the canonical description of each case.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// The schema has no steps.
    Empty,
    /// An arc or spec references a step that was never added.
    UnknownStep(StepId),
    /// The same step id was added twice.
    DuplicateStep(StepId),
    /// Forward arcs must form a DAG.
    Cycle(Vec<StepId>),
    /// Exactly one start step (no incoming forward arcs) is required: its
    /// agent is the instance's coordination agent.
    StartSteps(Vec<StepId>),
    /// An XOR-split arc other than the single `otherwise` arc lacks a
    /// condition.
    MissingCondition { from: StepId, to: StepId },
    /// More than one unconditioned arc on an XOR split.
    MultipleOtherwise(StepId),
    /// A condition appears on an arc of an AND split or a sequence.
    UnexpectedCondition { from: StepId, to: StepId },
    /// A step with multiple outgoing arcs has no declared split kind.
    UndeclaredSplit(StepId),
    /// A step with multiple incoming arcs has no declared join kind.
    UndeclaredJoin(StepId),
    /// A step input reads a nonexistent producer or slot, its own output,
    /// or an output of a strict descendant (the future).
    BadInput {
        step: StepId,
        source: ItemKey,
        reason: &'static str,
    },
    /// A condition references an item that no upstream step produces.
    BadConditionItem { at: StepId, item: ItemKey },
    /// Compensation sets must be disjoint.
    OverlappingCompensationSets(StepId),
    /// A rollback origin must be an ancestor of (or equal to) the failing
    /// step.
    BadRollbackOrigin { failing: StepId, origin: StepId },
    /// A loop back-edge must target an ancestor of its source.
    BadLoopBack { from: StepId, to: StepId },
    /// A step reads a workflow input slot outside the declared range.
    BadInputSlot { step: StepId, slot: u16 },
    /// A nested-workflow step must not also name a program to execute.
    NestedStepHasProgram(StepId),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Empty => write!(f, "schema has no steps"),
            SchemaError::UnknownStep(s) => write!(f, "arc or spec references unknown step {s}"),
            SchemaError::DuplicateStep(s) => write!(f, "duplicate step id {s}"),
            SchemaError::Cycle(path) => {
                write!(f, "forward arcs contain a cycle through ")?;
                for (i, s) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            SchemaError::StartSteps(v) => {
                write!(f, "schema must have exactly one start step, found {v:?}")
            }
            SchemaError::MissingCondition { from, to } => {
                write!(f, "XOR arc {from}->{to} needs a condition")
            }
            SchemaError::MultipleOtherwise(s) => {
                write!(f, "XOR split at {s} has multiple unconditioned arcs")
            }
            SchemaError::UnexpectedCondition { from, to } => {
                write!(f, "non-XOR arc {from}->{to} must not carry a condition")
            }
            SchemaError::UndeclaredSplit(s) => write!(f, "step {s} fans out without a split kind"),
            SchemaError::UndeclaredJoin(s) => write!(f, "step {s} fans in without a join kind"),
            SchemaError::BadInput {
                step,
                source,
                reason,
            } => {
                write!(f, "step {step} input {source}: {reason}")
            }
            SchemaError::BadConditionItem { at, item } => {
                write!(f, "condition at {at} references unproducible item {item}")
            }
            SchemaError::OverlappingCompensationSets(s) => {
                write!(f, "step {s} belongs to more than one compensation set")
            }
            SchemaError::BadRollbackOrigin { failing, origin } => {
                write!(
                    f,
                    "rollback origin {origin} is not an ancestor of failing step {failing}"
                )
            }
            SchemaError::BadLoopBack { from, to } => {
                write!(f, "loop back-edge {from}->{to} does not target an ancestor")
            }
            SchemaError::BadInputSlot { step, slot } => {
                write!(f, "step {step} reads undeclared workflow input slot {slot}")
            }
            SchemaError::NestedStepHasProgram(s) => {
                write!(
                    f,
                    "nested-workflow step {s} must use the nested placeholder program"
                )
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Program name used by steps that instantiate a nested workflow instead of
/// running an application program.
pub const NESTED_PROGRAM: &str = "<nested>";

/// An immutable, validated workflow schema.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowSchema {
    /// Stable identifier within its collection.
    pub id: SchemaId,
    /// Human-readable name.
    pub name: String,
    /// Number of workflow input slots (`WF.I1 ..= WF.I<n>`).
    pub input_slots: u16,
    steps: BTreeMap<StepId, StepDef>,
    arcs: Vec<ControlArc>,
    splits: BTreeMap<StepId, SplitKind>,
    joins: BTreeMap<StepId, JoinKind>,
    /// Compensation sets.
    pub compensation_sets: Vec<CompensationSet>,
    /// Rollback specs.
    pub rollback_specs: Vec<RollbackSpec>,
    /// Steps that instantiate a child workflow (nested workflows, §4.2).
    pub nested: BTreeMap<StepId, SchemaId>,
    /// Workflow-level failure-policy annotations.
    pub policy: WorkflowPolicy,
    // ---- derived ----
    start: StepId,
    terminals: Vec<StepId>,
    topo: Vec<StepId>,
    /// ancestors[s] = every step strictly upstream of `s` via forward arcs.
    ancestors: BTreeMap<StepId, BTreeSet<StepId>>,
}

impl WorkflowSchema {
    // ---- graph accessors -------------------------------------------------

    /// The step this entry concerns.
    pub fn step(&self, id: StepId) -> Option<&StepDef> {
        self.steps.get(&id)
    }

    /// Step definition, panicking on unknown id — for contexts where the id
    /// came from this schema and absence is a logic error.
    pub fn expect_step(&self, id: StepId) -> &StepDef {
        self.steps
            .get(&id)
            .unwrap_or_else(|| panic!("schema {} has no step {id}", self.id))
    }

    /// Steps.
    pub fn steps(&self) -> impl Iterator<Item = &StepDef> {
        self.steps.values()
    }

    /// Step count.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Arcs.
    pub fn arcs(&self) -> &[ControlArc] {
        &self.arcs
    }

    /// All outgoing arcs (forward and loop-back) of `step`.
    pub fn outgoing(&self, step: StepId) -> impl Iterator<Item = &ControlArc> {
        self.arcs.iter().filter(move |a| a.from == step)
    }

    /// Outgoing forward arcs only.
    pub fn forward_outgoing(&self, step: StepId) -> impl Iterator<Item = &ControlArc> {
        self.outgoing(step).filter(|a| !a.loop_back)
    }

    /// All incoming arcs of `step`.
    pub fn incoming(&self, step: StepId) -> impl Iterator<Item = &ControlArc> {
        self.arcs.iter().filter(move |a| a.to == step)
    }

    /// Incoming forward arcs only.
    pub fn forward_incoming(&self, step: StepId) -> impl Iterator<Item = &ControlArc> {
        self.incoming(step).filter(|a| !a.loop_back)
    }

    /// Split kind of a step (meaningful when it has >1 outgoing forward
    /// arcs).
    pub fn split_kind(&self, step: StepId) -> Option<SplitKind> {
        self.splits.get(&step).copied()
    }

    /// Join kind of a step (meaningful when it has >1 incoming forward
    /// arcs).
    pub fn join_kind(&self, step: StepId) -> Option<JoinKind> {
        self.joins.get(&step).copied()
    }

    /// The unique start step. Its (primary eligible) agent is the
    /// coordination agent of every instance of this schema.
    pub fn start_step(&self) -> StepId {
        self.start
    }

    /// Terminal steps: no outgoing forward arcs. Their agents act as
    /// termination agents and report `StepCompleted` to the coordination
    /// agent. This is the paper's parameter `f`.
    pub fn terminal_steps(&self) -> &[StepId] {
        &self.terminals
    }

    /// Steps in a topological order of the forward arcs.
    pub fn topo_order(&self) -> &[StepId] {
        &self.topo
    }

    /// True iff `a` is strictly upstream of `b` along forward arcs.
    pub fn is_ancestor(&self, a: StepId, b: StepId) -> bool {
        self.ancestors.get(&b).is_some_and(|anc| anc.contains(&a))
    }

    /// Every step reachable from `from` (inclusive) along forward arcs.
    pub fn reachable_from(&self, from: StepId) -> BTreeSet<StepId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(s) = queue.pop_front() {
            if seen.insert(s) {
                for arc in self.forward_outgoing(s) {
                    queue.push_back(arc.to);
                }
            }
        }
        seen
    }

    /// Strict descendants of `from`.
    pub fn descendants(&self, from: StepId) -> BTreeSet<StepId> {
        let mut r = self.reachable_from(from);
        r.remove(&from);
        r
    }

    /// Deployment-time mutator: replace the eligible agents of a step.
    /// Agent eligibility is the one part of a schema that belongs to the
    /// deployment rather than the design, so it stays adjustable after
    /// `build()`; everything structural remains immutable.
    pub fn set_eligible_agents(&mut self, step: StepId, agents: Vec<AgentId>) {
        if let Some(def) = self.steps.get_mut(&step) {
            def.eligible_agents = agents;
        }
    }

    /// The compensation set containing `step`, if any.
    pub fn compensation_set_of(&self, step: StepId) -> Option<&CompensationSet> {
        self.compensation_sets.iter().find(|s| s.contains(step))
    }

    /// The rollback spec for a failure at `step`, if the designer declared
    /// one. Engines fall back to "rollback to the start step" otherwise.
    pub fn rollback_spec_for(&self, step: StepId) -> Option<&RollbackSpec> {
        self.rollback_specs.iter().find(|r| r.failing_step == step)
    }

    /// Average number of eligible agents per step — the paper's parameter
    /// `a` for this schema.
    pub fn mean_eligible_agents(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        let total: usize = self.steps.values().map(|s| s.eligible_agents.len()).sum();
        total as f64 / self.steps.len() as f64
    }

    /// The confluence step of an XOR split, if its branches re-join: the
    /// first step (in topo order) reachable from every branch head.
    pub fn confluence_of(&self, split: StepId) -> Option<StepId> {
        let heads: Vec<StepId> = self.forward_outgoing(split).map(|a| a.to).collect();
        if heads.len() < 2 {
            return None;
        }
        let reach: Vec<BTreeSet<StepId>> = heads.iter().map(|&h| self.reachable_from(h)).collect();
        self.topo
            .iter()
            .copied()
            .find(|s| reach.iter().all(|r| r.contains(s)))
    }

    /// The steps belonging to one branch of an XOR split: everything
    /// reachable from `head` before the confluence (all of it, if the
    /// branches never re-join). This is the step list the
    /// `CompensateThread` protocol walks when re-execution abandons the
    /// branch (Figure 3).
    pub fn branch_steps(&self, split: StepId, head: StepId) -> BTreeSet<StepId> {
        let mut steps = self.reachable_from(head);
        if let Some(confluence) = self.confluence_of(split) {
            for s in self.reachable_from(confluence) {
                steps.remove(&s);
            }
        }
        steps
    }

    /// Steps downstream of `origin` (strict), i.e. the executions a rollback
    /// to `origin` invalidates — the paper's parameter `v` for one failure.
    pub fn invalidation_set(&self, origin: StepId) -> BTreeSet<StepId> {
        self.descendants(origin)
    }

    /// Extra `step.done` events a step's firing rule must wait for beyond
    /// its control-flow predecessors: the producers of its inputs that are
    /// not already upstream (cross-branch data arcs). See §4.2: "the rule
    /// may require other step.done events depending on which of the steps
    /// it gets its input data from".
    pub fn cross_branch_producers(&self, step: StepId) -> BTreeSet<StepId> {
        let def = self.expect_step(step);
        let mut out = BTreeSet::new();
        for b in &def.inputs {
            if let ItemScope::StepOutput(p) = b.source.scope {
                if !self.is_ancestor(p, step) && p != step {
                    out.insert(p);
                }
            }
        }
        out
    }
}

/// Fluent builder for [`WorkflowSchema`]. Step ids are assigned
/// sequentially starting at `S1`.
pub struct SchemaBuilder {
    id: SchemaId,
    name: String,
    input_slots: u16,
    steps: BTreeMap<StepId, StepDef>,
    arcs: Vec<ControlArc>,
    splits: BTreeMap<StepId, SplitKind>,
    joins: BTreeMap<StepId, JoinKind>,
    compensation_sets: Vec<CompensationSet>,
    rollback_specs: Vec<RollbackSpec>,
    nested: BTreeMap<StepId, SchemaId>,
    policy: WorkflowPolicy,
    next_step: u32,
}

impl SchemaBuilder {
    /// Create a new, empty value.
    pub fn new(id: SchemaId, name: impl Into<String>) -> Self {
        SchemaBuilder {
            id,
            name: name.into(),
            input_slots: 0,
            steps: BTreeMap::new(),
            arcs: Vec::new(),
            splits: BTreeMap::new(),
            joins: BTreeMap::new(),
            compensation_sets: Vec::new(),
            rollback_specs: Vec::new(),
            nested: BTreeMap::new(),
            policy: WorkflowPolicy::default(),
            next_step: 1,
        }
    }

    /// Declare the number of workflow input slots.
    pub fn inputs(mut self, slots: u16) -> Self {
        self.input_slots = slots;
        self
    }

    /// Add a step with defaults and return its id; customize via
    /// [`SchemaBuilder::configure`].
    pub fn add_step(&mut self, name: impl Into<String>, program: impl Into<String>) -> StepId {
        let id = StepId(self.next_step);
        self.next_step += 1;
        self.steps.insert(id, StepDef::new(id, name, program));
        id
    }

    /// Add a step that instantiates the nested workflow `child`.
    pub fn add_nested(&mut self, name: impl Into<String>, child: SchemaId) -> StepId {
        let id = self.add_step(name, NESTED_PROGRAM);
        self.nested.insert(id, child);
        id
    }

    /// Mutate a previously added step definition.
    pub fn configure(&mut self, id: StepId, f: impl FnOnce(&mut StepDef)) -> &mut Self {
        let def = self.steps.get_mut(&id).expect("configure: unknown step");
        f(def);
        self
    }

    /// Convenience: declare that `step` reads `source`.
    pub fn read(&mut self, step: StepId, source: ItemKey) -> &mut Self {
        self.configure(step, |d| d.inputs.push(InputBinding { source }))
    }

    /// Sequential arc `from -> to`.
    pub fn seq(&mut self, from: StepId, to: StepId) -> &mut Self {
        self.arcs.push(ControlArc {
            from,
            to,
            condition: None,
            loop_back: false,
        });
        self
    }

    /// Parallel branching: all `to` steps execute.
    pub fn and_split(&mut self, from: StepId, to: impl IntoIterator<Item = StepId>) -> &mut Self {
        self.splits.insert(from, SplitKind::And);
        for t in to {
            self.arcs.push(ControlArc {
                from,
                to: t,
                condition: None,
                loop_back: false,
            });
        }
        self
    }

    /// If-then-else branching: each branch carries a condition; pass `None`
    /// for at most one `otherwise` branch.
    pub fn xor_split(
        &mut self,
        from: StepId,
        branches: impl IntoIterator<Item = (StepId, Option<Expr>)>,
    ) -> &mut Self {
        self.splits.insert(from, SplitKind::Xor);
        for (to, condition) in branches {
            self.arcs.push(ControlArc {
                from,
                to,
                condition,
                loop_back: false,
            });
        }
        self
    }

    /// Confluence of parallel branches at `to`.
    pub fn and_join(&mut self, from: impl IntoIterator<Item = StepId>, to: StepId) -> &mut Self {
        self.joins.insert(to, JoinKind::And);
        for f in from {
            self.arcs.push(ControlArc {
                from: f,
                to,
                condition: None,
                loop_back: false,
            });
        }
        self
    }

    /// Merge of exclusive branches at `to`.
    pub fn xor_join(&mut self, from: impl IntoIterator<Item = StepId>, to: StepId) -> &mut Self {
        self.joins.insert(to, JoinKind::Xor);
        for f in from {
            self.arcs.push(ControlArc {
                from: f,
                to,
                condition: None,
                loop_back: false,
            });
        }
        self
    }

    /// Loop back-edge `from -> to`, taken while `continue_if` holds.
    pub fn loop_back(&mut self, from: StepId, to: StepId, continue_if: Expr) -> &mut Self {
        self.arcs.push(ControlArc {
            from,
            to,
            condition: Some(continue_if),
            loop_back: true,
        });
        self
    }

    /// Declare a compensation dependent set.
    pub fn compensation_set(&mut self, members: impl IntoIterator<Item = StepId>) -> &mut Self {
        let id = self.compensation_sets.len() as u32;
        self.compensation_sets
            .push(CompensationSet::new(id, members));
        self
    }

    /// Declare the rollback origin for failures of `failing_step`.
    pub fn on_failure_rollback_to(&mut self, failing_step: StepId, origin: StepId) -> &mut Self {
        self.rollback_specs
            .push(RollbackSpec::new(failing_step, origin));
        self
    }

    /// Same, with an explicit retry budget.
    pub fn on_failure_rollback_to_with_attempts(
        &mut self,
        failing_step: StepId,
        origin: StepId,
        max_attempts: u32,
    ) -> &mut Self {
        let mut spec = RollbackSpec::new(failing_step, origin);
        spec.max_attempts = max_attempts;
        self.rollback_specs.push(spec);
        self
    }

    /// Set the workflow-level failure policy.
    pub fn workflow_policy(&mut self, policy: WorkflowPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Assign `agents` as the eligible agents of every step that has none
    /// yet. Deployment helpers use this to spread steps across a pool.
    pub fn default_agents(&mut self, agents: &[AgentId]) -> &mut Self {
        for def in self.steps.values_mut() {
            if def.eligible_agents.is_empty() && !agents.is_empty() {
                let idx = def.id.index() % agents.len();
                def.eligible_agents = vec![agents[idx]];
            }
        }
        self
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<WorkflowSchema, SchemaError> {
        if self.steps.is_empty() {
            return Err(SchemaError::Empty);
        }
        // Arc endpoints must exist.
        for arc in &self.arcs {
            if !self.steps.contains_key(&arc.from) {
                return Err(SchemaError::UnknownStep(arc.from));
            }
            if !self.steps.contains_key(&arc.to) {
                return Err(SchemaError::UnknownStep(arc.to));
            }
        }
        // Nested steps use the placeholder program.
        for &sid in self.nested.keys() {
            if self.steps[&sid].program != NESTED_PROGRAM {
                return Err(SchemaError::NestedStepHasProgram(sid));
            }
        }

        let forward: Vec<&ControlArc> = self.arcs.iter().filter(|a| !a.loop_back).collect();

        // Exactly one start step.
        let with_incoming: BTreeSet<StepId> = forward.iter().map(|a| a.to).collect();
        let starts: Vec<StepId> = self
            .steps
            .keys()
            .copied()
            .filter(|s| !with_incoming.contains(s))
            .collect();
        let &[start] = starts.as_slice() else {
            return Err(SchemaError::StartSteps(starts));
        };

        // Topological order (Kahn) over forward arcs; leftover = cycle.
        let mut indeg: BTreeMap<StepId, usize> = self.steps.keys().map(|&s| (s, 0)).collect();
        for arc in &forward {
            *indeg.get_mut(&arc.to).expect("checked") += 1;
        }
        let mut queue: VecDeque<StepId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&s, _)| s)
            .collect();
        let mut topo = Vec::with_capacity(self.steps.len());
        while let Some(s) = queue.pop_front() {
            topo.push(s);
            for arc in forward.iter().filter(|a| a.from == s) {
                let d = indeg.get_mut(&arc.to).expect("checked");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(arc.to);
                }
            }
        }
        if topo.len() != self.steps.len() {
            let leftover: Vec<StepId> = self
                .steps
                .keys()
                .copied()
                .filter(|s| !topo.contains(s))
                .collect();
            return Err(SchemaError::Cycle(leftover));
        }

        // Ancestor sets in topo order.
        let mut ancestors: BTreeMap<StepId, BTreeSet<StepId>> =
            self.steps.keys().map(|&s| (s, BTreeSet::new())).collect();
        for &s in &topo {
            let incoming: Vec<StepId> = forward
                .iter()
                .filter(|a| a.to == s)
                .map(|a| a.from)
                .collect();
            let mut anc = BTreeSet::new();
            for p in incoming {
                anc.insert(p);
                anc.extend(ancestors[&p].iter().copied());
            }
            ancestors.insert(s, anc);
        }

        // Split/join declarations and conditions.
        for &s in self.steps.keys() {
            let out: Vec<&&ControlArc> = forward.iter().filter(|a| a.from == s).collect();
            if out.len() > 1 {
                match self.splits.get(&s) {
                    None => return Err(SchemaError::UndeclaredSplit(s)),
                    Some(SplitKind::Xor) => {
                        let mut otherwise = 0;
                        for a in &out {
                            if a.condition.is_none() {
                                otherwise += 1;
                            }
                        }
                        if otherwise > 1 {
                            return Err(SchemaError::MultipleOtherwise(s));
                        }
                        if otherwise == out.len() {
                            // No conditioned arc at all: every branch needs
                            // a way to be selected.
                            let a = out[0];
                            return Err(SchemaError::MissingCondition {
                                from: a.from,
                                to: a.to,
                            });
                        }
                    }
                    Some(SplitKind::And) => {
                        if let Some(a) = out.iter().find(|a| a.condition.is_some()) {
                            return Err(SchemaError::UnexpectedCondition {
                                from: a.from,
                                to: a.to,
                            });
                        }
                    }
                }
            } else if let Some(a) = out.first() {
                if a.condition.is_some() && self.splits.get(&s) != Some(&SplitKind::Xor) {
                    return Err(SchemaError::UnexpectedCondition {
                        from: a.from,
                        to: a.to,
                    });
                }
            }
            let inc = forward.iter().filter(|a| a.to == s).count();
            if inc > 1 && !self.joins.contains_key(&s) {
                return Err(SchemaError::UndeclaredJoin(s));
            }
        }

        // Loop back-edges must target an ancestor of their source.
        for arc in self.arcs.iter().filter(|a| a.loop_back) {
            let ok = arc.to == arc.from || ancestors[&arc.from].contains(&arc.to);
            if !ok {
                return Err(SchemaError::BadLoopBack {
                    from: arc.from,
                    to: arc.to,
                });
            }
        }

        // Input bindings: slots in range, producers visible.
        for def in self.steps.values() {
            for b in &def.inputs {
                match b.source.scope {
                    ItemScope::WorkflowInput => {
                        if b.source.slot == 0 || b.source.slot > self.input_slots {
                            return Err(SchemaError::BadInputSlot {
                                step: def.id,
                                slot: b.source.slot,
                            });
                        }
                    }
                    ItemScope::StepOutput(p) => {
                        let Some(producer) = self.steps.get(&p) else {
                            return Err(SchemaError::BadInput {
                                step: def.id,
                                source: b.source,
                                reason: "producer step does not exist",
                            });
                        };
                        if b.source.slot == 0 || b.source.slot > producer.output_slots {
                            return Err(SchemaError::BadInput {
                                step: def.id,
                                source: b.source,
                                reason: "producer has no such output slot",
                            });
                        }
                        if p == def.id {
                            return Err(SchemaError::BadInput {
                                step: def.id,
                                source: b.source,
                                reason: "step cannot read its own output",
                            });
                        }
                        // Reading from a strict descendant would wait on the
                        // future.
                        if ancestors[&p].contains(&def.id) {
                            return Err(SchemaError::BadInput {
                                step: def.id,
                                source: b.source,
                                reason: "producer is downstream of consumer",
                            });
                        }
                    }
                }
            }
        }

        // Arc conditions can only reference items producible before the
        // branch decision: workflow inputs or outputs of the split step's
        // ancestors (or the split step itself).
        for arc in &self.arcs {
            if let Some(cond) = &arc.condition {
                for item in cond.referenced_items() {
                    let ok = match item.scope {
                        ItemScope::WorkflowInput => item.slot >= 1 && item.slot <= self.input_slots,
                        ItemScope::StepOutput(p) => {
                            p == arc.from || ancestors[&arc.from].contains(&p)
                        }
                    };
                    if !ok {
                        return Err(SchemaError::BadConditionItem { at: arc.from, item });
                    }
                }
            }
        }

        // Compensation sets: members exist and are disjoint.
        let mut seen = BTreeSet::new();
        for set in &self.compensation_sets {
            for &m in &set.members {
                if !self.steps.contains_key(&m) {
                    return Err(SchemaError::UnknownStep(m));
                }
                if !seen.insert(m) {
                    return Err(SchemaError::OverlappingCompensationSets(m));
                }
            }
        }

        // Rollback specs: origin is self or ancestor of the failing step.
        for spec in &self.rollback_specs {
            if !self.steps.contains_key(&spec.failing_step) {
                return Err(SchemaError::UnknownStep(spec.failing_step));
            }
            if !self.steps.contains_key(&spec.origin) {
                return Err(SchemaError::UnknownStep(spec.origin));
            }
            let ok = spec.origin == spec.failing_step
                || ancestors[&spec.failing_step].contains(&spec.origin);
            if !ok {
                return Err(SchemaError::BadRollbackOrigin {
                    failing: spec.failing_step,
                    origin: spec.origin,
                });
            }
        }

        // Terminal steps: no outgoing forward arcs.
        let with_outgoing: BTreeSet<StepId> = forward.iter().map(|a| a.from).collect();
        let terminals: Vec<StepId> = topo
            .iter()
            .copied()
            .filter(|s| !with_outgoing.contains(s))
            .collect();

        Ok(WorkflowSchema {
            id: self.id,
            name: self.name,
            input_slots: self.input_slots,
            steps: self.steps,
            arcs: self.arcs,
            splits: self.splits,
            joins: self.joins,
            compensation_sets: self.compensation_sets,
            rollback_specs: self.rollback_specs,
            nested: self.nested,
            policy: self.policy,
            start,
            terminals,
            topo,
            ancestors,
        })
    }
}

/// Validate a [`CoordinationSpec`] against the schemas it references: every
/// `SchemaStep` must exist. Returns the offending reference on failure.
pub fn validate_coordination(
    spec: &CoordinationSpec,
    schemas: &BTreeMap<SchemaId, WorkflowSchema>,
) -> Result<(), crate::coord::SchemaStep> {
    let exists = |s: &crate::coord::SchemaStep| {
        schemas
            .get(&s.schema)
            .is_some_and(|schema| schema.step(s.step).is_some())
    };
    for m in &spec.mutual_exclusions {
        for s in &m.members {
            if !exists(s) {
                return Err(*s);
            }
        }
    }
    for r in &spec.relative_orders {
        for (a, b) in &r.pairs {
            if !exists(a) {
                return Err(*a);
            }
            if !exists(b) {
                return Err(*b);
            }
        }
    }
    for r in &spec.rollback_dependencies {
        if !exists(&r.source) {
            return Err(r.source);
        }
        let dep = crate::coord::SchemaStep::new(r.dependent_schema, r.dependent_origin);
        if !exists(&dep) {
            return Err(dep);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::value::ItemKey;

    /// The Figure 3 shape: S1 -> S2 -> xor(S3 | S5') ... here:
    /// S1 -> S2, xor at S2 to S3 (top) or S5 (bottom), both join at S4... we
    /// build the exact Figure 3 shape: S1->S2, S2 xor-> S3 / S5, S3->S4,
    /// S5->S4' — to keep it simple: S3->S4, S5->S4, xor-join at S4, S4->S6.
    fn fig3_like() -> WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(1), "fig3").inputs(1);
        let s1 = b.add_step("S1", "p1");
        let s2 = b.add_step("S2", "p2");
        let s3 = b.add_step("S3", "p3");
        let s5 = b.add_step("S5", "p5");
        let s4 = b.add_step("S4", "p4");
        b.seq(s1, s2);
        b.xor_split(
            s2,
            [
                (
                    s3,
                    Some(Expr::gt(Expr::item(ItemKey::output(s2, 1)), Expr::lit(10))),
                ),
                (s5, None),
            ],
        );
        b.xor_join([s3, s5], s4);
        b.build().unwrap()
    }

    fn diamond() -> WorkflowSchema {
        let mut b = SchemaBuilder::new(SchemaId(2), "diamond").inputs(1);
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        let s4 = b.add_step("D", "p");
        b.and_split(s1, [s2, s3]);
        b.and_join([s2, s3], s4);
        b.build().unwrap()
    }

    #[test]
    fn start_and_terminals() {
        let s = fig3_like();
        assert_eq!(s.start_step(), StepId(1));
        assert_eq!(s.terminal_steps(), &[StepId(5)]); // S4 has id 5 (added fifth)
        let d = diamond();
        assert_eq!(d.terminal_steps(), &[StepId(4)]);
    }

    #[test]
    fn topo_order_respects_arcs() {
        let d = diamond();
        let pos: BTreeMap<StepId, usize> = d
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        for arc in d.arcs() {
            assert!(
                pos[&arc.from] < pos[&arc.to],
                "{} before {}",
                arc.from,
                arc.to
            );
        }
    }

    #[test]
    fn ancestor_queries() {
        let d = diamond();
        assert!(d.is_ancestor(StepId(1), StepId(4)));
        assert!(d.is_ancestor(StepId(2), StepId(4)));
        assert!(!d.is_ancestor(StepId(2), StepId(3))); // parallel branches
        assert!(!d.is_ancestor(StepId(4), StepId(1)));
    }

    #[test]
    fn cycle_detected() {
        let mut b = SchemaBuilder::new(SchemaId(3), "cyc");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        b.seq(s1, s2).seq(s2, s3).seq(s3, s2);
        assert!(matches!(b.build(), Err(SchemaError::Cycle(_))));
    }

    #[test]
    fn two_starts_rejected() {
        let mut b = SchemaBuilder::new(SchemaId(3), "two");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        b.xor_join([s1, s2], s3);
        assert!(matches!(b.build(), Err(SchemaError::StartSteps(_))));
    }

    #[test]
    fn xor_needs_conditions() {
        let mut b = SchemaBuilder::new(SchemaId(3), "xor");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        b.xor_split(s1, [(s2, None), (s3, None)]);
        assert!(matches!(b.build(), Err(SchemaError::MultipleOtherwise(_))));
    }

    #[test]
    fn and_split_rejects_conditions() {
        let mut b = SchemaBuilder::new(SchemaId(3), "and");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        b.splits.insert(s1, SplitKind::And);
        b.arcs.push(ControlArc {
            from: s1,
            to: s2,
            condition: Some(Expr::lit(true)),
            loop_back: false,
        });
        b.arcs.push(ControlArc {
            from: s1,
            to: s3,
            condition: None,
            loop_back: false,
        });
        assert!(matches!(
            b.build(),
            Err(SchemaError::UnexpectedCondition { .. })
        ));
    }

    #[test]
    fn undeclared_split_join_rejected() {
        let mut b = SchemaBuilder::new(SchemaId(3), "u");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        b.seq(s1, s2).seq(s1, s3);
        assert!(matches!(b.build(), Err(SchemaError::UndeclaredSplit(_))));

        let mut b = SchemaBuilder::new(SchemaId(3), "u2");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        let s4 = b.add_step("D", "p");
        b.and_split(s1, [s2, s3]);
        b.seq(s2, s4).seq(s3, s4);
        assert!(matches!(b.build(), Err(SchemaError::UndeclaredJoin(_))));
    }

    #[test]
    fn loop_back_must_target_ancestor() {
        let mut b = SchemaBuilder::new(SchemaId(3), "loop");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        b.seq(s1, s2).seq(s2, s3);
        b.loop_back(s2, s3, Expr::lit(true)); // s3 not an ancestor of s2
        assert!(matches!(b.build(), Err(SchemaError::BadLoopBack { .. })));

        let mut b = SchemaBuilder::new(SchemaId(3), "loop-ok");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        b.seq(s1, s2).seq(s2, s3);
        b.loop_back(s3, s2, Expr::lit(false));
        let schema = b.build().unwrap();
        // Loop back-edges do not make s3 non-terminal.
        assert_eq!(schema.terminal_steps(), &[s3]);
    }

    #[test]
    fn bad_inputs_rejected() {
        // Reading a downstream producer.
        let mut b = SchemaBuilder::new(SchemaId(3), "bad");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        b.seq(s1, s2);
        b.read(s1, ItemKey::output(s2, 1));
        assert!(matches!(b.build(), Err(SchemaError::BadInput { .. })));

        // Out-of-range workflow input slot.
        let mut b = SchemaBuilder::new(SchemaId(3), "bad2").inputs(1);
        let s1 = b.add_step("A", "p");
        b.read(s1, ItemKey::input(2));
        assert!(matches!(b.build(), Err(SchemaError::BadInputSlot { .. })));

        // Out-of-range producer slot.
        let mut b = SchemaBuilder::new(SchemaId(3), "bad3");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        b.seq(s1, s2);
        b.read(s2, ItemKey::output(s1, 9));
        assert!(matches!(b.build(), Err(SchemaError::BadInput { .. })));
    }

    #[test]
    fn cross_branch_read_is_allowed_and_reported() {
        let mut b = SchemaBuilder::new(SchemaId(3), "x").inputs(1);
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        let s4 = b.add_step("D", "p");
        b.and_split(s1, [s2, s3]);
        b.and_join([s2, s3], s4);
        // C reads B's output although B is on the sibling branch.
        b.read(s3, ItemKey::output(s2, 1));
        let schema = b.build().unwrap();
        assert_eq!(schema.cross_branch_producers(s3), BTreeSet::from([s2]));
        // D reads B's output, but B is already upstream: no extra event.
        assert!(schema.cross_branch_producers(s4).is_empty());
    }

    #[test]
    fn condition_item_visibility() {
        let mut b = SchemaBuilder::new(SchemaId(3), "cond");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        // Condition at s1 references output of s3 (downstream): invalid.
        b.xor_split(
            s1,
            [
                (
                    s2,
                    Some(Expr::gt(Expr::item(ItemKey::output(s3, 1)), Expr::lit(0))),
                ),
                (s3, None),
            ],
        );
        assert!(matches!(
            b.build(),
            Err(SchemaError::BadConditionItem { .. })
        ));
    }

    #[test]
    fn compensation_sets_disjoint() {
        let mut b = SchemaBuilder::new(SchemaId(3), "comp");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        b.seq(s1, s2);
        b.compensation_set([s1, s2]);
        b.compensation_set([s2]);
        assert!(matches!(
            b.build(),
            Err(SchemaError::OverlappingCompensationSets(_))
        ));
    }

    #[test]
    fn rollback_origin_must_be_upstream() {
        let mut b = SchemaBuilder::new(SchemaId(3), "rb");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        b.seq(s1, s2).seq(s2, s3);
        b.on_failure_rollback_to(s2, s3);
        assert!(matches!(
            b.build(),
            Err(SchemaError::BadRollbackOrigin { .. })
        ));
    }

    #[test]
    fn confluence_and_branch_steps() {
        let s = fig3_like();
        // split at S2, branches S3 and S5 (ids 3 and 4), confluence S4 (id 5)
        assert_eq!(s.confluence_of(StepId(2)), Some(StepId(5)));
        assert_eq!(
            s.branch_steps(StepId(2), StepId(3)),
            BTreeSet::from([StepId(3)])
        );
        assert_eq!(
            s.branch_steps(StepId(2), StepId(4)),
            BTreeSet::from([StepId(4)])
        );
    }

    #[test]
    fn branch_without_confluence_takes_whole_tail() {
        let mut b = SchemaBuilder::new(SchemaId(4), "open");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        let s3 = b.add_step("C", "p");
        let s4 = b.add_step("B2", "p");
        b.xor_split(s1, [(s2, Some(Expr::lit(true))), (s3, None)]);
        b.seq(s2, s4);
        let s = b.build().unwrap();
        assert_eq!(s.confluence_of(StepId(1)), None);
        assert_eq!(s.branch_steps(StepId(1), s2), BTreeSet::from([s2, s4]));
        assert_eq!(s.terminal_steps(), &[s3, s4]);
    }

    #[test]
    fn invalidation_set_is_strict_descendants() {
        let d = diamond();
        assert_eq!(
            d.invalidation_set(StepId(1)),
            BTreeSet::from([StepId(2), StepId(3), StepId(4)])
        );
        assert!(d.invalidation_set(StepId(4)).is_empty());
    }

    #[test]
    fn nested_step_requires_placeholder() {
        let mut b = SchemaBuilder::new(SchemaId(5), "nest");
        let s1 = b.add_nested("Child", SchemaId(6));
        let s2 = b.add_step("B", "p");
        b.seq(s1, s2);
        let s = b.build().unwrap();
        assert_eq!(s.nested.get(&s1), Some(&SchemaId(6)));

        let mut b = SchemaBuilder::new(SchemaId(5), "nest-bad");
        let s1 = b.add_step("Child", "real-program");
        b.nested.insert(s1, SchemaId(6));
        assert!(matches!(
            b.build(),
            Err(SchemaError::NestedStepHasProgram(_))
        ));
    }

    #[test]
    fn mean_eligible_agents() {
        let mut b = SchemaBuilder::new(SchemaId(7), "agents");
        let s1 = b.add_step("A", "p");
        let s2 = b.add_step("B", "p");
        b.seq(s1, s2);
        b.configure(s1, |d| d.eligible_agents = vec![AgentId(1), AgentId(2)]);
        b.configure(s2, |d| d.eligible_agents = vec![AgentId(3)]);
        let s = b.build().unwrap();
        assert!((s.mean_eligible_agents() - 1.5).abs() < 1e-9);
    }
}
