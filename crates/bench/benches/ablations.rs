//! Ablation benches for the design choices DESIGN.md calls out: OCR vs
//! Saga-style recovery cost, compensation-dependent-set size, coordination
//! density (the (me+ro+rd)/s scalability knob), and packet growth.

use crew_bench::measure;
use crew_core::Architecture;
use crew_workload::SetupParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn base() -> SetupParams {
    SetupParams {
        s: 10,
        c: 2,
        z: 12,
        a: 2,
        me: 0,
        ro: 0,
        rd: 0,
        r: 4,
        pf: 0.15,
        pi: 0.0,
        pa: 0.0,
        pr: 0.25,
        seed: 31,
    }
}

/// OCR reuse (pr = 0.25) vs Saga-like always-redo (pr = 1.0): the same
/// failure pattern costs more work without opportunistic reuse.
fn ocr_vs_saga(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/ocr_vs_saga");
    for (label, pr) in [("ocr-reuse", 0.25), ("saga-always-redo", 1.0)] {
        let p = SetupParams { pr, ..base() };
        g.bench_with_input(BenchmarkId::from_parameter(label), &p, |b, p| {
            b.iter(|| measure(Architecture::Distributed { agents: p.z }, p, 8))
        });
    }
    g.finish();
}

/// Coordination density sweep: (me+ro+rd)/s drives the distributed
/// coordination message bill.
fn coordination_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/coordination_density");
    for density in [0u32, 2, 4] {
        let p = SetupParams {
            me: density,
            ro: density,
            rd: density / 2,
            pf: 0.0,
            ..base()
        };
        g.bench_with_input(BenchmarkId::from_parameter(density), &p, |b, p| {
            b.iter(|| measure(Architecture::Distributed { agents: p.z }, p, 4))
        });
    }
    g.finish();
}

/// Rollback depth sweep (the paper's r): failure-handling cost grows with
/// the number of steps crossed during rollback.
fn rollback_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/rollback_depth");
    for r in [1u32, 4, 8] {
        let p = SetupParams {
            r,
            pf: 0.2,
            ..base()
        };
        g.bench_with_input(BenchmarkId::from_parameter(r), &p, |b, p| {
            b.iter(|| measure(Architecture::Distributed { agents: p.z }, p, 8))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ocr_vs_saga, coordination_density, rollback_depth
}
criterion_main!(benches);
