//! Criterion benches: wall-clock cost of simulating each control
//! architecture at the paper's mean parameter point — one bench group per
//! evaluation table (Table 4 = central, Table 5 = parallel, Table 6 =
//! distributed), plus a throughput sweep over the instance count.

use crew_bench::measure;
use crew_core::Architecture;
use crew_workload::SetupParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn mean_point() -> SetupParams {
    // A scaled-down mean point (c=4 schemas instead of 20) keeps bench
    // iterations fast while preserving the per-instance ratios.
    SetupParams {
        c: 4,
        ..SetupParams::default()
    }
}

fn arch_central(c: &mut Criterion) {
    let p = mean_point();
    c.bench_function("table4/central/mean-point", |b| {
        b.iter(|| measure(Architecture::Central { agents: p.z }, &p, 8))
    });
}

fn arch_parallel(c: &mut Criterion) {
    let p = mean_point();
    c.bench_function("table5/parallel/mean-point", |b| {
        b.iter(|| {
            measure(
                Architecture::Parallel {
                    agents: p.z,
                    engines: 4,
                },
                &p,
                8,
            )
        })
    });
}

fn arch_distributed(c: &mut Criterion) {
    let p = mean_point();
    c.bench_function("table6/distributed/mean-point", |b| {
        b.iter(|| measure(Architecture::Distributed { agents: p.z }, &p, 8))
    });
}

fn instance_scaling(c: &mut Criterion) {
    let p = mean_point();
    let mut g = c.benchmark_group("table7/scaling");
    for n in [4u32, 16, 64] {
        g.bench_with_input(BenchmarkId::new("distributed", n), &n, |b, &n| {
            b.iter(|| measure(Architecture::Distributed { agents: p.z }, &p, n))
        });
        g.bench_with_input(BenchmarkId::new("central", n), &n, |b, &n| {
            b.iter(|| measure(Architecture::Central { agents: p.z }, &p, n))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = arch_central, arch_parallel, arch_distributed, instance_scaling
}
criterion_main!(benches);
