//! Open-loop traffic driver: Poisson arrivals over the deterministic
//! simulator.
//!
//! A closed-loop harness (start N, wait, start N more) measures the
//! system's own backpressure; an *open-loop* driver schedules the whole
//! arrival train up front at a configured rate, so queueing delay shows up
//! in the completion-latency percentiles instead of silently throttling
//! the offered load. Arrivals are a Poisson process in virtual time —
//! exponential inter-arrival gaps drawn from the seeded hash, so the same
//! `(seed, rate, instances)` triple always produces the identical train
//! and every measurement is reproducible bit-for-bit.

use crew_core::{
    Architecture, BalancerConfig, LatencyStats, PlacementStrategy, Scenario, WorkflowSystem,
};
use crew_model::{SchemaId, Value};
use crew_workload::{build_deployment, SetupParams};
use std::time::Instant;

/// One open-loop load point: which architecture, how hard, how long.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Architecture under test.
    pub arch: Architecture,
    /// Offered load: expected arrivals per 1000 virtual ticks.
    pub rate_per_ktick: f64,
    /// Total instances in the arrival train.
    pub instances: u32,
    /// Workload shape (schemas, steps, agents, failure probabilities).
    pub setup: SetupParams,
    /// Instance-placement strategy (central/parallel control).
    pub placement: PlacementStrategy,
    /// Auto-balancer `(interval, config)`; `None` = static placement.
    pub balancer: Option<(u64, BalancerConfig)>,
    /// Skewed arrival mix: this fraction of arrivals is concentrated on
    /// the first schema instead of round-robining. `0.0` = uniform.
    pub hot_fraction: f64,
    /// Per-message engine service cost in virtual ticks (`0` = engines
    /// handle messages instantly, the pre-shard behavior).
    pub engine_cost: u64,
    /// A degraded engine `(index, ticks)`: that engine pays `ticks` per
    /// message instead of `engine_cost`, modeling a slow node the static
    /// placement keeps feeding at full rate.
    pub degraded: Option<(u32, u64)>,
}

impl LoadSpec {
    /// A plain load point: modulo placement, no balancer, uniform
    /// arrival mix, instant engines.
    pub fn new(
        arch: Architecture,
        rate_per_ktick: f64,
        instances: u32,
        setup: SetupParams,
    ) -> Self {
        LoadSpec {
            arch,
            rate_per_ktick,
            instances,
            setup,
            placement: PlacementStrategy::Modulo,
            balancer: None,
            hot_fraction: 0.0,
            engine_cost: 0,
            degraded: None,
        }
    }
}

/// Measured result of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// The spec that produced it.
    pub spec: LoadSpec,
    /// Instances committed / aborted / not terminal at quiescence.
    pub committed: usize,
    /// See [`LoadResult::committed`].
    pub aborted: usize,
    /// See [`LoadResult::committed`].
    pub stalled: usize,
    /// Virtual time at quiescence.
    pub virtual_ticks: u64,
    /// Simulator events delivered.
    pub events: u64,
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: f64,
    /// Terminal instances per wall-clock second (the harness throughput).
    pub instances_per_sec_wall: f64,
    /// Terminal instances per 1000 virtual ticks (the modeled throughput;
    /// compare against `rate_per_ktick` to spot saturation).
    pub instances_per_ktick: f64,
    /// Completion latency in virtual ticks (arrival → terminal status).
    pub latency_ticks: Option<LatencyStats>,
    /// Total logical messages delivered.
    pub messages: u64,
    /// Total payload bytes (approximate).
    pub bytes: u64,
    /// Live migrations completed during the run (0 without a balancer).
    pub migrations: u64,
    /// End-of-run per-engine load skew, max/mean pressure (1.0 when
    /// balanced or when the architecture has no engine fleet).
    pub engine_skew: f64,
}

impl LoadResult {
    /// Wall-clock microseconds per virtual tick for this run — the factor
    /// that converts tick latencies to wall-equivalent latencies.
    pub fn us_per_tick(&self) -> f64 {
        if self.virtual_ticks == 0 {
            return 0.0;
        }
        self.wall_ms * 1000.0 / self.virtual_ticks as f64
    }
}

/// The deterministic Poisson arrival train for `(seed, rate, instances)`:
/// strictly increasing virtual ticks, exponential gaps of mean
/// `1000 / rate_per_ktick` (quantized to ≥ 1 tick).
pub fn arrival_ticks(seed: u64, rate_per_ktick: f64, instances: u32) -> Vec<u64> {
    assert!(rate_per_ktick > 0.0, "offered load must be positive");
    let mean_gap = 1000.0 / rate_per_ktick;
    let mut at = 0u64;
    let mut out = Vec::with_capacity(instances as usize);
    for k in 0..instances as u64 {
        // (0, 1]: flip the [0,1) draw so ln never sees zero.
        let u = 1.0 - crew_exec::hash::unit_draw(seed, &[0x4c4f4144, k]);
        let gap = (-u.ln() * mean_gap).round().max(1.0) as u64;
        at += gap;
        out.push(at);
    }
    out
}

/// Run one open-loop load point to quiescence and measure.
pub fn run_load(spec: &LoadSpec) -> LoadResult {
    let deployment = build_deployment(&spec.setup, false);
    let schemas: Vec<SchemaId> = deployment.schemas.keys().copied().collect();
    let mut system =
        WorkflowSystem::with_deployment(deployment, spec.arch).with_placement(spec.placement);
    if let Some((interval, cfg)) = spec.balancer {
        system = system.with_balancer(interval, cfg);
    }
    let engines = match spec.arch {
        Architecture::Parallel { engines, .. } => engines,
        Architecture::Central { .. } => 1,
        Architecture::Distributed { .. } => 0,
    };
    if spec.engine_cost > 0 {
        for e in 0..engines {
            system = system.with_engine_service_cost(e, spec.engine_cost);
        }
    }
    if let Some((e, ticks)) = spec.degraded {
        if e < engines {
            system = system.with_engine_service_cost(e, ticks);
        }
    }

    let mut scenario = Scenario::new();
    for (k, &at) in arrival_ticks(spec.setup.seed, spec.rate_per_ktick, spec.instances)
        .iter()
        .enumerate()
    {
        // Skewed mix: a seeded draw sends `hot_fraction` of arrivals to
        // the first schema; the rest round-robin over the whole set.
        let hot = spec.hot_fraction > 0.0
            && crew_exec::hash::unit_draw(spec.setup.seed, &[0x534b_4557, k as u64])
                < spec.hot_fraction;
        let schema = if hot {
            schemas[0]
        } else {
            schemas[k % schemas.len()]
        };
        scenario.start_at(schema, vec![(1, Value::Int(5)), (2, Value::Int(1))], at);
    }

    let started = Instant::now();
    let report = system.run(scenario);
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;

    let committed = report.committed();
    let aborted = report.aborted();
    let terminal = (committed + aborted) as f64;
    let stalled = spec.instances as usize - committed - aborted;
    LoadResult {
        spec: *spec,
        committed,
        aborted,
        stalled,
        virtual_ticks: report.virtual_time,
        events: report.events,
        wall_ms,
        instances_per_sec_wall: if wall_ms > 0.0 {
            terminal / (wall_ms / 1000.0)
        } else {
            0.0
        },
        instances_per_ktick: if report.virtual_time > 0 {
            terminal * 1000.0 / report.virtual_time as f64
        } else {
            0.0
        },
        latency_ticks: report.latency_stats(),
        messages: report.metrics.total_messages,
        bytes: report.metrics.total_bytes,
        migrations: report.migrations(),
        engine_skew: report.engine_skew(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arch: Architecture, rate: f64, instances: u32) -> LoadSpec {
        LoadSpec::new(arch, rate, instances, SetupParams::small())
    }

    #[test]
    fn arrival_train_is_deterministic_and_increasing() {
        let a = arrival_ticks(42, 100.0, 500);
        let b = arrival_ticks(42, 100.0, 500);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        // Mean gap tracks 1000/rate loosely (quantized exponential).
        let mean = *a.last().unwrap() as f64 / a.len() as f64;
        assert!((5.0..20.0).contains(&mean), "mean gap {mean} for rate 100");
        let c = arrival_ticks(43, 100.0, 500);
        assert_ne!(a, c, "seed changes the train");
    }

    #[test]
    fn open_loop_run_completes_under_all_architectures() {
        let z = SetupParams::small().z;
        for arch in [
            Architecture::Central { agents: z },
            Architecture::Parallel {
                agents: z,
                engines: 2,
            },
            Architecture::Distributed { agents: z },
        ] {
            let r = run_load(&spec(arch, 50.0, 40));
            assert_eq!(r.committed, 40, "{arch:?}");
            assert_eq!(r.stalled, 0, "{arch:?}");
            assert!(r.instances_per_ktick > 0.0, "{arch:?}");
            let lat = r.latency_ticks.expect("completions recorded");
            assert_eq!(lat.count, 40, "{arch:?}");
            assert!(lat.p50 > 0 && lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
            assert!(r.messages > 0 && r.bytes > 0);
        }
    }

    #[test]
    fn balanced_run_with_degraded_engine_commits_deterministically() {
        let z = SetupParams::small().z;
        let mut s = spec(
            Architecture::Parallel {
                agents: z,
                engines: 4,
            },
            100.0,
            60,
        );
        s.placement = PlacementStrategy::ConsistentHash { vnodes: 8 };
        s.balancer = Some((
            40,
            BalancerConfig {
                skew_threshold: 1.2,
                max_moves_per_round: 4,
            },
        ));
        s.engine_cost = 1;
        s.degraded = Some((0, 8));
        s.hot_fraction = 0.6;
        let r = run_load(&s);
        assert_eq!(r.committed, 60);
        assert_eq!(r.stalled, 0);
        assert!(r.engine_skew >= 1.0);
        let again = run_load(&s);
        assert_eq!(r.virtual_ticks, again.virtual_ticks, "deterministic");
        assert_eq!(r.migrations, again.migrations, "deterministic");
    }

    #[test]
    fn higher_rate_finishes_in_fewer_ticks() {
        let z = SetupParams::small().z;
        let slow = run_load(&spec(Architecture::Central { agents: z }, 20.0, 60));
        let fast = run_load(&spec(Architecture::Central { agents: z }, 200.0, 60));
        assert!(
            fast.virtual_ticks < slow.virtual_ticks,
            "fast {} vs slow {}",
            fast.virtual_ticks,
            slow.virtual_ticks
        );
    }
}
