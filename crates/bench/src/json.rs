//! Minimal JSON support for the `BENCH_*.json` result files.
//!
//! The repo carries no serde; this is a small value type with an emitter,
//! a recursive-descent parser, and a validator for the benchmark result
//! schema, so `loadgen` can write files and CI can prove they still parse.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so emitted files are
/// stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (emitted without trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with 2-space indentation and a trailing newline.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; benches never emit them
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Accepts exactly what [`Json::emit`] produces
/// (plus arbitrary whitespace); errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes.get(*pos..*pos + len).ok_or("truncated utf-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

// ------------------------------------------------------- schema validation

/// The schema version `loadgen` writes and [`validate_bench`] accepts.
pub const BENCH_SCHEMA_VERSION: f64 = 1.0;

fn require_num(obj: &Json, key: &str, path: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{path}.{key}: missing or not a number"))
}

fn require_str<'j>(obj: &'j Json, key: &str, path: &str) -> Result<&'j str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}.{key}: missing or not a string"))
}

/// Validate a parsed `BENCH_*.json` document against the schema described
/// in EXPERIMENTS.md. Returns a list of problems (empty = valid).
pub fn validate_bench(doc: &Json) -> Vec<String> {
    fn check(errs: &mut Vec<String>, r: Result<(), String>) {
        if let Err(e) = r {
            errs.push(e);
        }
    }
    let mut errs = Vec::new();

    check(
        &mut errs,
        require_num(doc, "schema_version", "$").and_then(|v| {
            if v == BENCH_SCHEMA_VERSION {
                Ok(())
            } else {
                Err(format!("$.schema_version: {v} != {BENCH_SCHEMA_VERSION}"))
            }
        }),
    );
    check(&mut errs, require_str(doc, "benchmark", "$").map(|_| ()));
    check(&mut errs, require_num(doc, "seed", "$").map(|_| ()));

    match doc.get("runs").and_then(Json::as_arr) {
        None => errs.push("$.runs: missing or not an array".into()),
        Some([]) => errs.push("$.runs: must not be empty".into()),
        Some(runs) => {
            for (i, run) in runs.iter().enumerate() {
                let path = format!("$.runs[{i}]");
                match require_str(run, "arch", &path) {
                    Ok("central" | "parallel" | "distributed") => {}
                    Ok(other) => errs.push(format!("{path}.arch: unknown {other:?}")),
                    Err(e) => errs.push(e),
                }
                for key in [
                    "rate_per_ktick",
                    "instances",
                    "committed",
                    "aborted",
                    "stalled",
                    "virtual_ticks",
                    "wall_ms",
                    "instances_per_sec_wall",
                    "instances_per_ktick",
                    "messages",
                    "bytes",
                ] {
                    check(&mut errs, require_num(run, key, &path).map(|_| ()));
                }
                match run.get("latency_ticks") {
                    None => errs.push(format!("{path}.latency_ticks: missing")),
                    Some(lat) => {
                        for key in ["p50", "p95", "p99", "mean", "max"] {
                            check(
                                &mut errs,
                                require_num(lat, key, &format!("{path}.latency_ticks")).map(|_| ()),
                            );
                        }
                    }
                }
                if let Some(lat) = run.get("latency_wall_us") {
                    for key in ["p50", "p95", "p99"] {
                        check(
                            &mut errs,
                            require_num(lat, key, &format!("{path}.latency_wall_us")).map(|_| ()),
                        );
                    }
                }
            }
        }
    }

    if let Some(hotpaths) = doc.get("hotpaths") {
        match hotpaths.as_arr() {
            None => errs.push("$.hotpaths: not an array".into()),
            Some(entries) => {
                for (i, entry) in entries.iter().enumerate() {
                    let path = format!("$.hotpaths[{i}]");
                    check(&mut errs, require_str(entry, "name", &path).map(|_| ()));
                    check(&mut errs, require_str(entry, "unit", &path).map(|_| ()));
                    check(&mut errs, require_num(entry, "before", &path).map(|_| ()));
                    check(&mut errs, require_num(entry, "after", &path).map(|_| ()));
                    check(
                        &mut errs,
                        require_num(entry, "improvement", &path).and_then(|v| {
                            if v > 0.0 {
                                Ok(())
                            } else {
                                Err(format!("{path}.improvement: must be positive, got {v}"))
                            }
                        }),
                    );
                }
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Str("x \"quoted\"\n".into())),
            (
                "c".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(2.5)]),
            ),
            ("d".into(), Json::Obj(vec![])),
            ("e".into(), Json::Arr(vec![])),
        ]);
        let text = doc.emit();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integral_numbers_emit_without_decimal_point() {
        assert_eq!(Json::Num(42.0).emit(), "42\n");
        assert_eq!(Json::Num(2.5).emit(), "2.5\n");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("nope").is_err());
    }

    fn minimal_run() -> Json {
        let nums = [
            ("rate_per_ktick", 50.0),
            ("instances", 10.0),
            ("committed", 10.0),
            ("aborted", 0.0),
            ("stalled", 0.0),
            ("virtual_ticks", 100.0),
            ("wall_ms", 1.0),
            ("instances_per_sec_wall", 10.0),
            ("instances_per_ktick", 100.0),
            ("messages", 50.0),
            ("bytes", 500.0),
        ];
        let mut members = vec![("arch".to_string(), Json::Str("central".into()))];
        members.extend(nums.map(|(k, v)| (k.to_string(), Json::Num(v))));
        members.push((
            "latency_ticks".into(),
            Json::Obj(
                [
                    ("p50", 5.0),
                    ("p95", 9.0),
                    ("p99", 10.0),
                    ("mean", 5.5),
                    ("max", 10.0),
                ]
                .map(|(k, v)| (k.to_string(), Json::Num(v)))
                .to_vec(),
            ),
        ));
        Json::Obj(members)
    }

    #[test]
    fn validates_wellformed_bench_doc() {
        let doc = Json::Obj(vec![
            ("schema_version".into(), Json::Num(1.0)),
            ("benchmark".into(), Json::Str("crew-loadgen".into())),
            ("seed".into(), Json::Num(42.0)),
            ("runs".into(), Json::Arr(vec![minimal_run()])),
        ]);
        assert_eq!(validate_bench(&doc), Vec::<String>::new());
        // Round-trip through text keeps it valid.
        assert_eq!(
            validate_bench(&parse(&doc.emit()).unwrap()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn validation_catches_missing_fields_and_bad_arch() {
        let doc = Json::Obj(vec![
            ("schema_version".into(), Json::Num(1.0)),
            ("benchmark".into(), Json::Str("crew-loadgen".into())),
            ("seed".into(), Json::Num(42.0)),
            (
                "runs".into(),
                Json::Arr(vec![Json::Obj(vec![(
                    "arch".into(),
                    Json::Str("quantum".into()),
                )])]),
            ),
        ]);
        let errs = validate_bench(&doc);
        assert!(errs.iter().any(|e| e.contains("arch")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("latency_ticks")), "{errs:?}");
        let empty = Json::Obj(vec![]);
        assert!(validate_bench(&empty).len() >= 4);
    }
}
