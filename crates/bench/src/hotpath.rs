//! Before/after measurements for the storage and channel hot paths.
//!
//! Each entry runs the *same seeded workload* through the slow path the
//! repo used to ship and the fast path it ships now, and reports both wall
//! times so `BENCH_*.json` carries the evidence:
//!
//! - `wal_group_commit` — per-record `Wal::append` (one `sync_data` per
//!   record) vs one `Wal::append_batch` flush per group, on a real
//!   `FileStore`.
//! - `chan_log_replay` — `WalOutbox::replay` over an append-only channel
//!   log vs the checkpoint-compacted log (O(every record ever sent) vs
//!   O(live outbox)).

use crew_simnet::{NodeId, OutboxLog, WalOutbox};
use crew_storage::{FileStore, Wal};
use std::time::Instant;

/// One before/after hot-path measurement.
#[derive(Debug, Clone)]
pub struct HotpathResult {
    /// Stable entry name (the `BENCH_*.json` key).
    pub name: &'static str,
    /// Unit of `before` / `after`.
    pub unit: &'static str,
    /// Slow-path measurement.
    pub before: f64,
    /// Fast-path measurement.
    pub after: f64,
    /// Human-readable workload description.
    pub detail: String,
}

impl HotpathResult {
    /// Speedup factor (`before / after`).
    pub fn improvement(&self) -> f64 {
        if self.after > 0.0 {
            self.before / self.after
        } else {
            f64::INFINITY
        }
    }
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1000.0
}

/// WAL group commit on a real file: `records` appends, synced one-by-one
/// vs batch-encoded with a single `sync_data` per `batch`-record group.
pub fn bench_group_commit(records: u32, batch: u32) -> std::io::Result<HotpathResult> {
    let dir = std::env::temp_dir().join(format!("crew-bench-gc-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let payload: Vec<u64> = (0..records as u64).collect();

    let per_record = {
        let mut wal: Wal<u64, FileStore> =
            Wal::with_store(FileStore::open(dir.join("per-record.wal"))?);
        let started = Instant::now();
        for r in &payload {
            wal.append(r)?;
        }
        ms(started)
    };

    let grouped = {
        let mut wal: Wal<u64, FileStore> =
            Wal::with_store(FileStore::open(dir.join("grouped.wal"))?);
        let started = Instant::now();
        for chunk in payload.chunks(batch as usize) {
            wal.append_batch(chunk.iter())?;
        }
        ms(started)
    };

    std::fs::remove_dir_all(&dir)?;
    Ok(HotpathResult {
        name: "wal_group_commit",
        unit: "ms_total",
        before: per_record,
        after: grouped,
        detail: format!(
            "{records} records on FileStore: sync per record vs one sync per {batch}-record batch"
        ),
    })
}

/// Channel-log recovery cost: `messages` fully-acked send/ack rounds, then
/// one `replay`, on the append-only log vs the checkpoint-compacted log.
pub fn bench_chan_replay(messages: u32) -> HotpathResult {
    let mut filled: [WalOutbox<u64>; 2] = [WalOutbox::without_checkpointing(), WalOutbox::new()];
    for log in filled.iter_mut() {
        for i in 1..=messages as u64 {
            log.log_send(NodeId(2), i, &i);
            log.log_ack(NodeId(2), i);
        }
    }
    let [mut unbounded, mut compacted] = filled;
    let before_len = unbounded.log_len();
    let after_len = compacted.log_len();

    // Replay several times so the short compacted path gets a readable
    // number; both sides run the same iteration count.
    const ITERS: u32 = 10;
    let started = Instant::now();
    for _ in 0..ITERS {
        let state = unbounded.replay();
        assert!(state.outbox.values().all(|o| o.is_empty()));
    }
    let before = ms(started) * 1000.0 / ITERS as f64;
    let started = Instant::now();
    for _ in 0..ITERS {
        let state = compacted.replay();
        assert!(state.outbox.values().all(|o| o.is_empty()));
    }
    let after = ms(started) * 1000.0 / ITERS as f64;

    HotpathResult {
        name: "chan_log_replay",
        unit: "us_per_replay",
        before,
        after,
        detail: format!(
            "{messages} fully-acked sends: replay over {before_len} records vs {after_len} after checkpointing"
        ),
    }
}

/// Run every hot-path measurement at `scale` (1 = smoke, 10 = full).
pub fn run_hotpaths(scale: u32) -> Vec<HotpathResult> {
    let mut out = Vec::new();
    match bench_group_commit(500 * scale, 64) {
        Ok(r) => out.push(r),
        Err(e) => eprintln!("skipping wal_group_commit (io error: {e})"),
    }
    out.push(bench_chan_replay(2_000 * scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_commit_beats_per_record_sync() {
        let r = bench_group_commit(400, 64).expect("temp dir writable");
        assert!(r.before > 0.0 && r.after > 0.0);
        assert!(
            r.improvement() > 1.0,
            "batched sync should win: before {} after {}",
            r.before,
            r.after
        );
    }

    #[test]
    fn checkpointed_replay_beats_full_scan() {
        let r = bench_chan_replay(4_000);
        assert!(
            r.improvement() > 1.0,
            "compacted replay should win: before {} after {}",
            r.before,
            r.after
        );
    }
}
