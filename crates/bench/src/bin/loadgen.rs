//! `loadgen` — open-loop throughput/latency harness over the simulator.
//!
//! ```text
//! loadgen bench [--out PATH] [flags]    full matrix -> BENCH_*.json
//! loadgen smoke [--out PATH]            low-rate bounded run + validate
//! loadgen validate PATH                 validate an existing BENCH file
//! ```
//!
//! Flags (bench/smoke):
//!   --rates R1,R2,..   arrivals per 1000 virtual ticks   (default 50,200)
//!   --instances N      instances per run                 (default 20000)
//!   --seed S           workload + arrival seed           (default 42)
//!   --schemas C        schema count                      (default 2)
//!   --steps S          steps per schema                  (default 6)
//!   --agents Z         agent pool size                   (default 12)
//!   --engines E        engines for the parallel arch     (default 4)
//!   --hotpath-scale K  hot-path workload multiplier      (default 10)
//!   --no-hotpaths      skip the before/after entries
//!
//! The emitted JSON is schema-stable (see EXPERIMENTS.md); `validate`
//! returns non-zero on any violation so CI can keep the harness honest.

use crew_bench::{
    parse, run_hotpaths, run_load, validate_bench, HotpathResult, Json, LoadResult, LoadSpec,
    BENCH_SCHEMA_VERSION,
};
use crew_core::Architecture;
use crew_workload::SetupParams;

struct Options {
    rates: Vec<f64>,
    instances: u32,
    seed: u64,
    schemas: u32,
    steps: u32,
    agents: u32,
    engines: u32,
    hotpath_scale: u32,
    hotpaths: bool,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rates: vec![50.0, 200.0],
            instances: 20_000,
            seed: 42,
            schemas: 2,
            steps: 6,
            agents: 12,
            engines: 4,
            hotpath_scale: 10,
            hotpaths: true,
            out: None,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--rates" => {
                o.rates = value("--rates")?
                    .split(',')
                    .map(|r| r.parse::<f64>().map_err(|e| format!("--rates: {e}")))
                    .collect::<Result<_, _>>()?;
                if o.rates.is_empty() || o.rates.iter().any(|r| *r <= 0.0) {
                    return Err("--rates: need positive rates".into());
                }
            }
            "--instances" => o.instances = num(&value("--instances")?)?,
            "--seed" => o.seed = num(&value("--seed")?)? as u64,
            "--schemas" => o.schemas = num(&value("--schemas")?)?,
            "--steps" => o.steps = num(&value("--steps")?)?,
            "--agents" => o.agents = num(&value("--agents")?)?,
            "--engines" => o.engines = num(&value("--engines")?)?,
            "--hotpath-scale" => o.hotpath_scale = num(&value("--hotpath-scale")?)?,
            "--no-hotpaths" => o.hotpaths = false,
            "--out" => o.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(o)
}

fn num(s: &str) -> Result<u32, String> {
    s.parse::<u32>().map_err(|e| format!("{s:?}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("bench") => cmd_bench(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        _ => {
            eprintln!("usage: loadgen <bench|smoke|validate> [flags]; see module docs");
            2
        }
    };
    std::process::exit(code);
}

fn cmd_bench(args: &[String]) -> i32 {
    let options = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return 2;
        }
    };
    run_matrix(&options)
}

fn cmd_smoke(args: &[String]) -> i32 {
    // A bounded, CI-sized configuration; explicit flags still override.
    let mut smoke: Vec<String> = ["--rates", "50", "--instances", "60", "--hotpath-scale", "1"]
        .map(String::from)
        .to_vec();
    smoke.extend(args.iter().cloned());
    let options = match parse_options(&smoke) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return 2;
        }
    };
    run_matrix(&options)
}

fn cmd_validate(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("loadgen validate: need a file path");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("loadgen validate: {path}: {e}");
            return 1;
        }
    };
    match parse(&text) {
        Err(e) => {
            eprintln!("loadgen validate: {path}: parse error: {e}");
            1
        }
        Ok(doc) => {
            let errs = validate_bench(&doc);
            if errs.is_empty() {
                println!("{path}: valid (schema_version {BENCH_SCHEMA_VERSION})");
                0
            } else {
                for e in &errs {
                    eprintln!("{path}: {e}");
                }
                1
            }
        }
    }
}

fn run_matrix(options: &Options) -> i32 {
    let setup = SetupParams {
        s: options.steps,
        c: options.schemas,
        z: options.agents,
        a: 2.min(options.agents),
        me: 0,
        ro: 0,
        rd: 0,
        r: 0,
        pf: 0.0,
        pi: 0.0,
        pa: 0.0,
        pr: 0.0,
        seed: options.seed,
    };
    let archs = [
        ("central", Architecture::Central { agents: setup.z }),
        (
            "parallel",
            Architecture::Parallel {
                agents: setup.z,
                engines: options.engines,
            },
        ),
        ("distributed", Architecture::Distributed { agents: setup.z }),
    ];

    let mut runs = Vec::new();
    for &(label, arch) in &archs {
        for &rate in &options.rates {
            let result = run_load(&LoadSpec {
                arch,
                rate_per_ktick: rate,
                instances: options.instances,
                setup,
            });
            eprintln!(
                "{label:<12} rate {rate:>7.1}/ktick: {} committed in {} ticks / {:.0} ms \
                 ({:.0} inst/s wall, p50/p95/p99 {} / {} / {} ticks)",
                result.committed,
                result.virtual_ticks,
                result.wall_ms,
                result.instances_per_sec_wall,
                result.latency_ticks.map_or(0, |l| l.p50),
                result.latency_ticks.map_or(0, |l| l.p95),
                result.latency_ticks.map_or(0, |l| l.p99),
            );
            runs.push(run_json(label, &result));
        }
    }

    let hotpaths: Vec<HotpathResult> = if options.hotpaths {
        run_hotpaths(options.hotpath_scale)
    } else {
        Vec::new()
    };
    for h in &hotpaths {
        eprintln!(
            "hotpath {:<18} {:>10.1} -> {:>8.1} {} ({:.1}x): {}",
            h.name,
            h.before,
            h.after,
            h.unit,
            h.improvement(),
            h.detail
        );
    }

    let mut doc = vec![
        (
            "schema_version".to_string(),
            Json::Num(BENCH_SCHEMA_VERSION),
        ),
        ("benchmark".to_string(), Json::Str("crew-loadgen".into())),
        ("seed".to_string(), Json::Num(options.seed as f64)),
        (
            "workload".to_string(),
            Json::Obj(vec![
                ("schemas".into(), Json::Num(setup.c as f64)),
                ("steps".into(), Json::Num(setup.s as f64)),
                ("agents".into(), Json::Num(setup.z as f64)),
                ("engines".into(), Json::Num(options.engines as f64)),
            ]),
        ),
        ("runs".to_string(), Json::Arr(runs)),
    ];
    if !hotpaths.is_empty() {
        doc.push((
            "hotpaths".to_string(),
            Json::Arr(hotpaths.iter().map(hotpath_json).collect()),
        ));
    }
    let doc = Json::Obj(doc);

    // Self-check before writing: the harness must never emit a file its
    // own validator rejects.
    let errs = validate_bench(&doc);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("loadgen: emitted document invalid: {e}");
        }
        return 1;
    }

    let text = doc.emit();
    match &options.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("loadgen: writing {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    0
}

fn run_json(label: &str, r: &LoadResult) -> Json {
    let mut members = vec![
        ("arch".to_string(), Json::Str(label.into())),
        (
            "rate_per_ktick".to_string(),
            Json::Num(r.spec.rate_per_ktick),
        ),
        ("instances".to_string(), Json::Num(r.spec.instances as f64)),
        ("committed".to_string(), Json::Num(r.committed as f64)),
        ("aborted".to_string(), Json::Num(r.aborted as f64)),
        ("stalled".to_string(), Json::Num(r.stalled as f64)),
        (
            "virtual_ticks".to_string(),
            Json::Num(r.virtual_ticks as f64),
        ),
        ("wall_ms".to_string(), Json::Num(round2(r.wall_ms))),
        (
            "instances_per_sec_wall".to_string(),
            Json::Num(round2(r.instances_per_sec_wall)),
        ),
        (
            "instances_per_ktick".to_string(),
            Json::Num(round2(r.instances_per_ktick)),
        ),
        ("messages".to_string(), Json::Num(r.messages as f64)),
        ("bytes".to_string(), Json::Num(r.bytes as f64)),
    ];
    let lat = r.latency_ticks.unwrap_or(crew_core::LatencyStats {
        count: 0,
        p50: 0,
        p95: 0,
        p99: 0,
        mean: 0.0,
        max: 0,
    });
    members.push((
        "latency_ticks".to_string(),
        Json::Obj(vec![
            ("p50".into(), Json::Num(lat.p50 as f64)),
            ("p95".into(), Json::Num(lat.p95 as f64)),
            ("p99".into(), Json::Num(lat.p99 as f64)),
            ("mean".into(), Json::Num(round2(lat.mean))),
            ("max".into(), Json::Num(lat.max as f64)),
        ]),
    ));
    // Wall-equivalent latency: tick percentiles scaled by this run's
    // wall-time per tick (the simulator's virtual clock has no intrinsic
    // wall meaning; this anchors it to the measured run).
    let us = r.us_per_tick();
    members.push((
        "latency_wall_us".to_string(),
        Json::Obj(vec![
            ("p50".into(), Json::Num(round2(lat.p50 as f64 * us))),
            ("p95".into(), Json::Num(round2(lat.p95 as f64 * us))),
            ("p99".into(), Json::Num(round2(lat.p99 as f64 * us))),
        ]),
    ));
    Json::Obj(members)
}

fn hotpath_json(h: &HotpathResult) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(h.name.into())),
        ("unit".to_string(), Json::Str(h.unit.into())),
        ("before".to_string(), Json::Num(round2(h.before))),
        ("after".to_string(), Json::Num(round2(h.after))),
        (
            "improvement".to_string(),
            Json::Num(round2(h.improvement())),
        ),
        ("detail".to_string(), Json::Str(h.detail.clone())),
    ])
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}
