//! `loadgen` — open-loop throughput/latency harness over the simulator.
//!
//! ```text
//! loadgen bench [--out PATH] [flags]    full matrix -> BENCH_*.json
//! loadgen smoke [--out PATH]            low-rate bounded run + validate
//! loadgen escale [--out PATH] [flags]   e-scaling sweep: static modulo vs
//!                                       consistent-hash + auto-balancer
//! loadgen validate PATH                 validate an existing BENCH file
//! ```
//!
//! Flags (bench/smoke/escale):
//!   --rates R1,R2,..   arrivals per 1000 virtual ticks   (default 50,200)
//!   --instances N      instances per run                 (default 20000)
//!   --seed S           workload + arrival seed           (default 42)
//!   --schemas C        schema count                      (default 2)
//!   --steps S          steps per schema                  (default 6)
//!   --agents Z         agent pool size                   (default 12)
//!   --engines E        engines for the parallel arch     (default 4)
//!   --placement P      modulo | ring                     (default modulo)
//!   --vnodes V         ring virtual nodes per engine     (default 16)
//!   --balance T        auto-balancer sampling interval   (default off)
//!   --skew F           fraction of arrivals on schema 1  (default 0)
//!   --engine-cost T    engine ticks per message          (default 0)
//!   --degraded E:T     slow engine E at T ticks/message  (default none)
//!   --engines-sweep .. e values for escale     (default 2,4,8,16,32,64)
//!   --hotpath-scale K  hot-path workload multiplier      (default 10)
//!   --no-hotpaths      skip the before/after entries
//!
//! The emitted JSON is schema-stable (see EXPERIMENTS.md); `validate`
//! returns non-zero on any violation so CI can keep the harness honest.

use crew_bench::{
    parse, run_hotpaths, run_load, validate_bench, HotpathResult, Json, LoadResult, LoadSpec,
    BENCH_SCHEMA_VERSION,
};
use crew_core::{Architecture, BalancerConfig, PlacementStrategy};
use crew_workload::SetupParams;

struct Options {
    rates: Vec<f64>,
    instances: u32,
    seed: u64,
    schemas: u32,
    steps: u32,
    agents: u32,
    engines: u32,
    engines_sweep: Vec<u32>,
    placement: PlacementStrategy,
    balance: Option<u64>,
    skew: f64,
    engine_cost: u64,
    degraded: Option<(u32, u64)>,
    hotpath_scale: u32,
    hotpaths: bool,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rates: vec![50.0, 200.0],
            instances: 20_000,
            seed: 42,
            schemas: 2,
            steps: 6,
            agents: 12,
            engines: 4,
            engines_sweep: vec![2, 4, 8, 16, 32, 64],
            placement: PlacementStrategy::Modulo,
            balance: None,
            skew: 0.0,
            engine_cost: 0,
            degraded: None,
            hotpath_scale: 10,
            hotpaths: true,
            out: None,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--rates" => {
                o.rates = value("--rates")?
                    .split(',')
                    .map(|r| r.parse::<f64>().map_err(|e| format!("--rates: {e}")))
                    .collect::<Result<_, _>>()?;
                if o.rates.is_empty() || o.rates.iter().any(|r| *r <= 0.0) {
                    return Err("--rates: need positive rates".into());
                }
            }
            "--instances" => o.instances = num(&value("--instances")?)?,
            "--seed" => o.seed = num(&value("--seed")?)? as u64,
            "--schemas" => o.schemas = num(&value("--schemas")?)?,
            "--steps" => o.steps = num(&value("--steps")?)?,
            "--agents" => o.agents = num(&value("--agents")?)?,
            "--engines" => o.engines = num(&value("--engines")?)?,
            "--engines-sweep" => {
                o.engines_sweep = value("--engines-sweep")?
                    .split(',')
                    .map(num)
                    .collect::<Result<_, _>>()?;
                if o.engines_sweep.is_empty() || o.engines_sweep.iter().any(|e| *e < 2) {
                    return Err("--engines-sweep: need engine counts >= 2".into());
                }
            }
            "--placement" => {
                o.placement = match value("--placement")?.as_str() {
                    "modulo" => PlacementStrategy::Modulo,
                    "ring" => PlacementStrategy::ConsistentHash { vnodes: 16 },
                    other => return Err(format!("--placement: unknown {other:?}")),
                }
            }
            "--vnodes" => {
                let v = num(&value("--vnodes")?)? as u16;
                if let PlacementStrategy::ConsistentHash { vnodes } = &mut o.placement {
                    *vnodes = v;
                } else {
                    o.placement = PlacementStrategy::ConsistentHash { vnodes: v };
                }
            }
            "--balance" => o.balance = Some(num(&value("--balance")?)? as u64),
            "--skew" => {
                o.skew = value("--skew")?
                    .parse::<f64>()
                    .map_err(|e| format!("--skew: {e}"))?;
                if !(0.0..=1.0).contains(&o.skew) {
                    return Err("--skew: need a fraction in [0, 1]".into());
                }
            }
            "--engine-cost" => o.engine_cost = num(&value("--engine-cost")?)? as u64,
            "--degraded" => {
                let v = value("--degraded")?;
                let (e, t) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--degraded: want ENGINE:TICKS, got {v:?}"))?;
                o.degraded = Some((num(e)?, num(t)? as u64));
            }
            "--hotpath-scale" => o.hotpath_scale = num(&value("--hotpath-scale")?)?,
            "--no-hotpaths" => o.hotpaths = false,
            "--out" => o.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(o)
}

fn num(s: &str) -> Result<u32, String> {
    s.parse::<u32>().map_err(|e| format!("{s:?}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("bench") => cmd_bench(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        Some("escale") => cmd_escale(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        _ => {
            eprintln!("usage: loadgen <bench|smoke|escale|validate> [flags]; see module docs");
            2
        }
    };
    std::process::exit(code);
}

fn cmd_bench(args: &[String]) -> i32 {
    let options = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return 2;
        }
    };
    run_matrix(&options)
}

fn cmd_smoke(args: &[String]) -> i32 {
    // A bounded, CI-sized configuration; explicit flags still override.
    let mut smoke: Vec<String> = ["--rates", "50", "--instances", "60", "--hotpath-scale", "1"]
        .map(String::from)
        .to_vec();
    smoke.extend(args.iter().cloned());
    let options = match parse_options(&smoke) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return 2;
        }
    };
    run_matrix(&options)
}

fn cmd_escale(args: &[String]) -> i32 {
    // The e-scaling scenario: a skewed arrival mix (most arrivals on the
    // hot schema), engines that pay 1 tick per message, and one degraded
    // engine paying 8 — the divergence-from-uniform case the balancer
    // exists for. Explicit flags still override.
    let mut escale: Vec<String> = [
        "--rates",
        "30,120",
        "--instances",
        "800",
        "--skew",
        "0.7",
        "--engine-cost",
        "1",
        "--degraded",
        "0:8",
        "--balance",
        "100",
    ]
    .map(String::from)
    .to_vec();
    escale.extend(args.iter().cloned());
    let options = match parse_options(&escale) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return 2;
        }
    };
    run_escale(&options)
}

fn cmd_validate(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("loadgen validate: need a file path");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("loadgen validate: {path}: {e}");
            return 1;
        }
    };
    match parse(&text) {
        Err(e) => {
            eprintln!("loadgen validate: {path}: parse error: {e}");
            1
        }
        Ok(doc) => {
            let errs = validate_bench(&doc);
            if errs.is_empty() {
                println!("{path}: valid (schema_version {BENCH_SCHEMA_VERSION})");
                0
            } else {
                for e in &errs {
                    eprintln!("{path}: {e}");
                }
                1
            }
        }
    }
}

fn run_matrix(options: &Options) -> i32 {
    let setup = SetupParams {
        s: options.steps,
        c: options.schemas,
        z: options.agents,
        a: 2.min(options.agents),
        me: 0,
        ro: 0,
        rd: 0,
        r: 0,
        pf: 0.0,
        pi: 0.0,
        pa: 0.0,
        pr: 0.0,
        seed: options.seed,
    };
    let archs = [
        ("central", Architecture::Central { agents: setup.z }),
        (
            "parallel",
            Architecture::Parallel {
                agents: setup.z,
                engines: options.engines,
            },
        ),
        ("distributed", Architecture::Distributed { agents: setup.z }),
    ];

    let mut runs = Vec::new();
    for &(label, arch) in &archs {
        for &rate in &options.rates {
            let mut spec = LoadSpec::new(arch, rate, options.instances, setup);
            spec.placement = options.placement;
            spec.balancer = options.balance.map(|t| (t, BalancerConfig::default()));
            spec.hot_fraction = options.skew;
            spec.engine_cost = options.engine_cost;
            spec.degraded = options.degraded;
            let result = run_load(&spec);
            eprintln!(
                "{label:<12} rate {rate:>7.1}/ktick: {} committed in {} ticks / {:.0} ms \
                 ({:.0} inst/s wall, p50/p95/p99 {} / {} / {} ticks)",
                result.committed,
                result.virtual_ticks,
                result.wall_ms,
                result.instances_per_sec_wall,
                result.latency_ticks.map_or(0, |l| l.p50),
                result.latency_ticks.map_or(0, |l| l.p95),
                result.latency_ticks.map_or(0, |l| l.p99),
            );
            runs.push(run_json(label, &result));
        }
    }

    let hotpaths: Vec<HotpathResult> = if options.hotpaths {
        run_hotpaths(options.hotpath_scale)
    } else {
        Vec::new()
    };
    for h in &hotpaths {
        eprintln!(
            "hotpath {:<18} {:>10.1} -> {:>8.1} {} ({:.1}x): {}",
            h.name,
            h.before,
            h.after,
            h.unit,
            h.improvement(),
            h.detail
        );
    }

    let mut doc = vec![
        (
            "schema_version".to_string(),
            Json::Num(BENCH_SCHEMA_VERSION),
        ),
        ("benchmark".to_string(), Json::Str("crew-loadgen".into())),
        ("seed".to_string(), Json::Num(options.seed as f64)),
        (
            "workload".to_string(),
            Json::Obj(vec![
                ("schemas".into(), Json::Num(setup.c as f64)),
                ("steps".into(), Json::Num(setup.s as f64)),
                ("agents".into(), Json::Num(setup.z as f64)),
                ("engines".into(), Json::Num(options.engines as f64)),
            ]),
        ),
        ("runs".to_string(), Json::Arr(runs)),
    ];
    if !hotpaths.is_empty() {
        doc.push((
            "hotpaths".to_string(),
            Json::Arr(hotpaths.iter().map(hotpath_json).collect()),
        ));
    }
    let doc = Json::Obj(doc);

    // Self-check before writing: the harness must never emit a file its
    // own validator rejects.
    let errs = validate_bench(&doc);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("loadgen: emitted document invalid: {e}");
        }
        return 1;
    }

    let text = doc.emit();
    match &options.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("loadgen: writing {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    0
}

fn run_escale(options: &Options) -> i32 {
    let setup = SetupParams {
        s: options.steps,
        c: options.schemas,
        z: options.agents,
        a: 2.min(options.agents),
        me: 0,
        ro: 0,
        rd: 0,
        r: 0,
        pf: 0.0,
        pi: 0.0,
        pa: 0.0,
        pr: 0.0,
        seed: options.seed,
    };
    let mut runs = Vec::new();
    for &engines in &options.engines_sweep {
        for &rate in &options.rates {
            // "before": the paper's static modulo assignment, no balancer.
            // "after": consistent-hash placement + the auto-balancer.
            let configs = [
                ("modulo", PlacementStrategy::Modulo, None),
                (
                    "ring",
                    match options.placement {
                        ring @ PlacementStrategy::ConsistentHash { .. } => ring,
                        PlacementStrategy::Modulo => {
                            PlacementStrategy::ConsistentHash { vnodes: 16 }
                        }
                    },
                    Some((options.balance.unwrap_or(100), BalancerConfig::default())),
                ),
            ];
            for (pname, placement, balancer) in configs {
                let mut spec = LoadSpec::new(
                    Architecture::Parallel {
                        agents: setup.z,
                        engines,
                    },
                    rate,
                    options.instances,
                    setup,
                );
                spec.placement = placement;
                spec.balancer = balancer;
                spec.hot_fraction = options.skew;
                spec.engine_cost = options.engine_cost;
                spec.degraded = options.degraded;
                let r = run_load(&spec);
                eprintln!(
                    "e={engines:<3} rate {rate:>6.1}/ktick {pname:<7} \
                     ({}): {} committed in {} ticks, p99 {} ticks, \
                     {:.0} inst/s wall, {} migrations, skew {:.2}",
                    if balancer.is_some() {
                        "balanced"
                    } else {
                        "static"
                    },
                    r.committed,
                    r.virtual_ticks,
                    r.latency_ticks.map_or(0, |l| l.p99),
                    r.instances_per_sec_wall,
                    r.migrations,
                    r.engine_skew,
                );
                let mut entry = run_json("parallel", &r);
                if let Json::Obj(members) = &mut entry {
                    members.push(("engines".into(), Json::Num(engines as f64)));
                    members.push(("placement".into(), Json::Str(pname.into())));
                    members.push(("balanced".into(), Json::Bool(balancer.is_some())));
                }
                runs.push(entry);
            }
        }
    }

    let doc = Json::Obj(vec![
        (
            "schema_version".to_string(),
            Json::Num(BENCH_SCHEMA_VERSION),
        ),
        (
            "benchmark".to_string(),
            Json::Str("crew-loadgen-escale".into()),
        ),
        ("seed".to_string(), Json::Num(options.seed as f64)),
        (
            "workload".to_string(),
            Json::Obj(vec![
                ("schemas".into(), Json::Num(setup.c as f64)),
                ("steps".into(), Json::Num(setup.s as f64)),
                ("agents".into(), Json::Num(setup.z as f64)),
                ("skew".into(), Json::Num(options.skew)),
                ("engine_cost".into(), Json::Num(options.engine_cost as f64)),
                (
                    "degraded_engine".into(),
                    match options.degraded {
                        Some((e, t)) => Json::Obj(vec![
                            ("engine".into(), Json::Num(e as f64)),
                            ("ticks".into(), Json::Num(t as f64)),
                        ]),
                        None => Json::Null,
                    },
                ),
            ]),
        ),
        ("runs".to_string(), Json::Arr(runs)),
    ]);

    let errs = validate_bench(&doc);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("loadgen: emitted document invalid: {e}");
        }
        return 1;
    }
    let text = doc.emit();
    match &options.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("loadgen: writing {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    0
}

fn run_json(label: &str, r: &LoadResult) -> Json {
    let mut members = vec![
        ("arch".to_string(), Json::Str(label.into())),
        (
            "rate_per_ktick".to_string(),
            Json::Num(r.spec.rate_per_ktick),
        ),
        ("instances".to_string(), Json::Num(r.spec.instances as f64)),
        ("committed".to_string(), Json::Num(r.committed as f64)),
        ("aborted".to_string(), Json::Num(r.aborted as f64)),
        ("stalled".to_string(), Json::Num(r.stalled as f64)),
        (
            "virtual_ticks".to_string(),
            Json::Num(r.virtual_ticks as f64),
        ),
        ("wall_ms".to_string(), Json::Num(round2(r.wall_ms))),
        (
            "instances_per_sec_wall".to_string(),
            Json::Num(round2(r.instances_per_sec_wall)),
        ),
        (
            "instances_per_ktick".to_string(),
            Json::Num(round2(r.instances_per_ktick)),
        ),
        ("messages".to_string(), Json::Num(r.messages as f64)),
        ("bytes".to_string(), Json::Num(r.bytes as f64)),
        ("migrations".to_string(), Json::Num(r.migrations as f64)),
        ("engine_skew".to_string(), Json::Num(round2(r.engine_skew))),
    ];
    let lat = r.latency_ticks.unwrap_or(crew_core::LatencyStats {
        count: 0,
        p50: 0,
        p95: 0,
        p99: 0,
        mean: 0.0,
        max: 0,
    });
    members.push((
        "latency_ticks".to_string(),
        Json::Obj(vec![
            ("p50".into(), Json::Num(lat.p50 as f64)),
            ("p95".into(), Json::Num(lat.p95 as f64)),
            ("p99".into(), Json::Num(lat.p99 as f64)),
            ("mean".into(), Json::Num(round2(lat.mean))),
            ("max".into(), Json::Num(lat.max as f64)),
        ]),
    ));
    // Wall-equivalent latency: tick percentiles scaled by this run's
    // wall-time per tick (the simulator's virtual clock has no intrinsic
    // wall meaning; this anchors it to the measured run).
    let us = r.us_per_tick();
    members.push((
        "latency_wall_us".to_string(),
        Json::Obj(vec![
            ("p50".into(), Json::Num(round2(lat.p50 as f64 * us))),
            ("p95".into(), Json::Num(round2(lat.p95 as f64 * us))),
            ("p99".into(), Json::Num(round2(lat.p99 as f64 * us))),
        ]),
    ));
    Json::Obj(members)
}

fn hotpath_json(h: &HotpathResult) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(h.name.into())),
        ("unit".to_string(), Json::Str(h.unit.into())),
        ("before".to_string(), Json::Num(round2(h.before))),
        ("after".to_string(), Json::Num(round2(h.after))),
        (
            "improvement".to_string(),
            Json::Num(round2(h.improvement())),
        ),
        ("detail".to_string(), Json::Str(h.detail.clone())),
    ])
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}
