//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro table3            parameter space (Table 3)
//! repro table4            central control: paper vs analytic vs measured
//! repro table5            parallel control
//! repro table6            distributed control
//! repro table7            architecture recommendation matrix
//! repro fig1 .. fig7      executable reproductions of the figures
//! repro ablations         OCR/coordination/rollback/packet/selection ablations
//! repro sweep             parameter sweeps over s, z, a (closed-form series)
//! repro all               everything above
//! ```

use crew_analysis::{
    load, message_expression, messages, rank, table7, Architecture as AArch, Criterion,
    Mechanism as AMech, Params, Profile,
};
use crew_bench::{measure, row, to_analysis_params, MECH_LABELS};
use crew_core::{Architecture, Scenario, WorkflowSystem};
use crew_model::{SchemaId, StepId, Value};
use crew_workload::SetupParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "table3" => table3(),
        "table4" => arch_table(AArch::Central, "Table 4: Centralized Workflow Control"),
        "table5" => arch_table(AArch::Parallel, "Table 5: Parallel Workflow Control"),
        "table6" => arch_table(AArch::Distributed, "Table 6: Distributed Workflow Control"),
        "table7" => table7_repro(),
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "ablations" => ablations(),
        "sweep" => sweep(),
        "all" => {
            table3();
            arch_table(AArch::Central, "Table 4: Centralized Workflow Control");
            arch_table(AArch::Parallel, "Table 5: Parallel Workflow Control");
            arch_table(AArch::Distributed, "Table 6: Distributed Workflow Control");
            table7_repro();
            fig1();
            fig2();
            fig3();
            fig4();
            fig5();
            fig6();
            fig7();
            ablations();
            sweep();
        }
        other => {
            eprintln!("unknown subcommand {other:?}; see module docs");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

// ---------------------------------------------------------------- Table 3

fn table3() {
    header("Table 3: Parameters used in Analysis");
    let widths = [44, 8, 14, 10];
    println!(
        "{}",
        row(
            &[
                "Parameter".into(),
                "Symbol".into(),
                "Range".into(),
                "Mean".into()
            ],
            &widths
        )
    );
    let mean = Params::paper_mean();
    let mean_of = |sym: &str| -> f64 {
        match sym {
            "s" => mean.s,
            "c" => mean.c,
            "i" => mean.i,
            "e" => mean.e,
            "z" => mean.z,
            "a" => mean.a,
            "d" => mean.d,
            "r" => mean.r,
            "v" => mean.v,
            "f" => mean.f,
            "w" => mean.w,
            "me" => mean.me,
            "ro" => mean.ro,
            "rd" => mean.rd,
            "pf" => mean.pf,
            "pi" => mean.pi,
            "pa" => mean.pa,
            "pr" => mean.pr,
            _ => f64::NAN,
        }
    };
    let names: [(&str, &str); 18] = [
        ("Number of Steps per Workflow", "s"),
        ("Number of Workflow Schemas", "c"),
        ("Number of Concurrent Instances per Schema", "i"),
        ("Number of Engines", "e"),
        ("Number of Agents", "z"),
        ("Number of Eligible Agents per Step", "a"),
        ("Number of Conflicting Definitions per Step", "d"),
        ("Number of Steps Rolled Back on a Failure", "r"),
        ("Number of Steps Invalidated on a Step Failure", "v"),
        ("Number of Final Steps in a Workflow", "f"),
        ("Steps Compensated on a Workflow Abort", "w"),
        ("Steps/WF needing Mutual Exclusion", "me"),
        ("Steps/WF needing Relative Ordering", "ro"),
        ("Steps/WF having Rollback Dependency", "rd"),
        ("Probability of Logical Step Failure", "pf"),
        ("Probability of Workflow Input Change", "pi"),
        ("Probability of Workflow Abort", "pa"),
        ("Probability of Step Re-execution", "pr"),
    ];
    for (name, sym) in names {
        let (lo, hi) = Params::ranges()
            .into_iter()
            .find(|(s, _, _)| *s == sym)
            .map(|(_, lo, hi)| (lo, hi))
            .unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    sym.into(),
                    format!("{lo} - {hi}"),
                    format!("{}", mean_of(sym)),
                ],
                &widths
            )
        );
    }
}

// ------------------------------------------------------------ Tables 4-6

/// Paper-printed normalized values (load, messages) for cross-checking.
fn paper_values(arch: AArch) -> ([f64; 5], [f64; 5]) {
    match arch {
        AArch::Central => ([15.0, 0.125, 0.05, 0.5, 75.0], [60.0, 0.125, 0.2, 0.5, 0.0]),
        AArch::Parallel => (
            [3.75, 0.0313, 0.0125, 0.125, 75.0],
            [60.0, 0.125, 0.2, 0.5, 300.0],
        ),
        AArch::Distributed => (
            // Load row prints the paper's 1.5l for coordinated execution;
            // the expression itself evaluates to 3.0 (see EXPERIMENTS.md).
            [0.3, 0.0025, 0.001, 0.01, 1.5],
            [32.0, 0.45, 0.2, 1.8, 150.0],
        ),
    }
}

fn arch_table(arch: AArch, title: &str) {
    header(title);
    let p = Params::paper_mean();
    let mechs = [
        AMech::Normal,
        AMech::InputChange,
        AMech::Abort,
        AMech::FailureHandling,
        AMech::CoordinatedExecution,
    ];
    let (paper_load, paper_msgs) = paper_values(arch);

    // Analytic columns.
    println!("-- Load at a node (per instance, units of l) --");
    let widths = [24, 26, 12, 12];
    println!(
        "{}",
        row(
            &[
                "Mechanism".into(),
                "Expression".into(),
                "Paper".into(),
                "Analytic".into()
            ],
            &widths
        )
    );
    for (i, m) in mechs.iter().enumerate() {
        println!(
            "{}",
            row(
                &[
                    MECH_LABELS[i].into(),
                    crew_analysis::load_expression(arch, *m).into(),
                    format!("{}", paper_load[i]),
                    format!("{:.4}", load(arch, *m, &p)),
                ],
                &widths
            )
        );
    }
    println!("-- Physical messages exchanged (per instance) --");
    println!(
        "{}",
        row(
            &[
                "Mechanism".into(),
                "Expression".into(),
                "Paper".into(),
                "Analytic".into()
            ],
            &widths
        )
    );
    for (i, m) in mechs.iter().enumerate() {
        println!(
            "{}",
            row(
                &[
                    MECH_LABELS[i].into(),
                    message_expression(arch, *m).into(),
                    format!("{}", paper_msgs[i]),
                    format!("{:.4}", messages(arch, *m, &p)),
                ],
                &widths
            )
        );
    }

    // Measured counterpart on the simulator (scaled-down mean point).
    let sp = SetupParams {
        c: 4,
        ..SetupParams::default()
    };
    let (sys_arch, engines) = match arch {
        AArch::Central => (Architecture::Central { agents: sp.z }, 1),
        AArch::Parallel => (
            Architecture::Parallel {
                agents: sp.z,
                engines: 4,
            },
            4,
        ),
        AArch::Distributed => (Architecture::Distributed { agents: sp.z }, 1),
    };
    let measured = measure(sys_arch, &sp, 24);
    let ap = to_analysis_params(&sp, engines, 1.0, sp.r as f64, 2.0, 1.0);
    println!(
        "-- Measured on the simulator (c=4, 24 instances, seed {}) --",
        sp.seed
    );
    let widths = [24, 14, 14];
    println!(
        "{}",
        row(
            &[
                "Mechanism".into(),
                "Measured/inst".into(),
                "Analytic".into()
            ],
            &widths
        )
    );
    for (i, m) in mechs.iter().enumerate() {
        println!(
            "{}",
            row(
                &[
                    MECH_LABELS[i].into(),
                    format!("{:.3}", measured.msgs[i]),
                    format!("{:.3}", messages(arch, *m, &ap)),
                ],
                &widths
            )
        );
    }
    println!(
        "committed {} / aborted {}; scheduler load/inst: mean {:.1}, max {:.1} (l = 100)",
        measured.committed, measured.aborted, measured.mean_load, measured.max_load
    );
}

// ---------------------------------------------------------------- Table 7

fn table7_repro() {
    header("Table 7: Recommended Choice of Architectures");
    let p = Params::paper_mean();
    let widths = [20, 22, 40];
    println!(
        "{}",
        row(
            &["Criteria".into(), "Profile".into(), "Ranking".into()],
            &widths
        )
    );
    for (criterion, profile, ranks) in table7(&p) {
        let ranking = ranks
            .iter()
            .map(|r| format!("({}) {}", r.rank, r.arch.label()))
            .collect::<Vec<_>>()
            .join("  ");
        println!(
            "{}",
            row(
                &[criterion.label().into(), profile.label().into(), ranking],
                &widths
            )
        );
    }
    // Sanity: the coordination column flips to Central-first.
    let msgs = rank(
        Profile::NormalPlusCoordinated,
        Criterion::PhysicalMessages,
        &p,
    );
    assert_eq!(msgs[0].arch, AArch::Central);
}

// ---------------------------------------------------------------- Figures

/// Figure 1: centralized architecture — print the component topology and a
/// one-instance message trace.
fn fig1() {
    header("Figure 1: Components of Centralized Workflow Control (message trace)");
    let mut deployment = crew_exec::Deployment::new([crew_workload::order_processing()]);
    crew_workload::register_programs(&mut deployment.registry);
    let ids: Vec<StepId> = deployment.schemas[&SchemaId(1)]
        .steps()
        .map(|d| d.id)
        .collect();
    {
        let schema = std::sync::Arc::make_mut(deployment.schemas.get_mut(&SchemaId(1)).unwrap());
        for (i, s) in ids.iter().enumerate() {
            schema.set_eligible_agents(*s, vec![crew_model::AgentId(i as u32 % 2)]);
        }
    }
    let mut run = crew_central::CentralRun::new(deployment, 2, 1);
    run.sim.enable_trace();
    run.start_instance(SchemaId(1), vec![(1, Value::Int(40)), (2, Value::Int(250))]);
    run.run();
    println!("nodes: agents A0 A1 (n0 n1), engine E0 (n2), WFDB embedded in engine");
    for e in run.sim.trace.entries() {
        println!("  {e}");
    }
}

/// Figure 2: dependencies across workflows — run two linked order
/// workflows under relative ordering and show the preserved order.
fn fig2() {
    header("Figure 2: Relative ordering across concurrent workflows");
    let p = SetupParams {
        s: 5,
        c: 2,
        z: 6,
        a: 1,
        me: 0,
        ro: 3,
        rd: 0,
        r: 0,
        pf: 0.0,
        pi: 0.0,
        pa: 0.0,
        pr: 0.0,
        seed: 2,
    };
    let m = measure(Architecture::Distributed { agents: p.z }, &p, 2);
    println!(
        "two linked instances, 3 conflicting pairs: committed {} / coordination msgs per inst {:.1}",
        m.committed, m.msgs[4]
    );
    println!("(ordering invariants are asserted by tests/coordination.rs)");
}

/// Figure 3: rollback with if-then-else branch switch.
fn fig3() {
    header("Figure 3: Rollback in a workflow with if-then-else branching");
    // The integration test builds the exact shape; here we run the travel
    // scenario variant and report the branch decision + compensations.
    let mut deployment = crew_exec::Deployment::new([crew_workload::travel_booking()]);
    crew_workload::register_programs(&mut deployment.registry);
    let ids: Vec<StepId> = deployment.schemas[&SchemaId(2)]
        .steps()
        .map(|d| d.id)
        .collect();
    {
        let schema = std::sync::Arc::make_mut(deployment.schemas.get_mut(&SchemaId(2)).unwrap());
        for (i, s) in ids.iter().enumerate() {
            schema.set_eligible_agents(*s, vec![crew_model::AgentId(i as u32 % 4)]);
        }
    }
    let system =
        WorkflowSystem::with_deployment(deployment, Architecture::Distributed { agents: 4 });
    let mut scenario = Scenario::new();
    scenario.start(SchemaId(2), vec![(1, Value::Int(2))]);
    let report = system.run(scenario);
    println!(
        "travel booking (XOR on total): committed {}, messages {}, failure msgs/inst {:.1}",
        report.committed(),
        report.metrics.total_messages,
        report.messages_per_instance(crew_simnet::Mechanism::FailureHandling),
    );
    println!("(the branch-switch compensation path is asserted by tests/failure_handling.rs)");
}

/// Figure 4: enforcing relative order via AddRule/AddEvent/AddPrecondition
/// — print the coordination primitive traffic of a linked pair.
fn fig4() {
    header("Figure 4: Enforcing relative order (primitive call trace)");
    let p = SetupParams {
        s: 4,
        c: 2,
        z: 4,
        a: 1,
        me: 0,
        ro: 2,
        rd: 0,
        r: 0,
        pf: 0.0,
        pi: 0.0,
        pa: 0.0,
        pr: 0.0,
        seed: 4,
    };
    let mut deployment = crew_workload::build_deployment(&p, false);
    crew_workload::link_instances(
        &mut deployment,
        &[
            crew_model::InstanceId::new(SchemaId(1), 1),
            crew_model::InstanceId::new(SchemaId(2), 2),
        ],
    );
    let mut run =
        crew_distributed::DistRun::new(deployment, p.z, crew_distributed::DistConfig::default());
    run.sim.enable_trace();
    run.start_instance(SchemaId(1), vec![(1, Value::Int(5)), (2, Value::Int(1))]);
    run.start_instance(SchemaId(2), vec![(1, Value::Int(5)), (2, Value::Int(1))]);
    run.run();
    for e in run.sim.trace.entries() {
        if matches!(e.kind, "AddRule" | "AddEvent" | "AddPrecondition") {
            println!("  {e}");
        }
    }
    println!("(AddRule carries the first-pair claim; AddEvent releases guards)");
}

/// Figure 5: the OCR decision procedure — decision table over all
/// condition combinations.
fn fig5() {
    header("Figure 5: Opportunistic Compensation and Re-execution (decision table)");
    use crew_exec::{ocr_decide, FailurePlan, InstanceHistory};
    use crew_model::{CompensationKind, InstanceId, ReexecPolicy, StepDef};
    let widths = [20, 18, 16, 40];
    println!(
        "{}",
        row(
            &[
                "Policy".into(),
                "Prev execution".into(),
                "Inputs".into(),
                "Decision".into()
            ],
            &widths
        )
    );
    let inst = InstanceId::new(SchemaId(1), 1);
    let combos: Vec<(&str, ReexecPolicy, bool, bool, CompensationKind)> = vec![
        (
            "IfInputsChanged",
            ReexecPolicy::IfInputsChanged,
            true,
            false,
            CompensationKind::Complete,
        ),
        (
            "IfInputsChanged",
            ReexecPolicy::IfInputsChanged,
            true,
            true,
            CompensationKind::Complete,
        ),
        (
            "IfInputsChanged",
            ReexecPolicy::IfInputsChanged,
            true,
            true,
            CompensationKind::Partial,
        ),
        (
            "IfInputsChanged",
            ReexecPolicy::IfInputsChanged,
            false,
            false,
            CompensationKind::Complete,
        ),
        (
            "Always",
            ReexecPolicy::Always,
            true,
            false,
            CompensationKind::Complete,
        ),
        (
            "Never",
            ReexecPolicy::Never,
            true,
            true,
            CompensationKind::Complete,
        ),
    ];
    for (label, policy, executed, changed, comp) in combos {
        let mut def = StepDef::new(StepId(1), "S", "p");
        def.reexec = policy;
        def.compensation_kind = comp;
        def.inputs = vec![crew_model::InputBinding {
            source: crew_model::ItemKey::input(1),
        }];
        let mut history = InstanceHistory::new();
        let mut env = crew_model::DataEnv::new();
        env.set(crew_model::ItemKey::input(1), Value::Int(1));
        if executed {
            let a = history.begin_attempt(def.id);
            history.record_done(def.id, a, vec![Some(Value::Int(1))], vec![]);
        }
        if changed {
            env.set(crew_model::ItemKey::input(1), Value::Int(2));
        }
        let d = ocr_decide(&def, inst, &history, &env, &FailurePlan::none());
        println!(
            "{}",
            row(
                &[
                    label.into(),
                    if executed { "done" } else { "none" }.into(),
                    if changed { "changed" } else { "unchanged" }.into(),
                    format!("{d:?}"),
                ],
                &widths
            )
        );
    }
}

/// Figure 6: the three control architectures — the same schema under each,
/// with message-flow statistics.
fn fig6() {
    header("Figure 6: Workflow control architectures (same workload, three ways)");
    let p = SetupParams {
        s: 6,
        c: 2,
        z: 8,
        a: 1,
        me: 0,
        ro: 0,
        rd: 0,
        r: 0,
        pf: 0.0,
        pi: 0.0,
        pa: 0.0,
        pr: 0.0,
        seed: 6,
    };
    let widths = [14, 12, 14, 16];
    println!(
        "{}",
        row(
            &[
                "Architecture".into(),
                "Messages".into(),
                "Mean load".into(),
                "Busiest node".into()
            ],
            &widths
        )
    );
    for (label, arch) in [
        ("Central", Architecture::Central { agents: p.z }),
        (
            "Parallel",
            Architecture::Parallel {
                agents: p.z,
                engines: 4,
            },
        ),
        ("Distributed", Architecture::Distributed { agents: p.z }),
    ] {
        let m = measure(arch, &p, 8);
        println!(
            "{}",
            row(
                &[
                    label.into(),
                    format!("{}", m.total_messages),
                    format!("{:.0}", m.mean_load),
                    format!("{:.0}", m.max_load),
                ],
                &widths
            )
        );
    }
}

/// Figure 7: the sample workflow packet, byte for byte in the paper's
/// layout.
fn fig7() {
    header("Figure 7: Sample Workflow Packet in Distributed Control");
    use crew_distributed::{RoTag, WorkflowPacket};
    use crew_model::{DataEnv, InstanceId, ItemKey};
    let instance = InstanceId::new(SchemaId(2), 4);
    let mut data = DataEnv::new();
    data.set(ItemKey::input(1), Value::Int(90));
    data.set(ItemKey::input(2), Value::from("Blower"));
    data.set(ItemKey::output(StepId(1), 1), Value::Int(20));
    data.set(ItemKey::output(StepId(1), 2), Value::from("Gasket"));
    data.set(ItemKey::output(StepId(2), 1), Value::Int(45));
    data.set(ItemKey::output(StepId(2), 2), Value::Int(400));
    let packet = WorkflowPacket {
        instance,
        target_step: StepId(3),
        source_step: Some(StepId(2)),
        executor: None,
        epoch: 0,
        data,
        events: vec![
            (crew_rules::EventKind::WorkflowStart, 1),
            (crew_rules::EventKind::StepDone(StepId(1)), 1),
            (crew_rules::EventKind::StepDone(StepId(2)), 1),
        ],
        ro_leading: vec![RoTag {
            local_step: StepId(3),
            tag: 0,
            partner: InstanceId::new(SchemaId(3), 15),
            partner_step: StepId(5),
        }],
        ro_lagging: vec![RoTag {
            local_step: StepId(2),
            tag: 0,
            partner: InstanceId::new(SchemaId(5), 12),
            partner_step: StepId(2),
        }],
        weight: crew_distributed::Weight::ONE,
    };
    print!("{}", packet.render("WF2"));
    println!("approx wire size: {} bytes", packet.approx_size());
}

// ------------------------------------------------------------------ Sweep

/// Parameter sweeps over the Table 3 ranges: the measured per-instance
/// normal-execution message count and busiest-node load as `s`, `z` and
/// `a` vary — the series behind the §6 scalability discussion.
fn sweep() {
    header("Sweep: messages & busiest-node load vs workflow length s");
    let widths = [6, 16, 16, 16, 16, 16, 16];
    println!(
        "{}",
        row(
            &[
                "s".into(),
                "cent msgs/inst".into(),
                "par msgs/inst".into(),
                "dist msgs/inst".into(),
                "cent max load".into(),
                "par max load".into(),
                "dist max load".into(),
            ],
            &widths
        )
    );
    for s_steps in [5u32, 10, 15, 20, 25] {
        let p = SetupParams {
            s: s_steps,
            c: 2,
            z: 20,
            a: 2,
            me: 0,
            ro: 0,
            rd: 0,
            r: 0,
            pf: 0.0,
            pi: 0.0,
            pa: 0.0,
            pr: 0.0,
            seed: 9,
        };
        let cent = measure(Architecture::Central { agents: p.z }, &p, 8);
        let par = measure(
            Architecture::Parallel {
                agents: p.z,
                engines: 4,
            },
            &p,
            8,
        );
        let dist = measure(Architecture::Distributed { agents: p.z }, &p, 8);
        println!(
            "{}",
            row(
                &[
                    format!("{s_steps}"),
                    format!("{:.1}", cent.msgs[0]),
                    format!("{:.1}", par.msgs[0]),
                    format!("{:.1}", dist.msgs[0]),
                    format!("{:.0}", cent.max_load),
                    format!("{:.0}", par.max_load),
                    format!("{:.0}", dist.max_load),
                ],
                &widths
            )
        );
    }

    header("Sweep: distributed busiest-node load vs agent pool z");
    let widths = [6, 18, 18];
    println!(
        "{}",
        row(
            &["z".into(), "max load/inst".into(), "mean load/inst".into()],
            &widths
        )
    );
    for z in [10u32, 20, 50, 100] {
        let p = SetupParams {
            s: 15,
            c: 2,
            z,
            a: 2,
            me: 0,
            ro: 0,
            rd: 0,
            r: 0,
            pf: 0.0,
            pi: 0.0,
            pa: 0.0,
            pr: 0.0,
            seed: 9,
        };
        let dist = measure(Architecture::Distributed { agents: z }, &p, 12);
        println!(
            "{}",
            row(
                &[
                    format!("{z}"),
                    format!("{:.0}", dist.max_load),
                    format!("{:.0}", dist.mean_load),
                ],
                &widths
            )
        );
    }

    header("Sweep: messages vs eligible agents a (distributed s·a+f vs central 2·s·a)");
    let widths = [6, 18, 18];
    println!(
        "{}",
        row(
            &["a".into(), "cent msgs/inst".into(), "dist msgs/inst".into()],
            &widths
        )
    );
    for a in [1u32, 2, 3, 4] {
        let p = SetupParams {
            s: 10,
            c: 2,
            z: 12,
            a,
            me: 0,
            ro: 0,
            rd: 0,
            r: 0,
            pf: 0.0,
            pi: 0.0,
            pa: 0.0,
            pr: 0.0,
            seed: 9,
        };
        let cent = measure(Architecture::Central { agents: p.z }, &p, 8);
        let dist = measure(Architecture::Distributed { agents: p.z }, &p, 8);
        println!(
            "{}",
            row(
                &[
                    format!("{a}"),
                    format!("{:.1}", cent.msgs[0]),
                    format!("{:.1}", dist.msgs[0]),
                ],
                &widths
            )
        );
    }
}

// -------------------------------------------------------------- Ablations

fn ablations() {
    header("Ablation: OCR vs Saga-style recovery (pr sweep)");
    let base = SetupParams {
        s: 10,
        c: 2,
        z: 12,
        a: 1,
        me: 0,
        ro: 0,
        rd: 0,
        r: 4,
        pf: 0.2,
        pi: 0.0,
        pa: 0.0,
        pr: 0.0,
        seed: 31,
    };
    let widths = [22, 14, 16, 14];
    println!(
        "{}",
        row(
            &[
                "pr (reexec prob)".into(),
                "Messages".into(),
                "Mean load/inst".into(),
                "Committed".into()
            ],
            &widths
        )
    );
    for pr in [0.0, 0.25, 0.5, 1.0] {
        let p = SetupParams { pr, ..base };
        let m = measure(Architecture::Distributed { agents: p.z }, &p, 12);
        println!(
            "{}",
            row(
                &[
                    format!("{pr}"),
                    format!("{}", m.total_messages),
                    format!("{:.0}", m.mean_load),
                    format!("{}", m.committed),
                ],
                &widths
            )
        );
    }

    header("Ablation: coordination density ((me+ro+rd)/s sweep, distributed)");
    println!(
        "{}",
        row(
            &[
                "me=ro".into(),
                "Coord msgs/inst".into(),
                "Total msgs".into(),
                "Committed".into()
            ],
            &widths
        )
    );
    for density in [0u32, 1, 2, 4] {
        let p = SetupParams {
            me: density,
            ro: density,
            rd: 0,
            pf: 0.0,
            r: 0,
            ..base
        };
        let m = measure(Architecture::Distributed { agents: p.z }, &p, 8);
        println!(
            "{}",
            row(
                &[
                    format!("{density}"),
                    format!("{:.2}", m.msgs[4]),
                    format!("{}", m.total_messages),
                    format!("{}", m.committed),
                ],
                &widths
            )
        );
    }

    header("Ablation: rollback depth r (failure-handling messages, distributed)");
    println!(
        "{}",
        row(
            &[
                "r".into(),
                "Failure msgs/inst".into(),
                "Total msgs".into(),
                "Committed".into()
            ],
            &widths
        )
    );
    for r in [1u32, 2, 4, 8] {
        let p = SetupParams {
            r,
            pf: 0.2,
            pr: 0.5,
            ..base
        };
        let m = measure(Architecture::Distributed { agents: p.z }, &p, 12);
        println!(
            "{}",
            row(
                &[
                    format!("{r}"),
                    format!("{:.2}", m.msgs[3]),
                    format!("{}", m.total_messages),
                    format!("{}", m.committed),
                ],
                &widths
            )
        );
    }

    header("Ablation: successor selection (rendezvous hash vs two-phase state poll)");
    println!(
        "{}",
        row(
            &[
                "mode".into(),
                "Total msgs".into(),
                "Normal msgs/inst".into(),
                "Committed".into()
            ],
            &widths
        )
    );
    {
        use crew_distributed::SuccessorSelection;
        let p = SetupParams {
            a: 3,
            pf: 0.0,
            r: 0,
            ..base
        };
        for (label, mode) in [
            ("designated-hash", SuccessorSelection::DesignatedHash),
            ("load-balanced", SuccessorSelection::LoadBalanced),
        ] {
            let mut deployment = crew_workload::build_deployment(&p, false);
            deployment.seed = p.seed;
            let mut system = WorkflowSystem::with_deployment(
                deployment,
                Architecture::Distributed { agents: p.z },
            );
            system.dist_config.successor_selection = mode;
            let mut scenario = Scenario::new();
            let schemas: Vec<SchemaId> = system.deployment.schemas.keys().copied().collect();
            for k in 0..8u32 {
                scenario.start(
                    schemas[(k as usize) % schemas.len()],
                    vec![(1, Value::Int(5)), (2, Value::Int(1))],
                );
            }
            let report = system.run(scenario);
            println!(
                "{}",
                row(
                    &[
                        label.into(),
                        format!("{}", report.metrics.total_messages),
                        format!(
                            "{:.1}",
                            report.messages_per_instance(crew_simnet::Mechanism::Normal)
                        ),
                        format!("{}", report.committed()),
                    ],
                    &widths
                )
            );
        }
    }

    header("Ablation: packet size growth vs workflow length (distributed)");
    println!(
        "{}",
        row(
            &[
                "s".into(),
                "Total bytes".into(),
                "Bytes/message".into(),
                "Messages".into()
            ],
            &widths
        )
    );
    for s in [5u32, 10, 15, 25] {
        let p = SetupParams {
            s,
            pf: 0.0,
            r: 0,
            ..base
        };
        let m = measure(Architecture::Distributed { agents: p.z }, &p, 8);
        println!(
            "{}",
            row(
                &[
                    format!("{s}"),
                    format!("{}", m.total_bytes),
                    format!(
                        "{:.0}",
                        m.total_bytes as f64 / m.total_messages.max(1) as f64
                    ),
                    format!("{}", m.total_messages),
                ],
                &widths
            )
        );
    }
}
