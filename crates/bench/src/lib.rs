//! Measurement harness shared by the `repro` binary (table/figure
//! reproduction) and the Criterion benches.
//!
//! [`measure`] runs one architecture over a Table 3 parameter point on the
//! deterministic simulator and returns per-mechanism, per-instance message
//! counts plus scheduler loads — the measured counterpart of the paper's
//! closed-form Tables 4–6. User-initiated input changes and aborts are
//! injected mid-flight according to the failure plan's `pi`/`pa` draws, so
//! the corresponding mechanisms actually exercise their protocols.

#![warn(missing_docs)]

pub mod hotpath;
pub mod json;
pub mod load;

pub use hotpath::{run_hotpaths, HotpathResult};
pub use json::{parse, validate_bench, Json, BENCH_SCHEMA_VERSION};
pub use load::{arrival_ticks, run_load, LoadResult, LoadSpec};

use crew_analysis::Params;
use crew_core::{Architecture, Scenario, WorkflowSystem};
use crew_model::{SchemaId, Value};
use crew_simnet::{Mechanism, NetFaultPlan, TransportStats};
use crew_workload::{build_deployment, link_instances, SetupParams};

/// Measured per-instance quantities for one run.
#[derive(Debug, Clone, Default)]
pub struct Measured {
    /// Messages per instance, by mechanism (indexed via [`mech_index`]).
    pub msgs: [f64; 5],
    /// Mean scheduler-node navigation load per instance (instruction
    /// units).
    pub mean_load: f64,
    /// Busiest scheduler-node load per instance.
    pub max_load: f64,
    /// Instances committed.
    pub committed: usize,
    /// Instances aborted.
    pub aborted: usize,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Total payload bytes (approximate).
    pub total_bytes: u64,
    /// Virtual duration of the run.
    pub virtual_time: u64,
    /// Wire-level transport counters. All-zero on fault-free runs, which
    /// keeps the §6 logical counts above byte-identical with or without
    /// the reliable-channel layer compiled in.
    pub transport: TransportStats,
    /// Physical frames per logical data frame (`1.0` on a quiet network);
    /// the retransmission overhead the paper's message counts exclude.
    pub frame_overhead: f64,
}

/// Index of a mechanism in [`Measured::msgs`].
pub fn mech_index(m: Mechanism) -> Option<usize> {
    match m {
        Mechanism::Normal => Some(0),
        Mechanism::InputChange => Some(1),
        Mechanism::Abort => Some(2),
        Mechanism::FailureHandling => Some(3),
        Mechanism::CoordinatedExecution => Some(4),
        Mechanism::Control => None,
    }
}

/// Labels matching the paper's table rows.
pub const MECH_LABELS: [&str; 5] = [
    "Normal Execution",
    "Workflow Input Change",
    "Workflow Abort",
    "Failure Handling",
    "Coordinated Execution",
];

/// Convert an experiment point to the analytical parameter point (for the
/// analytic column next to the measured one).
pub fn to_analysis_params(p: &SetupParams, e: u32, f: f64, v: f64, w: f64, d: f64) -> Params {
    Params {
        s: p.s as f64,
        c: p.c as f64,
        i: 1.0,
        e: e as f64,
        z: p.z as f64,
        a: p.a as f64,
        d,
        r: p.r as f64,
        v,
        f,
        w,
        me: p.me as f64,
        ro: p.ro as f64,
        rd: p.rd as f64,
        pf: p.pf,
        pi: p.pi,
        pa: p.pa,
        pr: p.pr,
    }
}

/// Run `instances` workflow instances under `arch` at parameter point `p`
/// and measure. With coordination requirements present, consecutive
/// instances of paired schemas are linked. `pi`/`pa` draws inject user
/// input changes / aborts mid-flight.
pub fn measure(arch: Architecture, p: &SetupParams, instances: u32) -> Measured {
    measure_with_faults(arch, p, instances, None)
}

/// [`measure`], optionally routing all traffic through the WAL-backed
/// reliable channels with `net` faults injected underneath. The logical
/// per-mechanism counts stay comparable to the fault-free run (exactly-once
/// delivery); retransmission overhead is reported separately in
/// [`Measured::transport`] / [`Measured::frame_overhead`].
pub fn measure_with_faults(
    arch: Architecture,
    p: &SetupParams,
    instances: u32,
    net: Option<NetFaultPlan>,
) -> Measured {
    let mut deployment = build_deployment(p, false);
    let schemas: Vec<SchemaId> = deployment.schemas.keys().copied().collect();

    // Pre-compute the instance ids the scenario will allocate, for linking.
    let mut planned: Vec<crew_model::InstanceId> = Vec::new();
    for k in 0..instances {
        let schema = schemas[(k as usize) % schemas.len()];
        planned.push(crew_model::InstanceId::new(schema, k + 1));
    }
    if !deployment.coordination.is_empty() {
        link_instances(&mut deployment, &planned);
    }
    let plan = deployment.plan.clone();

    let mut system = WorkflowSystem::with_deployment(deployment, arch);
    if let Some(plan) = net {
        system = system.with_net_faults(plan);
    }
    let mut scenario = Scenario::new();
    for (k, inst) in planned.iter().enumerate() {
        let idx = scenario.start(inst.schema, vec![(1, Value::Int(5)), (2, Value::Int(1))]);
        debug_assert_eq!(scenario.instance_id(idx), *inst);
        // Mid-flight user actions per the pi/pa draws. The injection time
        // is spread so the instance is typically a few steps in.
        let at = 10 + (k as u64 % 7) * 4;
        if plan.user_aborts(*inst) {
            scenario.abort_at(idx, at);
        } else if plan.inputs_change(*inst) {
            scenario.change_inputs_at(idx, at, vec![(1, Value::Int(99))]);
        }
    }
    let report = system.run(scenario);

    let mut out = Measured {
        committed: report.committed(),
        aborted: report.aborted(),
        total_messages: report.metrics.total_messages,
        total_bytes: report.metrics.total_bytes,
        virtual_time: report.virtual_time,
        mean_load: report.scheduler_load_per_instance(),
        max_load: report.max_scheduler_load_per_instance(),
        transport: *report.transport(),
        frame_overhead: report.frame_overhead(),
        ..Measured::default()
    };
    for m in Mechanism::ALL {
        if let Some(i) = mech_index(m) {
            out.msgs[i] = report.messages_per_instance(m);
        }
    }
    out
}

/// Render a fixed-width table row.
pub fn row(cols: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cols.iter().zip(widths) {
        s.push_str(&format!("{c:<w$}  ", w = w));
    }
    s.trim_end().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_small_point_all_archs() {
        let p = SetupParams {
            s: 5,
            c: 2,
            z: 6,
            a: 1,
            me: 0,
            ro: 0,
            rd: 0,
            r: 2,
            pf: 0.1,
            pi: 0.0,
            pa: 0.0,
            pr: 0.25,
            seed: 21,
        };
        for arch in [
            Architecture::Central { agents: p.z },
            Architecture::Parallel {
                agents: p.z,
                engines: 2,
            },
            Architecture::Distributed { agents: p.z },
        ] {
            let m = measure(arch, &p, 6);
            assert_eq!(m.committed, 6, "{arch:?}");
            assert!(m.msgs[0] > 0.0, "{arch:?}: normal traffic");
            assert!(m.mean_load > 0.0, "{arch:?}");
        }
    }

    #[test]
    fn aborts_and_changes_injected() {
        let p = SetupParams {
            s: 8,
            c: 2,
            z: 8,
            a: 1,
            me: 0,
            ro: 0,
            rd: 0,
            r: 2,
            pf: 0.0,
            pi: 0.3, // exaggerated so the draws actually hit
            pa: 0.3,
            pr: 1.0,
            seed: 23,
        };
        let m = measure(Architecture::Distributed { agents: p.z }, &p, 12);
        assert!(m.aborted > 0, "some instances aborted: {m:?}");
        assert_eq!(m.committed + m.aborted, 12, "{m:?}");
    }

    #[test]
    fn faulty_measurement_reports_overhead_separately() {
        let p = SetupParams {
            s: 5,
            c: 2,
            z: 6,
            a: 1,
            me: 0,
            ro: 0,
            rd: 0,
            r: 2,
            pf: 0.0,
            pi: 0.0,
            pa: 0.0,
            pr: 0.25,
            seed: 21,
        };
        let arch = Architecture::Distributed { agents: p.z };
        let clean = measure(arch, &p, 6);
        let noisy = measure_with_faults(
            arch,
            &p,
            6,
            Some(NetFaultPlan::probabilistic(5, 0.05, 0.05, 0.10)),
        );
        // Fault-free runs never touch the transport: counters all-zero.
        assert_eq!(clean.transport, TransportStats::default());
        assert_eq!(clean.frame_overhead, 1.0);
        // The faulty run commits the same fleet and reports its wire
        // overhead out-of-band of the §6 logical counts.
        assert_eq!(noisy.committed, clean.committed);
        assert_eq!(noisy.aborted, clean.aborted);
        assert!(noisy.transport.data_frames > 0);
        assert!(noisy.frame_overhead >= 1.0);
    }

    #[test]
    fn mech_index_partition() {
        assert_eq!(mech_index(Mechanism::Normal), Some(0));
        assert_eq!(mech_index(Mechanism::Control), None);
        assert_eq!(MECH_LABELS.len(), 5);
    }
}
