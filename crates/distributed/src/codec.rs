//! Binary codec for [`DistMsg`] and [`WorkflowPacket`], so distributed
//! traffic can ride the simulator's WAL-backed reliable channels (the
//! durable outbox persists message payloads across fail-stop crashes).
//!
//! Foreign model types without their own codec ([`DataEnv`],
//! [`EventKind`], [`Weight`]) are encoded through private helpers here
//! rather than trait impls, keeping `crew-storage` free of rules/exec
//! dependencies. The `&'static str` status of `WorkflowStatusReply` is a
//! closed vocabulary and travels as a one-byte tag.

use crate::msg::{CoordRule, DistMsg, StepStatusKind};
use crate::packet::{RoTag, WorkflowPacket};
use crate::weight::Weight;
use bytes::{Bytes, BytesMut};
use crew_model::{DataEnv, ItemKey, Value};
use crew_rules::EventKind;
use crew_storage::{CodecError, Decode, Encode};

// ---- foreign-type helpers -------------------------------------------------

fn encode_data_env(env: &DataEnv, buf: &mut BytesMut) {
    (env.len() as u32).encode(buf);
    for (k, v) in env.iter() {
        k.encode(buf);
        v.encode(buf);
    }
}

fn decode_data_env(buf: &mut Bytes) -> Result<DataEnv, CodecError> {
    let n = u32::decode(buf)?;
    let mut env = DataEnv::new();
    for _ in 0..n {
        let k = ItemKey::decode(buf)?;
        let v = Value::decode(buf)?;
        env.set(k, v);
    }
    Ok(env)
}

fn encode_event_kind(e: &EventKind, buf: &mut BytesMut) {
    match e {
        EventKind::WorkflowStart => 0u8.encode(buf),
        EventKind::StepDone(s) => {
            1u8.encode(buf);
            s.encode(buf);
        }
        EventKind::StepFail(s) => {
            2u8.encode(buf);
            s.encode(buf);
        }
        EventKind::StepCompensated(s) => {
            3u8.encode(buf);
            s.encode(buf);
        }
        EventKind::WorkflowDone => 4u8.encode(buf),
        EventKind::WorkflowAbort => 5u8.encode(buf),
        EventKind::External(t) => {
            6u8.encode(buf);
            t.encode(buf);
        }
    }
}

fn decode_event_kind(buf: &mut Bytes) -> Result<EventKind, CodecError> {
    Ok(match u8::decode(buf)? {
        0 => EventKind::WorkflowStart,
        1 => EventKind::StepDone(Decode::decode(buf)?),
        2 => EventKind::StepFail(Decode::decode(buf)?),
        3 => EventKind::StepCompensated(Decode::decode(buf)?),
        4 => EventKind::WorkflowDone,
        5 => EventKind::WorkflowAbort,
        6 => EventKind::External(Decode::decode(buf)?),
        tag => {
            return Err(CodecError::BadTag {
                context: "EventKind",
                tag,
            })
        }
    })
}

fn encode_weight(w: &Weight, buf: &mut BytesMut) {
    let (num, den) = w.parts();
    num.encode(buf);
    den.encode(buf);
}

fn decode_weight(buf: &mut Bytes) -> Result<Weight, CodecError> {
    let num = u64::decode(buf)?;
    let den = u64::decode(buf)?;
    // A zero denominator cannot come from Weight::parts(); treat it as
    // corruption rather than panicking inside Weight::new.
    if den == 0 {
        return Err(CodecError::BadTag {
            context: "Weight",
            tag: 0,
        });
    }
    Ok(Weight::new(num, den))
}

/// The closed status vocabulary of `WorkflowStatusReply`.
const STATUS_TABLE: [&str; 6] = [
    "committed",
    "aborted",
    "executing",
    "unknown",
    "abort-rejected",
    "change-rejected",
];

fn encode_status(status: &'static str, buf: &mut BytesMut) {
    let tag = STATUS_TABLE.iter().position(|&s| s == status).unwrap_or(3) as u8; // any unrecognized status degrades to "unknown"
    tag.encode(buf);
}

fn decode_status(buf: &mut Bytes) -> Result<&'static str, CodecError> {
    let tag = u8::decode(buf)?;
    STATUS_TABLE
        .get(tag as usize)
        .copied()
        .ok_or(CodecError::BadTag {
            context: "WorkflowStatus",
            tag,
        })
}

// ---- protocol types -------------------------------------------------------

impl Encode for StepStatusKind {
    fn encode(&self, buf: &mut BytesMut) {
        let tag: u8 = match self {
            StepStatusKind::Unknown => 0,
            StepStatusKind::Executing => 1,
            StepStatusKind::Done => 2,
            StepStatusKind::Failed => 3,
        };
        tag.encode(buf);
    }
}

impl Decode for StepStatusKind {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            0 => StepStatusKind::Unknown,
            1 => StepStatusKind::Executing,
            2 => StepStatusKind::Done,
            3 => StepStatusKind::Failed,
            tag => {
                return Err(CodecError::BadTag {
                    context: "StepStatusKind",
                    tag,
                })
            }
        })
    }
}

impl Encode for CoordRule {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CoordRule::RoFirstDone {
                req,
                claimant,
                partner,
            } => {
                0u8.encode(buf);
                req.encode(buf);
                claimant.encode(buf);
                partner.encode(buf);
            }
            CoordRule::MutexAcquire {
                req,
                instance,
                step,
            } => {
                1u8.encode(buf);
                req.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            CoordRule::MutexRelease {
                req,
                instance,
                step,
            } => {
                2u8.encode(buf);
                req.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            CoordRule::RoNotify {
                req,
                instance,
                local_step,
                tag,
                target_instance,
                target_step,
            } => {
                3u8.encode(buf);
                req.encode(buf);
                instance.encode(buf);
                local_step.encode(buf);
                tag.encode(buf);
                target_instance.encode(buf);
                target_step.encode(buf);
            }
        }
    }
}

impl Decode for CoordRule {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            0 => CoordRule::RoFirstDone {
                req: Decode::decode(buf)?,
                claimant: Decode::decode(buf)?,
                partner: Decode::decode(buf)?,
            },
            1 => CoordRule::MutexAcquire {
                req: Decode::decode(buf)?,
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            2 => CoordRule::MutexRelease {
                req: Decode::decode(buf)?,
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            3 => CoordRule::RoNotify {
                req: Decode::decode(buf)?,
                instance: Decode::decode(buf)?,
                local_step: Decode::decode(buf)?,
                tag: Decode::decode(buf)?,
                target_instance: Decode::decode(buf)?,
                target_step: Decode::decode(buf)?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    context: "CoordRule",
                    tag,
                })
            }
        })
    }
}

impl Encode for RoTag {
    fn encode(&self, buf: &mut BytesMut) {
        self.local_step.encode(buf);
        self.tag.encode(buf);
        self.partner.encode(buf);
        self.partner_step.encode(buf);
    }
}

impl Decode for RoTag {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(RoTag {
            local_step: Decode::decode(buf)?,
            tag: Decode::decode(buf)?,
            partner: Decode::decode(buf)?,
            partner_step: Decode::decode(buf)?,
        })
    }
}

impl Encode for WorkflowPacket {
    fn encode(&self, buf: &mut BytesMut) {
        self.instance.encode(buf);
        self.target_step.encode(buf);
        self.source_step.encode(buf);
        self.executor.encode(buf);
        self.epoch.encode(buf);
        encode_data_env(&self.data, buf);
        (self.events.len() as u32).encode(buf);
        for (e, gen) in &self.events {
            encode_event_kind(e, buf);
            gen.encode(buf);
        }
        self.ro_leading.encode(buf);
        self.ro_lagging.encode(buf);
        encode_weight(&self.weight, buf);
    }
}

impl Decode for WorkflowPacket {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let instance = Decode::decode(buf)?;
        let target_step = Decode::decode(buf)?;
        let source_step = Decode::decode(buf)?;
        let executor = Decode::decode(buf)?;
        let epoch = Decode::decode(buf)?;
        let data = decode_data_env(buf)?;
        let n = u32::decode(buf)?;
        let mut events = Vec::with_capacity(n.min(4096) as usize);
        for _ in 0..n {
            let e = decode_event_kind(buf)?;
            let gen = u32::decode(buf)?;
            events.push((e, gen));
        }
        let ro_leading = Decode::decode(buf)?;
        let ro_lagging = Decode::decode(buf)?;
        let weight = decode_weight(buf)?;
        Ok(WorkflowPacket {
            instance,
            target_step,
            source_step,
            executor,
            epoch,
            data,
            events,
            ro_leading,
            ro_lagging,
            weight,
        })
    }
}

impl Encode for DistMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            DistMsg::WorkflowStart {
                instance,
                inputs,
                parent,
            } => {
                0u8.encode(buf);
                instance.encode(buf);
                inputs.encode(buf);
                parent.encode(buf);
            }
            DistMsg::WorkflowChangeInputs {
                instance,
                new_inputs,
            } => {
                1u8.encode(buf);
                instance.encode(buf);
                new_inputs.encode(buf);
            }
            DistMsg::WorkflowAbort { instance } => {
                2u8.encode(buf);
                instance.encode(buf);
            }
            DistMsg::WorkflowStatus { instance } => {
                3u8.encode(buf);
                instance.encode(buf);
            }
            DistMsg::WorkflowStatusReply { instance, status } => {
                4u8.encode(buf);
                instance.encode(buf);
                encode_status(status, buf);
            }
            DistMsg::WorkflowCommitted { instance } => {
                5u8.encode(buf);
                instance.encode(buf);
            }
            DistMsg::WorkflowAborted { instance } => {
                6u8.encode(buf);
                instance.encode(buf);
            }
            DistMsg::StepExecute { packet } => {
                7u8.encode(buf);
                packet.encode(buf);
            }
            DistMsg::StepCompleted {
                instance,
                step,
                weight_num,
                weight_den,
            } => {
                8u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                weight_num.encode(buf);
                weight_den.encode(buf);
            }
            DistMsg::StateInformation { token } => {
                9u8.encode(buf);
                token.encode(buf);
            }
            DistMsg::StateInformationReply { token, load } => {
                10u8.encode(buf);
                token.encode(buf);
                load.encode(buf);
            }
            DistMsg::NestedCompleted {
                parent,
                parent_step,
                child,
                outputs,
            } => {
                11u8.encode(buf);
                parent.encode(buf);
                parent_step.encode(buf);
                child.encode(buf);
                outputs.encode(buf);
            }
            DistMsg::InputsChanged {
                instance,
                origin,
                new_inputs,
            } => {
                12u8.encode(buf);
                instance.encode(buf);
                origin.encode(buf);
                new_inputs.encode(buf);
            }
            DistMsg::WorkflowRollback { instance, origin } => {
                13u8.encode(buf);
                instance.encode(buf);
                origin.encode(buf);
            }
            DistMsg::HaltThread {
                instance,
                origin,
                epoch,
            } => {
                14u8.encode(buf);
                instance.encode(buf);
                origin.encode(buf);
                epoch.encode(buf);
            }
            DistMsg::StepCompensate { instance, step } => {
                15u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            DistMsg::StepCompensateAck {
                instance,
                step,
                compensated,
            } => {
                16u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                compensated.encode(buf);
            }
            DistMsg::CompensateSet {
                instance,
                origin,
                steps,
            } => {
                17u8.encode(buf);
                instance.encode(buf);
                origin.encode(buf);
                steps.encode(buf);
            }
            DistMsg::CompensateThread { instance, steps } => {
                18u8.encode(buf);
                instance.encode(buf);
                steps.encode(buf);
            }
            DistMsg::StepStatus { instance, step } => {
                19u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            DistMsg::StepStatusReply {
                instance,
                step,
                status,
            } => {
                20u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                status.encode(buf);
            }
            DistMsg::ExecuteRequest { instance, step } => {
                21u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
            DistMsg::AddRule { rule } => {
                22u8.encode(buf);
                rule.encode(buf);
            }
            DistMsg::AddEvent { instance, tag } => {
                23u8.encode(buf);
                instance.encode(buf);
                tag.encode(buf);
            }
            DistMsg::AddPrecondition {
                instance,
                step,
                tag,
            } => {
                24u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
                tag.encode(buf);
            }
            DistMsg::PurgeBroadcast { instances } => {
                25u8.encode(buf);
                instances.encode(buf);
            }
            DistMsg::StepRetry { instance, step } => {
                26u8.encode(buf);
                instance.encode(buf);
                step.encode(buf);
            }
        }
    }
}

impl Decode for DistMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            0 => DistMsg::WorkflowStart {
                instance: Decode::decode(buf)?,
                inputs: Decode::decode(buf)?,
                parent: Decode::decode(buf)?,
            },
            1 => DistMsg::WorkflowChangeInputs {
                instance: Decode::decode(buf)?,
                new_inputs: Decode::decode(buf)?,
            },
            2 => DistMsg::WorkflowAbort {
                instance: Decode::decode(buf)?,
            },
            3 => DistMsg::WorkflowStatus {
                instance: Decode::decode(buf)?,
            },
            4 => DistMsg::WorkflowStatusReply {
                instance: Decode::decode(buf)?,
                status: decode_status(buf)?,
            },
            5 => DistMsg::WorkflowCommitted {
                instance: Decode::decode(buf)?,
            },
            6 => DistMsg::WorkflowAborted {
                instance: Decode::decode(buf)?,
            },
            7 => DistMsg::StepExecute {
                packet: Decode::decode(buf)?,
            },
            8 => DistMsg::StepCompleted {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                weight_num: Decode::decode(buf)?,
                weight_den: Decode::decode(buf)?,
            },
            9 => DistMsg::StateInformation {
                token: Decode::decode(buf)?,
            },
            10 => DistMsg::StateInformationReply {
                token: Decode::decode(buf)?,
                load: Decode::decode(buf)?,
            },
            11 => DistMsg::NestedCompleted {
                parent: Decode::decode(buf)?,
                parent_step: Decode::decode(buf)?,
                child: Decode::decode(buf)?,
                outputs: Decode::decode(buf)?,
            },
            12 => DistMsg::InputsChanged {
                instance: Decode::decode(buf)?,
                origin: Decode::decode(buf)?,
                new_inputs: Decode::decode(buf)?,
            },
            13 => DistMsg::WorkflowRollback {
                instance: Decode::decode(buf)?,
                origin: Decode::decode(buf)?,
            },
            14 => DistMsg::HaltThread {
                instance: Decode::decode(buf)?,
                origin: Decode::decode(buf)?,
                epoch: Decode::decode(buf)?,
            },
            15 => DistMsg::StepCompensate {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            16 => DistMsg::StepCompensateAck {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                compensated: Decode::decode(buf)?,
            },
            17 => DistMsg::CompensateSet {
                instance: Decode::decode(buf)?,
                origin: Decode::decode(buf)?,
                steps: Decode::decode(buf)?,
            },
            18 => DistMsg::CompensateThread {
                instance: Decode::decode(buf)?,
                steps: Decode::decode(buf)?,
            },
            19 => DistMsg::StepStatus {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            20 => DistMsg::StepStatusReply {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                status: Decode::decode(buf)?,
            },
            21 => DistMsg::ExecuteRequest {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            22 => DistMsg::AddRule {
                rule: Decode::decode(buf)?,
            },
            23 => DistMsg::AddEvent {
                instance: Decode::decode(buf)?,
                tag: Decode::decode(buf)?,
            },
            24 => DistMsg::AddPrecondition {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
                tag: Decode::decode(buf)?,
            },
            25 => DistMsg::PurgeBroadcast {
                instances: Decode::decode(buf)?,
            },
            26 => DistMsg::StepRetry {
                instance: Decode::decode(buf)?,
                step: Decode::decode(buf)?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    context: "DistMsg",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Buf;
    use crew_model::{InstanceId, SchemaId, StepId};

    fn inst(n: u32) -> InstanceId {
        InstanceId::new(SchemaId(2), n)
    }

    fn round_trip(msg: DistMsg) {
        let bytes = msg.to_bytes();
        let mut buf = bytes.clone();
        let back = DistMsg::decode(&mut buf).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(buf.remaining(), 0, "no trailing bytes for {}", bytes.len());
    }

    fn rich_packet() -> WorkflowPacket {
        let mut data = DataEnv::new();
        data.set(ItemKey::input(1), Value::Int(90));
        data.set(ItemKey::output(StepId(1), 2), Value::Str("Gasket".into()));
        WorkflowPacket {
            instance: inst(4),
            target_step: StepId(3),
            source_step: Some(StepId(2)),
            executor: Some(crew_model::AgentId(5)),
            epoch: 7,
            data,
            events: vec![
                (EventKind::WorkflowStart, 1),
                (EventKind::StepDone(StepId(1)), 2),
                (EventKind::StepFail(StepId(2)), 1),
                (EventKind::StepCompensated(StepId(2)), 1),
                (EventKind::WorkflowDone, 1),
                (EventKind::WorkflowAbort, 1),
                (EventKind::External(0xBEEF), 3),
            ],
            ro_leading: vec![RoTag {
                local_step: StepId(3),
                tag: 0xBEEF,
                partner: inst(15),
                partner_step: StepId(5),
            }],
            ro_lagging: vec![RoTag {
                local_step: StepId(2),
                tag: 0xF00D,
                partner: inst(12),
                partner_step: StepId(2),
            }],
            weight: Weight::new(3, 8),
        }
    }

    #[test]
    fn packet_round_trips_with_all_payloads() {
        round_trip(DistMsg::StepExecute {
            packet: rich_packet(),
        });
        round_trip(DistMsg::StepExecute {
            packet: WorkflowPacket::initial(inst(1), StepId(1), DataEnv::new()),
        });
    }

    #[test]
    fn all_message_variants_round_trip() {
        let msgs = vec![
            DistMsg::WorkflowStart {
                instance: inst(1),
                inputs: vec![(ItemKey::input(0), Value::Int(1))],
                parent: Some((inst(2), StepId(3))),
            },
            DistMsg::WorkflowChangeInputs {
                instance: inst(1),
                new_inputs: vec![(ItemKey::input(0), Value::Bool(true))],
            },
            DistMsg::WorkflowAbort { instance: inst(1) },
            DistMsg::WorkflowStatus { instance: inst(1) },
            DistMsg::WorkflowCommitted { instance: inst(1) },
            DistMsg::WorkflowAborted { instance: inst(1) },
            DistMsg::StepCompleted {
                instance: inst(1),
                step: StepId(2),
                weight_num: 1,
                weight_den: 4,
            },
            DistMsg::StateInformation { token: 9 },
            DistMsg::StateInformationReply {
                token: 9,
                load: 777,
            },
            DistMsg::NestedCompleted {
                parent: inst(1),
                parent_step: StepId(2),
                child: inst(3),
                outputs: vec![Value::Float(1.5)],
            },
            DistMsg::InputsChanged {
                instance: inst(1),
                origin: StepId(1),
                new_inputs: vec![],
            },
            DistMsg::WorkflowRollback {
                instance: inst(1),
                origin: StepId(1),
            },
            DistMsg::HaltThread {
                instance: inst(1),
                origin: StepId(1),
                epoch: 2,
            },
            DistMsg::StepCompensate {
                instance: inst(1),
                step: StepId(2),
            },
            DistMsg::StepCompensateAck {
                instance: inst(1),
                step: StepId(2),
                compensated: true,
            },
            DistMsg::CompensateSet {
                instance: inst(1),
                origin: StepId(1),
                steps: vec![StepId(2), StepId(3)],
            },
            DistMsg::CompensateThread {
                instance: inst(1),
                steps: vec![StepId(4)],
            },
            DistMsg::StepStatus {
                instance: inst(1),
                step: StepId(2),
            },
            DistMsg::ExecuteRequest {
                instance: inst(1),
                step: StepId(2),
            },
            DistMsg::StepRetry {
                instance: inst(1),
                step: StepId(2),
            },
            DistMsg::AddEvent {
                instance: inst(1),
                tag: 4,
            },
            DistMsg::AddPrecondition {
                instance: inst(1),
                step: StepId(2),
                tag: 4,
            },
            DistMsg::PurgeBroadcast {
                instances: vec![inst(1), inst(2)],
            },
        ];
        for m in msgs {
            round_trip(m);
        }
    }

    #[test]
    fn status_replies_round_trip_the_whole_vocabulary() {
        for status in super::STATUS_TABLE {
            round_trip(DistMsg::WorkflowStatusReply {
                instance: inst(1),
                status,
            });
        }
        for status in [
            StepStatusKind::Unknown,
            StepStatusKind::Executing,
            StepStatusKind::Done,
            StepStatusKind::Failed,
        ] {
            round_trip(DistMsg::StepStatusReply {
                instance: inst(1),
                step: StepId(1),
                status,
            });
        }
    }

    #[test]
    fn coord_rules_round_trip() {
        for rule in [
            CoordRule::RoFirstDone {
                req: 1,
                claimant: inst(1),
                partner: inst(2),
            },
            CoordRule::MutexAcquire {
                req: 2,
                instance: inst(1),
                step: StepId(1),
            },
            CoordRule::MutexRelease {
                req: 3,
                instance: inst(1),
                step: StepId(1),
            },
            CoordRule::RoNotify {
                req: 4,
                instance: inst(1),
                local_step: StepId(2),
                tag: 0xAB,
                target_instance: inst(2),
                target_step: StepId(3),
            },
        ] {
            round_trip(DistMsg::AddRule { rule });
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = Bytes::from_static(&[99u8]);
        assert!(matches!(
            DistMsg::decode(&mut buf),
            Err(CodecError::BadTag {
                context: "DistMsg",
                tag: 99
            })
        ));
    }
}
